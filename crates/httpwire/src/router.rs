//! A small path router with `:param` captures.
//!
//! Routes are matched segment-by-segment; `:name` segments capture their
//! value. The crawler-facing instance API needs exactly this much:
//! `/api/v1/instance`, `/api/v1/timelines/public`, and
//! `/users/:name/followers`.

/// Result of a successful match: the route index and captured parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteMatch {
    /// Index of the route in insertion order.
    pub route: usize,
    /// Captured `:param` values in declaration order.
    pub params: Vec<(String, String)>,
}

impl RouteMatch {
    /// Look up a captured parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An ordered route table.
#[derive(Debug, Clone, Default)]
pub struct Router {
    routes: Vec<Vec<Segment>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
}

fn compile(pattern: &str) -> Vec<Segment> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| {
            if let Some(name) = s.strip_prefix(':') {
                Segment::Param(name.to_string())
            } else {
                Segment::Literal(s.to_string())
            }
        })
        .collect()
}

impl Router {
    /// Empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a pattern; returns its route index.
    pub fn add(&mut self, pattern: &str) -> usize {
        self.routes.push(compile(pattern));
        self.routes.len() - 1
    }

    /// Match a concrete path against the table (first match wins).
    pub fn matches(&self, path: &str) -> Option<RouteMatch> {
        let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        'route: for (idx, route) in self.routes.iter().enumerate() {
            if route.len() != segs.len() {
                continue;
            }
            let mut params = Vec::new();
            for (pat, &actual) in route.iter().zip(&segs) {
                match pat {
                    Segment::Literal(l) if l == actual => {}
                    Segment::Literal(_) => continue 'route,
                    Segment::Param(name) => params.push((name.clone(), actual.to_string())),
                }
            }
            return Some(RouteMatch { route: idx, params });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mastodon_router() -> Router {
        let mut r = Router::new();
        r.add("/api/v1/instance");
        r.add("/api/v1/timelines/public");
        r.add("/users/:name/followers");
        r.add("/users/:name");
        r
    }

    #[test]
    fn literal_match() {
        let r = mastodon_router();
        let m = r.matches("/api/v1/instance").unwrap();
        assert_eq!(m.route, 0);
        assert!(m.params.is_empty());
    }

    #[test]
    fn param_capture() {
        let r = mastodon_router();
        let m = r.matches("/users/alice/followers").unwrap();
        assert_eq!(m.route, 2);
        assert_eq!(m.param("name"), Some("alice"));
    }

    #[test]
    fn shorter_route_matches_after_longer() {
        let r = mastodon_router();
        let m = r.matches("/users/bob").unwrap();
        assert_eq!(m.route, 3);
        assert_eq!(m.param("name"), Some("bob"));
    }

    #[test]
    fn no_match() {
        let r = mastodon_router();
        assert_eq!(r.matches("/api/v2/instance"), None);
        assert_eq!(r.matches("/users/a/b/c"), None);
        assert_eq!(r.matches("/"), None);
    }

    #[test]
    fn trailing_slash_tolerated() {
        let r = mastodon_router();
        assert!(r.matches("/api/v1/instance/").is_some());
    }

    #[test]
    fn first_match_wins() {
        let mut r = Router::new();
        r.add("/a/:x");
        r.add("/a/b");
        let m = r.matches("/a/b").unwrap();
        assert_eq!(m.route, 0);
        assert_eq!(m.param("x"), Some("b"));
    }
}
