//! HTTP message types.

use bytes::Bytes;

/// Request methods used by the toolkit (a deliberate subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Method {
    Get,
    Post,
    Head,
}

impl Method {
    /// Canonical token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }

    /// Parse a token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

/// A status code with its canonical reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 429 Too Many Requests.
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Is this a 2xx status?
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path component of the request target (no query string).
    pub path: String,
    /// Parsed query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs (names lower-cased at parse time).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Bytes,
}

impl Request {
    /// A GET request for `path_and_query` with a `Host` header.
    pub fn get(host: &str, path_and_query: &str) -> Request {
        let (path, query) = split_target(path_and_query);
        Request {
            method: Method::Get,
            path,
            query,
            headers: vec![("host".into(), host.into())],
            body: Bytes::new(),
        }
    }

    /// First value of a (case-insensitive) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Host` header (virtual-host routing key).
    pub fn host(&self) -> Option<&str> {
        self.header("host")
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers (lower-case names).
    pub headers: Vec<(String, String)>,
    /// Body.
    pub body: Bytes,
    /// When set, the server writes *nothing* and resets the connection —
    /// the wire-level fault a mid-crawl instance death produces. The status
    /// and body are ignored; clients never observe this field (they see a
    /// connection reset instead of a response).
    pub hangup: bool,
}

impl Response {
    /// Empty response with a status.
    pub fn status(status: StatusCode) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Bytes::new(),
            hangup: false,
        }
    }

    /// A sentinel instructing the server to reset the connection without
    /// answering (models an abrupt instance death / RST mid-exchange).
    pub fn hangup() -> Response {
        Response {
            hangup: true,
            ..Response::status(StatusCode::SERVICE_UNAVAILABLE)
        }
    }

    /// 200 response with a JSON body.
    pub fn json(body: impl Into<Bytes>) -> Response {
        Response {
            status: StatusCode::OK,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into(),
            hangup: false,
        }
    }

    /// 200 response with an HTML body.
    pub fn html(body: impl Into<Bytes>) -> Response {
        Response {
            status: StatusCode::OK,
            headers: vec![("content-type".into(), "text/html; charset=utf-8".into())],
            body: body.into(),
            hangup: false,
        }
    }

    /// Attach a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// First value of a header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Split a request target into path and parsed query parameters.
pub fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((p, q)) => (p.to_string(), parse_query(q)),
    }
}

/// Parse `a=1&b=two` into pairs (no percent-decoding beyond `%XX` for the
/// characters the toolkit emits; plus-as-space is honoured).
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|s| !s.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Minimal percent-decoding.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trip() {
        for m in [Method::Get, Method::Post, Method::Head] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }

    #[test]
    fn status_reasons() {
        assert_eq!(StatusCode::OK.reason(), "OK");
        assert_eq!(StatusCode(503).reason(), "Service Unavailable");
        assert_eq!(StatusCode(999).reason(), "Unknown");
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
    }

    #[test]
    fn request_get_builds_host_and_query() {
        let r = Request::get("mstdn.jp", "/api/v1/timelines/public?limit=40&max_id=99");
        assert_eq!(r.host(), Some("mstdn.jp"));
        assert_eq!(r.path, "/api/v1/timelines/public");
        assert_eq!(r.query_param("limit"), Some("40"));
        assert_eq!(r.query_param("max_id"), Some("99"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let mut r = Request::get("h", "/");
        r.headers.push(("x-thing".into(), "1".into()));
        assert_eq!(r.header("X-Thing"), Some("1"));
    }

    #[test]
    fn wants_close_detection() {
        let mut r = Request::get("h", "/");
        assert!(!r.wants_close());
        r.headers.push(("connection".into(), "Close".into()));
        assert!(r.wants_close());
    }

    #[test]
    fn parse_query_forms() {
        assert_eq!(
            parse_query("a=1&b=&c"),
            vec![
                ("a".into(), "1".into()),
                ("b".into(), String::new()),
                ("c".into(), String::new())
            ]
        );
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn response_builders() {
        let r = Response::json(r#"{"ok":true}"#);
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.header("content-type"), Some("application/json"));
        assert_eq!(r.text(), r#"{"ok":true}"#);
    }
}
