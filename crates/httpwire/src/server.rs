//! Async HTTP server.
//!
//! One tokio task per connection, keep-alive by default, graceful shutdown
//! via a watch channel (the accept loop stops; in-flight exchanges drain on
//! their own or hit the per-read idle timeout). Handlers are async and get
//! the parsed [`Request`]; the server takes care of framing.

use crate::codec::{encode_response, parse_request};
use crate::types::{Request, Response, StatusCode};
use bytes::BytesMut;
use std::future::Future;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;

/// Boxed async handler.
pub type Handler =
    Arc<dyn Fn(Request) -> Pin<Box<dyn Future<Output = Response> + Send>> + Send + Sync>;

/// Server configuration + handler.
pub struct Server {
    handler: Handler,
    /// Idle-read timeout per connection.
    pub read_timeout: Duration,
}

impl Server {
    /// Build a server from an async closure.
    pub fn new<F, Fut>(f: F) -> Self
    where
        F: Fn(Request) -> Fut + Send + Sync + 'static,
        Fut: Future<Output = Response> + Send + 'static,
    {
        Self {
            handler: Arc::new(move |req| Box::pin(f(req))),
            read_timeout: Duration::from_secs(10),
        }
    }

    /// Set the per-connection idle-read timeout.
    pub fn with_read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Bind and start serving; returns a handle owning the listener task.
    pub async fn bind(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr).await?;
        let local = listener.local_addr()?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let handler = self.handler;
        let read_timeout = self.read_timeout;
        let task = tokio::spawn(async move {
            let mut shutdown = shutdown_rx.clone();
            loop {
                tokio::select! {
                    accepted = listener.accept() => {
                        match accepted {
                            Ok((stream, _peer)) => {
                                let h = handler.clone();
                                tokio::spawn(serve_connection(stream, h, read_timeout));
                            }
                            Err(_) => {
                                // transient accept errors (EMFILE etc.):
                                // brief pause, then continue accepting
                                tokio::time::sleep(Duration::from_millis(10)).await;
                            }
                        }
                    }
                    _ = shutdown.changed() => break,
                }
            }
        });
        Ok(ServerHandle {
            addr: local,
            shutdown: shutdown_tx,
            task,
        })
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: watch::Sender<bool>,
    task: tokio::task::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (useful with `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and wait for the accept loop to exit.
    pub async fn shutdown(self) {
        let _ = self.shutdown.send(true);
        let _ = self.task.await;
    }
}

async fn serve_connection(mut stream: TcpStream, handler: Handler, read_timeout: Duration) {
    let mut buf = BytesMut::with_capacity(4096);
    loop {
        // Parse as many pipelined requests as the buffer holds.
        let req = loop {
            match parse_request(&mut buf) {
                Ok(Some(req)) => break Some(req),
                Ok(None) => {
                    let mut chunk = [0u8; 4096];
                    let read =
                        tokio::time::timeout(read_timeout, stream.read(&mut chunk)).await;
                    match read {
                        Ok(Ok(0)) => break None,          // peer closed
                        Ok(Ok(n)) => buf.extend_from_slice(&chunk[..n]),
                        Ok(Err(_)) | Err(_) => break None, // io error / idle
                    }
                }
                Err(_) => {
                    // Malformed request: answer 400 and close.
                    let resp = Response::status(StatusCode::BAD_REQUEST);
                    let _ = stream.write_all(&encode_response(&resp)).await;
                    return;
                }
            }
        };
        let Some(req) = req else { return };
        let close = req.wants_close();
        let resp = handler(req).await;
        if resp.hangup {
            // Fault injection asked for an abrupt connection death: write
            // nothing and reset, so the client sees ECONNRESET mid-exchange
            // rather than a well-formed error response.
            stream.reset();
            return;
        }
        if stream.write_all(&encode_response(&resp)).await.is_err() {
            return;
        }
        if close {
            let _ = stream.shutdown().await;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::codec::encode_request;

    fn echo_server() -> Server {
        Server::new(|req: Request| async move {
            Response::json(format!(
                r#"{{"path":"{}","host":"{}"}}"#,
                req.path,
                req.host().unwrap_or("-")
            ))
        })
    }

    #[tokio::test]
    async fn basic_round_trip() {
        let handle = echo_server().bind("127.0.0.1:0").await.unwrap();
        let client = Client::default();
        let resp = client
            .get(handle.addr(), "a.example", "/api/v1/instance")
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert!(resp.text().contains("\"host\":\"a.example\""));
        handle.shutdown().await;
    }

    #[tokio::test]
    async fn concurrent_clients() {
        let handle = echo_server().bind("127.0.0.1:0").await.unwrap();
        let addr = handle.addr();
        let mut joins = Vec::new();
        for i in 0..32 {
            joins.push(tokio::spawn(async move {
                let client = Client::default();
                let resp = client
                    .get(addr, "h", &format!("/page/{i}"))
                    .await
                    .unwrap();
                assert!(resp.text().contains(&format!("/page/{i}")));
            }));
        }
        for j in joins {
            j.await.unwrap();
        }
        handle.shutdown().await;
    }

    #[tokio::test]
    async fn keep_alive_reuses_connection() {
        let handle = echo_server().bind("127.0.0.1:0").await.unwrap();
        let mut stream = TcpStream::connect(handle.addr()).await.unwrap();
        for path in ["/one", "/two", "/three"] {
            let req = Request::get("h", path);
            stream.write_all(&encode_request(&req)).await.unwrap();
            let mut buf = BytesMut::new();
            let resp = loop {
                let mut chunk = [0u8; 1024];
                let n = stream.read(&mut chunk).await.unwrap();
                assert!(n > 0, "server closed unexpectedly");
                buf.extend_from_slice(&chunk[..n]);
                if let Some(r) = crate::codec::parse_response(&mut buf).unwrap() {
                    break r;
                }
            };
            assert!(resp.text().contains(path));
        }
        handle.shutdown().await;
    }

    #[tokio::test]
    async fn malformed_request_gets_400() {
        let handle = echo_server().bind("127.0.0.1:0").await.unwrap();
        let mut stream = TcpStream::connect(handle.addr()).await.unwrap();
        stream.write_all(b"GARBAGE REQUEST\r\n\r\n").await.unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).await.unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        handle.shutdown().await;
    }

    #[tokio::test]
    async fn connection_close_honoured() {
        let handle = echo_server().bind("127.0.0.1:0").await.unwrap();
        let mut stream = TcpStream::connect(handle.addr()).await.unwrap();
        let mut req = Request::get("h", "/bye");
        req.headers.push(("connection".into(), "close".into()));
        stream.write_all(&encode_request(&req)).await.unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).await.unwrap(); // EOF after response
        assert!(String::from_utf8_lossy(&buf).contains("/bye"));
        handle.shutdown().await;
    }

    #[tokio::test]
    async fn hangup_resets_without_response() {
        let handle = Server::new(|_req| async { Response::hangup() })
            .bind("127.0.0.1:0")
            .await
            .unwrap();
        let client = Client::default();
        let err = client.get(handle.addr(), "h", "/doomed").await.unwrap_err();
        assert!(
            matches!(
                err,
                crate::client::ClientError::Io(_) | crate::client::ClientError::ConnectionClosed
            ),
            "expected a connection-level failure, got {err:?}"
        );
        handle.shutdown().await;
    }

    #[tokio::test]
    async fn shutdown_stops_accepting() {
        let handle = echo_server().bind("127.0.0.1:0").await.unwrap();
        let addr = handle.addr();
        handle.shutdown().await;
        let client = Client::default();
        let err = client.get(addr, "h", "/").await;
        assert!(err.is_err(), "connect after shutdown should fail");
    }
}
