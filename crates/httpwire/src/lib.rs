//! # fediscope-httpwire
//!
//! A minimal HTTP/1.1 implementation built from scratch on tokio — the wire
//! substrate for the crawler and the simulated instances. Implementing it
//! here (rather than pulling in hyper) keeps the workspace within its
//! dependency policy and gives the simulator full control over failure
//! injection at the socket level.
//!
//! Implemented:
//! - request/response head parsing and serialisation (HTTP/1.0 and 1.1),
//! - `Content-Length` body framing,
//! - keep-alive connections with `Connection: close` handling,
//! - a path router with `:param` captures,
//! - an async server with graceful shutdown and per-connection timeouts,
//! - an async client with request timeouts and virtual-host support.
//!
//! Deliberately **not** implemented (out of scope for the study's traffic):
//! chunked transfer encoding, compression, TLS (the paper's HTTPS layer is
//! modelled at the certificate-metadata level instead), HTTP/2, trailers,
//! and multipart bodies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "net")]
pub mod client;
pub mod codec;
pub mod router;
#[cfg(feature = "net")]
pub mod server;
pub mod types;

#[cfg(feature = "net")]
pub use client::{Client, ClientError};
pub use router::Router;
#[cfg(feature = "net")]
pub use server::{Server, ServerHandle};
pub use types::{Method, Request, Response, StatusCode};
