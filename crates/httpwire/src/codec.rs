//! Wire-format encoding and incremental parsing.
//!
//! The parser is *incremental*: `parse_request` / `parse_response` return
//! `Ok(None)` when more bytes are needed, letting the server and client read
//! from sockets chunk by chunk without framing assumptions (the async-book's
//! cancellation-safety guidance: buffer ownership lives outside the future).

use crate::types::{split_target, Method, Request, Response, StatusCode};
use bytes::{Bytes, BytesMut};

/// Maximum accepted head (request/status line + headers) size.
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted body size (the toolkit's payloads are small JSON/HTML).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed message.
    Invalid(&'static str),
    /// Head or body exceeded the configured limits.
    TooLarge,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Invalid(what) => write!(f, "malformed HTTP message: {what}"),
            ParseError::TooLarge => write!(f, "HTTP message too large"),
        }
    }
}

impl std::error::Error for ParseError {}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn parse_headers(lines: std::str::Lines<'_>) -> Result<Vec<(String, String)>, ParseError> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Invalid("header without colon"))?;
        headers.push((
            name.trim().to_ascii_lowercase(),
            value.trim().to_string(),
        ));
    }
    Ok(headers)
}

fn content_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    match headers.iter().find(|(n, _)| n == "content-length") {
        None => Ok(0),
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Invalid("bad content-length")),
    }
}

/// Try to parse one complete request from the front of `buf`.
///
/// On success the parsed bytes are consumed from `buf`. `Ok(None)` means
/// "need more data".
pub fn parse_request(buf: &mut BytesMut) -> Result<Option<Request>, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(ParseError::TooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD {
        return Err(ParseError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| ParseError::Invalid("non-utf8 head"))?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or(ParseError::Invalid("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(ParseError::Invalid("bad method"))?;
    let target = parts.next().ok_or(ParseError::Invalid("missing target"))?;
    let version = parts.next().ok_or(ParseError::Invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Invalid("unsupported version"));
    }
    let (path, query) = split_target(target);
    let mut headers = parse_headers(lines)?;
    let body_len = content_length(&headers)?;
    // content-length is framing metadata, not application data: dropping it
    // here makes encode → parse the identity.
    headers.retain(|(n, _)| n != "content-length");
    if body_len > MAX_BODY {
        return Err(ParseError::TooLarge);
    }
    if buf.len() < head_end + body_len {
        return Ok(None);
    }
    let _ = buf.split_to(head_end);
    let body = buf.split_to(body_len).freeze();
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Try to parse one complete response from the front of `buf`.
pub fn parse_response(buf: &mut BytesMut) -> Result<Option<Response>, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(ParseError::TooLarge);
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| ParseError::Invalid("non-utf8 head"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or(ParseError::Invalid("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().ok_or(ParseError::Invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Invalid("unsupported version"));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or(ParseError::Invalid("bad status code"))?;
    let mut headers = parse_headers(lines)?;
    let body_len = content_length(&headers)?;
    headers.retain(|(n, _)| n != "content-length");
    if body_len > MAX_BODY {
        return Err(ParseError::TooLarge);
    }
    if buf.len() < head_end + body_len {
        return Ok(None);
    }
    let _ = buf.split_to(head_end);
    let body = buf.split_to(body_len).freeze();
    Ok(Some(Response {
        status: StatusCode(code),
        headers,
        body,
        hangup: false,
    }))
}

/// Serialise a request (adds `content-length`; never duplicates it).
pub fn encode_request(req: &Request) -> Bytes {
    let mut target = req.path.clone();
    if !req.query.is_empty() {
        target.push('?');
        for (i, (k, v)) in req.query.iter().enumerate() {
            if i > 0 {
                target.push('&');
            }
            target.push_str(k);
            target.push('=');
            target.push_str(v);
        }
    }
    let mut out = format!("{} {} HTTP/1.1\r\n", req.method.as_str(), target);
    for (n, v) in &req.headers {
        if n != "content-length" {
            out.push_str(&format!("{n}: {v}\r\n"));
        }
    }
    out.push_str(&format!("content-length: {}\r\n\r\n", req.body.len()));
    let mut bytes = BytesMut::from(out.as_bytes());
    bytes.extend_from_slice(&req.body);
    bytes.freeze()
}

/// Serialise a response (adds `content-length`).
pub fn encode_response(resp: &Response) -> Bytes {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\n",
        resp.status.0,
        resp.status.reason()
    );
    for (n, v) in &resp.headers {
        if n != "content-length" {
            out.push_str(&format!("{n}: {v}\r\n"));
        }
    }
    out.push_str(&format!("content-length: {}\r\n\r\n", resp.body.len()));
    let mut bytes = BytesMut::from(out.as_bytes());
    bytes.extend_from_slice(&resp.body);
    bytes.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request {
            method: Method::Post,
            path: "/inbox".into(),
            query: vec![("page".into(), "2".into())],
            headers: vec![
                ("host".into(), "a.example".into()),
                ("content-type".into(), "application/json".into()),
            ],
            body: Bytes::from_static(b"{\"x\":1}"),
        };
        let mut buf = BytesMut::from(&encode_request(&req)[..]);
        let parsed = parse_request(&mut buf).unwrap().unwrap();
        assert_eq!(parsed, req);
        assert!(buf.is_empty());
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json(r#"{"users":5}"#);
        let mut buf = BytesMut::from(&encode_response(&resp)[..]);
        let parsed = parse_response(&mut buf).unwrap().unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.text(), r#"{"users":5}"#);
    }

    #[test]
    fn incremental_parse_needs_more_data() {
        let req = Request::get("h.example", "/api/v1/instance");
        let encoded = encode_request(&req);
        let mut buf = BytesMut::new();
        for chunk in encoded.chunks(7) {
            // every prefix except the last must yield Ok(None)
            let before = buf.len();
            buf.extend_from_slice(chunk);
            if before + chunk.len() < encoded.len() {
                assert_eq!(parse_request(&mut buf).unwrap(), None);
            }
        }
        let parsed = parse_request(&mut buf).unwrap().unwrap();
        assert_eq!(parsed.path, "/api/v1/instance");
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let a = encode_request(&Request::get("h", "/one"));
        let b = encode_request(&Request::get("h", "/two"));
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b);
        assert_eq!(parse_request(&mut buf).unwrap().unwrap().path, "/one");
        assert_eq!(parse_request(&mut buf).unwrap().unwrap().path, "/two");
        assert_eq!(parse_request(&mut buf).unwrap(), None);
    }

    #[test]
    fn body_waits_for_content_length() {
        let mut buf = BytesMut::from(
            &b"POST /x HTTP/1.1\r\nhost: h\r\ncontent-length: 5\r\n\r\nab"[..],
        );
        assert_eq!(parse_request(&mut buf).unwrap(), None);
        buf.extend_from_slice(b"cde");
        let req = parse_request(&mut buf).unwrap().unwrap();
        assert_eq!(&req.body[..], b"abcde");
    }

    #[test]
    fn rejects_garbage() {
        let mut buf = BytesMut::from(&b"NONSENSE\r\n\r\n"[..]);
        assert!(parse_request(&mut buf).is_err());
        let mut buf = BytesMut::from(&b"GET /x HTTP/3.0\r\n\r\n"[..]);
        assert!(parse_request(&mut buf).is_err());
        let mut buf = BytesMut::from(&b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"[..]);
        assert!(parse_request(&mut buf).is_err());
        let mut buf =
            BytesMut::from(&b"GET /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n"[..]);
        assert!(parse_request(&mut buf).is_err());
    }

    #[test]
    fn oversized_head_rejected() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"GET / HTTP/1.1\r\n");
        let filler = format!("x-pad: {}\r\n", "a".repeat(MAX_HEAD));
        buf.extend_from_slice(filler.as_bytes());
        assert_eq!(parse_request(&mut buf), Err(ParseError::TooLarge));
    }

    #[test]
    fn oversized_body_rejected() {
        let head = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut buf = BytesMut::from(head.as_bytes());
        assert_eq!(parse_request(&mut buf), Err(ParseError::TooLarge));
    }

    #[test]
    fn status_line_with_reason_phrase_spaces() {
        let mut buf =
            BytesMut::from(&b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 0\r\n\r\n"[..]);
        let resp = parse_response(&mut buf).unwrap().unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_token() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9-]{0,12}".prop_map(|s| s)
    }

    proptest! {
        /// encode → parse is the identity for arbitrary well-formed requests.
        #[test]
        fn request_round_trips(
            path_segs in proptest::collection::vec(arb_token(), 1..4),
            query in proptest::collection::vec((arb_token(), arb_token()), 0..4),
            body in proptest::collection::vec(any::<u8>(), 0..512),
            host in arb_token()
        ) {
            let req = Request {
                method: Method::Post,
                path: format!("/{}", path_segs.join("/")),
                query,
                headers: vec![("host".into(), host)],
                body: Bytes::from(body),
            };
            let mut buf = BytesMut::from(&encode_request(&req)[..]);
            let parsed = parse_request(&mut buf).unwrap().unwrap();
            prop_assert_eq!(parsed, req);
            prop_assert!(buf.is_empty());
        }

        /// The parser never panics on arbitrary byte soup.
        #[test]
        fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut buf = BytesMut::from(&data[..]);
            let _ = parse_request(&mut buf);
            let mut buf = BytesMut::from(&data[..]);
            let _ = parse_response(&mut buf);
        }

        /// Responses round-trip with arbitrary bodies.
        #[test]
        fn response_round_trips(
            code in 100u16..600,
            body in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            let resp = Response {
                status: StatusCode(code),
                headers: vec![("content-type".into(), "application/octet-stream".into())],
                body: Bytes::from(body),
                hangup: false,
            };
            let mut buf = BytesMut::from(&encode_response(&resp)[..]);
            let parsed = parse_response(&mut buf).unwrap().unwrap();
            prop_assert_eq!(parsed.status, resp.status);
            prop_assert_eq!(parsed.body, resp.body);
        }
    }
}
