//! Async HTTP client.
//!
//! One connection per request (`connection: close`), bounded by a connect
//! timeout and an overall request deadline. Deliberately simple: the
//! crawler's politeness delays dominate, so connection pooling would buy
//! nothing and cost cancellation-safety complexity.

use crate::codec::{encode_request, parse_response, ParseError};
use crate::types::{Request, Response};
use bytes::BytesMut;
use std::net::SocketAddr;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

/// Client failure modes. The crawler maps all of these to "instance down".
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed (refused, unreachable, …).
    Connect(std::io::Error),
    /// Read/write failed mid-exchange.
    Io(std::io::Error),
    /// The deadline elapsed.
    Timeout,
    /// The server spoke something that is not HTTP.
    Malformed(ParseError),
    /// The server closed before a full response arrived.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Malformed(e) => write!(f, "malformed response: {e}"),
            ClientError::ConnectionClosed => write!(f, "connection closed early"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A reusable client configuration.
#[derive(Debug, Clone)]
pub struct Client {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Whole-request deadline (connect + write + read).
    pub request_timeout: Duration,
}

impl Default for Client {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(15),
        }
    }
}

impl Client {
    /// Client with both timeouts set to `t`.
    pub fn with_timeout(t: Duration) -> Self {
        Self {
            connect_timeout: t,
            request_timeout: t,
        }
    }

    /// Issue `req` to `addr`. A `connection: close` header is added so the
    /// exchange is exactly one request/response.
    pub async fn request(
        &self,
        addr: SocketAddr,
        mut req: Request,
    ) -> Result<Response, ClientError> {
        if req.header("connection").is_none() {
            req.headers.push(("connection".into(), "close".into()));
        }
        let fut = async {
            let stream = tokio::time::timeout(self.connect_timeout, TcpStream::connect(addr))
                .await
                .map_err(|_| ClientError::Timeout)?
                .map_err(ClientError::Connect)?;
            self.exchange(stream, &req).await
        };
        tokio::time::timeout(self.request_timeout, fut)
            .await
            .map_err(|_| ClientError::Timeout)?
    }

    async fn exchange(
        &self,
        mut stream: TcpStream,
        req: &Request,
    ) -> Result<Response, ClientError> {
        stream
            .write_all(&encode_request(req))
            .await
            .map_err(ClientError::Io)?;
        let mut buf = BytesMut::with_capacity(4096);
        loop {
            match parse_response(&mut buf).map_err(ClientError::Malformed)? {
                Some(resp) => return Ok(resp),
                None => {
                    let mut chunk = [0u8; 4096];
                    let n = stream.read(&mut chunk).await.map_err(ClientError::Io)?;
                    if n == 0 {
                        return Err(ClientError::ConnectionClosed);
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    /// GET `path_and_query` from `addr` with a `Host` header (virtual-host
    /// addressing — the simulator serves thousands of instances behind one
    /// listener).
    pub async fn get(
        &self,
        addr: SocketAddr,
        host: &str,
        path_and_query: &str,
    ) -> Result<Response, ClientError> {
        self.request(addr, Request::get(host, path_and_query)).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::types::{Response, StatusCode};

    #[tokio::test]
    async fn timeout_on_slow_handler() {
        let server = Server::new(|_req| async {
            tokio::time::sleep(Duration::from_secs(5)).await;
            Response::status(StatusCode::OK)
        });
        let handle = server.bind("127.0.0.1:0").await.unwrap();
        let client = Client {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_millis(100),
        };
        let err = client.get(handle.addr(), "h", "/slow").await.unwrap_err();
        assert!(matches!(err, ClientError::Timeout), "got {err:?}");
        handle.shutdown().await;
    }

    #[tokio::test]
    async fn connect_refused_maps_to_connect_error() {
        let client = Client::with_timeout(Duration::from_secs(1));
        // bind-then-drop to find a (very likely) free port
        let l = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        let err = client.get(addr, "h", "/").await.unwrap_err();
        assert!(
            matches!(err, ClientError::Connect(_) | ClientError::Timeout),
            "got {err:?}"
        );
    }

    #[tokio::test]
    async fn non_http_server_yields_malformed() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut s, _) = listener.accept().await.unwrap();
            use tokio::io::AsyncWriteExt;
            let _ = s.write_all(b"SMTP 220 hello\r\n\r\n").await;
        });
        let client = Client::with_timeout(Duration::from_secs(2));
        let err = client.get(addr, "h", "/").await.unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Malformed(_) | ClientError::ConnectionClosed
            ),
            "got {err:?}"
        );
    }

    #[tokio::test]
    async fn early_close_detected() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (s, _) = listener.accept().await.unwrap();
            drop(s); // close immediately
        });
        let client = Client::with_timeout(Duration::from_secs(2));
        let err = client.get(addr, "h", "/").await.unwrap_err();
        assert!(
            matches!(err, ClientError::ConnectionClosed | ClientError::Io(_)),
            "got {err:?}"
        );
    }

    #[tokio::test]
    async fn display_impls() {
        let e = ClientError::Timeout;
        assert_eq!(e.to_string(), "request timed out");
    }
}
