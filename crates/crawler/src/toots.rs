//! The toot crawler: walks every reachable instance's public timeline.
//!
//! Mirrors §3's methodology: start from the seed list, skip instances that
//! are offline at crawl time, page through the timeline "iterating over the
//! entire history of toots on the instance", insert artificial delays
//! between calls, and record per-author counts. Instances that block
//! crawling (403) are recorded as not crawled — the source of the paper's
//! 62% coverage.

use crate::discovery::{Seed, SeedList};
use crate::politeness::Politeness;
use crate::retry::{fetch_with_retry, FetchResult};
use fediscope_httpwire::Client;
use fediscope_model::datasets::{TootCrawlRecord, TootsDataset};
use fediscope_model::ids::UserId;
use std::collections::HashMap;
use std::sync::Arc;
use tokio::sync::Semaphore;

/// Page size the crawler requests.
const PAGE_LIMIT: usize = 100;
/// Safety valve: maximum pages per instance (prevents a buggy server from
/// trapping the crawler; generously above anything the tests generate).
const MAX_PAGES: usize = 100_000;

/// Crawl all seeds; one worker per instance, bounded by
/// `politeness.concurrency` (the paper's 10-threads-by-7-machines pool).
pub async fn crawl_toots(
    seeds: &SeedList,
    politeness: &Politeness,
    client: &Client,
) -> TootsDataset {
    let sem = Arc::new(Semaphore::new(politeness.concurrency));
    let mut joins = Vec::with_capacity(seeds.len());
    for seed in seeds.entries() {
        let seed = seed.clone();
        let sem = sem.clone();
        let client = client.clone();
        let politeness = politeness.clone();
        joins.push(tokio::spawn(async move {
            let _permit = sem.acquire_owned().await.expect("semaphore open");
            crawl_instance(&client, &politeness, &seed).await
        }));
    }
    let mut records = Vec::with_capacity(seeds.len());
    for j in joins {
        records.push(j.await.expect("crawl task panicked"));
    }
    records.sort_by_key(|r| r.instance);
    TootsDataset { records }
}

/// Crawl a single instance's public timeline.
pub async fn crawl_instance(
    client: &Client,
    politeness: &Politeness,
    seed: &Seed,
) -> TootCrawlRecord {
    let mut record = TootCrawlRecord {
        instance: seed.instance,
        crawled: false,
        home_toots: 0,
        remote_toots: 0,
        tooting_users: 0,
        user_toots: Vec::new(),
    };
    let mut per_user: HashMap<u32, u32> = HashMap::new();
    let mut max_id: Option<u64> = None;
    let mut pages = 0usize;
    loop {
        if pages >= MAX_PAGES {
            break;
        }
        let path = match max_id {
            None => format!("/api/v1/timelines/public?local=true&limit={PAGE_LIMIT}"),
            Some(m) => {
                format!("/api/v1/timelines/public?local=true&limit={PAGE_LIMIT}&max_id={m}")
            }
        };
        let page = fetch_page(client, politeness, seed, pages as u64, &path).await;
        let Some(toots) = page else {
            // offline / blocked mid-crawl: keep whatever was gathered but
            // flag not-crawled only if nothing arrived at all
            record.crawled = pages > 0;
            break;
        };
        record.crawled = true;
        if toots.is_empty() {
            break;
        }
        pages += 1;
        for toot in &toots {
            max_id = Some(toot.id);
            if toot.remote {
                record.remote_toots += 1;
            } else {
                record.home_toots += 1;
                *per_user.entry(toot.author).or_insert(0) += 1;
            }
        }
        if politeness.per_call_delay > std::time::Duration::ZERO {
            tokio::time::sleep(politeness.per_call_delay).await;
        }
    }
    record.tooting_users = per_user.len() as u32;
    let mut user_toots: Vec<(UserId, u32)> = per_user
        .into_iter()
        .map(|(u, c)| (UserId(u), c))
        .collect();
    user_toots.sort_unstable();
    record.user_toots = user_toots;
    record
}

/// A parsed timeline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineToot {
    /// Toot id (pagination cursor).
    pub id: u64,
    /// Author's local user index (`u<idx>` handles).
    pub author: u32,
    /// Whether the author lives on another instance (acct contains `@`).
    pub remote: bool,
}

async fn fetch_page(
    client: &Client,
    politeness: &Politeness,
    seed: &Seed,
    page: u64,
    path: &str,
) -> Option<Vec<TimelineToot>> {
    // jitter token: instance in the high half, page number in the low half,
    // so every (instance, page) pair waits its own deterministic schedule
    let token = (u64::from(seed.instance.0) << 32) | (page & 0xffff_ffff);
    match fetch_with_retry(client, politeness, None, seed, token, path).await {
        FetchResult::Ok(resp) => parse_timeline(&resp.text()),
        FetchResult::Denied(_) => None, // 403 blocked, 503 down, …
        FetchResult::Unreachable => None,
    }
}

/// Parse a timeline page.
pub fn parse_timeline(body: &str) -> Option<Vec<TimelineToot>> {
    let v: serde_json::Value = serde_json::from_str(body).ok()?;
    let arr = v.as_array()?;
    let mut out = Vec::with_capacity(arr.len());
    for t in arr {
        let id: u64 = t["id"].as_str()?.parse().ok()?;
        let acct = t["account"]["acct"].as_str()?;
        let (handle, remote) = match acct.split_once('@') {
            Some((h, _domain)) => (h, true),
            None => (acct, false),
        };
        let author: u32 = handle.strip_prefix('u')?.parse().ok()?;
        out.push(TimelineToot { id, author, remote });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_timeline_page() {
        let body = r#"[
            {"id": "41", "account": {"acct": "u7"}, "content": "x"},
            {"id": "40", "account": {"acct": "u9@other.test"}, "content": "y"}
        ]"#;
        let toots = parse_timeline(body).unwrap();
        assert_eq!(toots.len(), 2);
        assert_eq!(toots[0], TimelineToot { id: 41, author: 7, remote: false });
        assert_eq!(toots[1], TimelineToot { id: 40, author: 9, remote: true });
    }

    #[test]
    fn parse_rejects_bad_pages() {
        assert!(parse_timeline("{}").is_none());
        assert!(parse_timeline(r#"[{"id": 41}]"#).is_none());
        assert!(parse_timeline(r#"[{"id": "x", "account": {"acct": "u1"}}]"#).is_none());
    }

    #[test]
    fn empty_page_is_empty_vec() {
        assert_eq!(parse_timeline("[]"), Some(vec![]));
    }
}
