//! The follower scraper: builds the *Graphs* dataset.
//!
//! §3: "we scraped the follower relationships for the 239K users we
//! encountered who have tooted at least once … simply paging through their
//! follower list. This provided us with the ego networks for each user."
//! The induced graph therefore contains every *scraped* user plus every
//! account observed following them (853K accounts vs 239K scraped).

use crate::discovery::{Seed, SeedList};
use crate::politeness::Politeness;
use crate::retry::{fetch_with_retry, FetchResult};
use fediscope_httpwire::Client;
use fediscope_model::datasets::GraphDataset;
use fediscope_model::ids::{InstanceId, UserId};
use std::collections::HashMap;
use std::sync::Arc;
use tokio::sync::Semaphore;

/// Scrape the follower lists of `targets` (user id + home instance pairs,
/// typically the tooting users discovered by the toot crawl).
pub async fn scrape_followers(
    seeds: &SeedList,
    targets: &[(UserId, InstanceId)],
    politeness: &Politeness,
    client: &Client,
) -> GraphDataset {
    let by_instance: HashMap<InstanceId, Seed> = seeds
        .entries()
        .iter()
        .map(|s| (s.instance, s.clone()))
        .collect();
    let sem = Arc::new(Semaphore::new(politeness.concurrency));
    let mut joins = Vec::with_capacity(targets.len());
    for &(user, instance) in targets {
        let Some(seed) = by_instance.get(&instance).cloned() else {
            continue;
        };
        let sem = sem.clone();
        let client = client.clone();
        let politeness = politeness.clone();
        joins.push(tokio::spawn(async move {
            let _permit = sem.acquire_owned().await.expect("semaphore open");
            let followers = scrape_user(&client, &politeness, &seed, user).await;
            (user, followers)
        }));
    }
    let mut dataset = GraphDataset::default();
    for j in joins {
        let (user, followers) = j.await.expect("scrape task panicked");
        dataset.accounts.push(user);
        for f in followers {
            dataset.accounts.push(f);
            dataset.follows.push((f, user));
        }
    }
    dataset.normalise();
    dataset
}

/// GET through the shared retry engine ([`crate::retry`]); `None` when the
/// resource is unreachable or persistently failing.
async fn get_with_retry(
    client: &Client,
    politeness: &Politeness,
    seed: &Seed,
    user: UserId,
    page: u64,
    path: &str,
) -> Option<String> {
    let token = (u64::from(user.0) << 24) ^ page;
    match fetch_with_retry(client, politeness, None, seed, token, path).await {
        FetchResult::Ok(resp) => Some(resp.text()),
        FetchResult::Denied(_) | FetchResult::Unreachable => None,
    }
}

/// Page through one user's follower list; returns follower user ids
/// (partial on mid-scrape failure, like the real scraper).
pub async fn scrape_user(
    client: &Client,
    politeness: &Politeness,
    seed: &Seed,
    user: UserId,
) -> Vec<UserId> {
    let mut out = Vec::new();
    let mut page = 1u64;
    loop {
        let path = format!("/users/u{}/followers?page={page}", user.0);
        let Some(body) = get_with_retry(client, politeness, seed, user, page, &path).await
        else {
            return out;
        };
        let Some((items, next)) = parse_followers_page(&body) else {
            return out;
        };
        out.extend(items);
        if politeness.per_call_delay > std::time::Duration::ZERO {
            tokio::time::sleep(politeness.per_call_delay).await;
        }
        match next {
            Some(n) => page = n,
            None => break,
        }
    }
    out
}

/// Parse one follower page: returns `(follower ids, next page)`.
pub fn parse_followers_page(body: &str) -> Option<(Vec<UserId>, Option<u64>)> {
    let v: serde_json::Value = serde_json::from_str(body).ok()?;
    let items = v["items"].as_array()?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let addr = item.as_str()?;
        let handle = match addr.split_once('@') {
            Some((h, _domain)) => h,
            None => addr,
        };
        let id: u32 = handle.strip_prefix('u')?.parse().ok()?;
        out.push(UserId(id));
    }
    Some((out, v["next"].as_u64()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_page_with_next() {
        let body = r#"{"items": ["u3", "u8@other.test"], "next": 2, "totalItems": 90}"#;
        let (items, next) = parse_followers_page(body).unwrap();
        assert_eq!(items, vec![UserId(3), UserId(8)]);
        assert_eq!(next, Some(2));
    }

    #[test]
    fn parse_last_page() {
        let body = r#"{"items": [], "next": null, "totalItems": 0}"#;
        let (items, next) = parse_followers_page(body).unwrap();
        assert!(items.is_empty());
        assert_eq!(next, None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_followers_page("[]").is_none());
        assert!(parse_followers_page(r#"{"items": [7]}"#).is_none());
        assert!(parse_followers_page(r#"{"items": ["x3"]}"#).is_none());
    }
}
