//! The shared retry engine: every crawler fetch goes through here.
//!
//! One function, [`fetch_with_retry`], implements the full robustness
//! state machine the three crawlers (monitor, toots, followers) share:
//!
//! ```text
//!            ┌──────────── breaker open? ── yes ──► Unreachable (fast-fail)
//!            ▼
//!   GET ──► 2xx ─────────────────────────────────► Ok(response)
//!    ▲       429 ── waits left? ── sleep(retry-after, capped) ──┐
//!    │       5xx transient ── retries left? ── sleep(backoff+jitter) ──┐
//!    │       other status ───────────────────────► Denied(status)      │
//!    │       connection error ── retries left? ── sleep(backoff+jitter)│
//!    │                          └─ exhausted ────► Unreachable         │
//!    └─────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The circuit breaker counts only *connection-level* failures
//! (refused/reset/timeout). A well-formed 503 is an answer — the instance
//! is reachable and merely down, which is signal the monitor must keep
//! seeing — so it never trips the breaker.
//!
//! Waits are virtual-time sleeps with deterministic jitter
//! ([`Politeness::backoff_jittered`]), so a crawl under any fault plan
//! replays byte-identically from the same seed.

use crate::discovery::Seed;
use crate::politeness::Politeness;
use fediscope_httpwire::{Client, Response, StatusCode};
use std::collections::HashMap;
use std::sync::Mutex;

/// Outcome of a fetch after the retry budget is spent.
#[derive(Debug)]
pub enum FetchResult {
    /// A 2xx response.
    Ok(Response),
    /// The server answered, persistently, with this non-2xx status.
    Denied(StatusCode),
    /// Connection-level failure (refused, reset, timeout) outlived every
    /// retry — or the instance's circuit breaker was open.
    Unreachable,
}

impl FetchResult {
    /// Did the fetch produce a usable response?
    pub fn is_ok(&self) -> bool {
        matches!(self, FetchResult::Ok(_))
    }
}

/// Per-instance circuit-breaker state.
#[derive(Debug, Default, Clone, Copy)]
struct Breaker {
    /// Consecutive connection-level fetch failures.
    consecutive: u32,
    /// Fast-fails remaining before a probe is let through.
    cooldown: u32,
}

/// Circuit breakers for a whole crawl, keyed by instance id. Cooldowns are
/// counted in *requests*, not time: the bank behaves identically under
/// virtual and wall clocks, and an idle crawler holds no stale open
/// breakers.
#[derive(Debug, Default)]
pub struct BreakerBank {
    inner: Mutex<HashMap<u32, Breaker>>,
}

impl BreakerBank {
    /// Fresh bank with every breaker closed.
    pub fn new() -> Self {
        Self::default()
    }

    /// May a request to `instance` proceed? Open breakers fast-fail
    /// `breaker_cooldown` requests, then admit one half-open probe.
    fn admit(&self, pol: &Politeness, instance: u32) -> bool {
        if pol.breaker_threshold == 0 {
            return true;
        }
        let mut map = self.inner.lock().expect("breaker bank poisoned");
        let b = map.entry(instance).or_default();
        if b.consecutive < pol.breaker_threshold {
            return true;
        }
        if b.cooldown > 0 {
            b.cooldown -= 1;
            return false;
        }
        true // half-open probe
    }

    /// Record a reachable instance (any HTTP response): closes the breaker.
    fn record_reachable(&self, pol: &Politeness, instance: u32) {
        if pol.breaker_threshold == 0 {
            return;
        }
        let mut map = self.inner.lock().expect("breaker bank poisoned");
        map.remove(&instance);
    }

    /// Record a connection-level fetch failure; (re)opens the breaker once
    /// the threshold is crossed.
    fn record_unreachable(&self, pol: &Politeness, instance: u32) {
        if pol.breaker_threshold == 0 {
            return;
        }
        let mut map = self.inner.lock().expect("breaker bank poisoned");
        let b = map.entry(instance).or_default();
        b.consecutive = b.consecutive.saturating_add(1);
        if b.consecutive >= pol.breaker_threshold {
            b.cooldown = pol.breaker_cooldown;
        }
    }

    /// Snapshot the bank as `(instance, consecutive, cooldown)` rows,
    /// sorted by instance id. All-zero rows (a closed breaker with no
    /// failure history — behaviourally identical to an absent entry) are
    /// omitted, so two banks that behave identically export identically.
    pub fn export_state(&self) -> Vec<(u32, u32, u32)> {
        let map = self.inner.lock().expect("breaker bank poisoned");
        let mut rows: Vec<(u32, u32, u32)> = map
            .iter()
            .filter(|(_, b)| b.consecutive != 0 || b.cooldown != 0)
            .map(|(&id, b)| (id, b.consecutive, b.cooldown))
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Rebuild a bank from exported rows (checkpoint resume). Failure
    /// counts and cooldown budgets continue exactly where they stopped —
    /// an open breaker stays open for the *remaining* fast-fails, never a
    /// fresh full cooldown.
    pub fn restore_state(rows: &[(u32, u32, u32)]) -> Self {
        let bank = Self::new();
        {
            let mut map = bank.inner.lock().expect("breaker bank poisoned");
            for &(id, consecutive, cooldown) in rows {
                map.insert(
                    id,
                    Breaker {
                        consecutive,
                        cooldown,
                    },
                );
            }
        }
        bank
    }

    /// Number of currently open breakers (diagnostics).
    pub fn open_count(&self, pol: &Politeness) -> usize {
        if pol.breaker_threshold == 0 {
            return 0;
        }
        self.inner
            .lock()
            .expect("breaker bank poisoned")
            .values()
            .filter(|b| b.consecutive >= pol.breaker_threshold)
            .count()
    }
}

/// Is this status a transient server-side failure worth retrying?
fn is_transient(status: StatusCode) -> bool {
    matches!(status.0, 500 | 502 | 504)
}

/// GET `path` from `seed` with the full retry/backoff/breaker state
/// machine. `jitter_token` seeds the deterministic jitter stream — pass
/// something stable per call site (instance id, page number) so replays
/// wait identically.
pub async fn fetch_with_retry(
    client: &Client,
    pol: &Politeness,
    breakers: Option<&BreakerBank>,
    seed: &Seed,
    jitter_token: u64,
    path: &str,
) -> FetchResult {
    if let Some(bank) = breakers {
        if !bank.admit(pol, seed.instance.0) {
            return FetchResult::Unreachable;
        }
    }
    let mut attempt = 0u32;
    let mut rate_limit_waits = 0u32;
    loop {
        match client.get(seed.addr, &seed.domain, path).await {
            Ok(resp) => {
                if let Some(bank) = breakers {
                    bank.record_reachable(pol, seed.instance.0);
                }
                if resp.status.is_success() {
                    return FetchResult::Ok(resp);
                }
                if resp.status == StatusCode::TOO_MANY_REQUESTS {
                    // 429s ride their own budget: honour retry-after
                    // (capped) so a budgeted epoch can still be drained.
                    if rate_limit_waits < pol.rate_limit_waits {
                        rate_limit_waits += 1;
                        let wait = match resp
                            .header("retry-after")
                            .and_then(|v| v.trim().parse::<u64>().ok())
                        {
                            Some(secs) => pol.clamp_retry_after(secs),
                            None => pol.backoff_jittered(rate_limit_waits - 1, jitter_token),
                        };
                        tokio::time::sleep(wait).await;
                        continue;
                    }
                    return FetchResult::Denied(resp.status);
                }
                if is_transient(resp.status) && attempt < pol.retries {
                    tokio::time::sleep(pol.backoff_jittered(attempt, jitter_token)).await;
                    attempt += 1;
                    continue;
                }
                return FetchResult::Denied(resp.status);
            }
            Err(_) => {
                if attempt < pol.retries {
                    tokio::time::sleep(pol.backoff_jittered(attempt, jitter_token)).await;
                    attempt += 1;
                    continue;
                }
                if let Some(bank) = breakers {
                    bank.record_unreachable(pol, seed.instance.0);
                }
                return FetchResult::Unreachable;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::ids::InstanceId;

    fn pol() -> Politeness {
        Politeness {
            breaker_threshold: 3,
            breaker_cooldown: 4,
            ..Politeness::fast()
        }
    }

    fn seed_id(i: u32) -> u32 {
        // breakers key on raw instance ids
        InstanceId(i).0
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_cooldown() {
        let p = pol();
        let bank = BreakerBank::new();
        let id = seed_id(7);
        // below threshold: always admitted
        for _ in 0..2 {
            assert!(bank.admit(&p, id));
            bank.record_unreachable(&p, id);
        }
        assert!(bank.admit(&p, id));
        bank.record_unreachable(&p, id); // third failure: opens
        assert_eq!(bank.open_count(&p), 1);
        // cooldown: the next 4 requests fast-fail
        for _ in 0..4 {
            assert!(!bank.admit(&p, id));
        }
        // then one probe is admitted
        assert!(bank.admit(&p, id));
        // a failing probe re-opens for another full cooldown
        bank.record_unreachable(&p, id);
        assert!(!bank.admit(&p, id));
    }

    #[test]
    fn any_response_closes_the_breaker() {
        let p = pol();
        let bank = BreakerBank::new();
        let id = seed_id(1);
        for _ in 0..3 {
            bank.record_unreachable(&p, id);
        }
        assert_eq!(bank.open_count(&p), 1);
        bank.record_reachable(&p, id);
        assert_eq!(bank.open_count(&p), 0);
        assert!(bank.admit(&p, id));
    }

    #[test]
    fn disabled_breaker_never_blocks() {
        let p = Politeness::fast(); // threshold 0
        let bank = BreakerBank::new();
        for _ in 0..100 {
            bank.record_unreachable(&p, 0);
            assert!(bank.admit(&p, 0));
        }
        assert_eq!(bank.open_count(&p), 0);
    }

    #[test]
    fn breakers_are_per_instance() {
        let p = pol();
        let bank = BreakerBank::new();
        for _ in 0..3 {
            bank.record_unreachable(&p, 5);
        }
        assert!(!bank.admit(&p, 5));
        assert!(bank.admit(&p, 6), "instance 6 unaffected");
    }

    #[test]
    fn export_restore_does_not_reset_cooldowns() {
        let p = pol();
        let bank = BreakerBank::new();
        // instance 3: open, with 2 of 4 cooldown fast-fails already spent
        for _ in 0..3 {
            bank.record_unreachable(&p, 3);
        }
        assert!(!bank.admit(&p, 3));
        assert!(!bank.admit(&p, 3));
        // instance 9: one failure, still closed
        bank.record_unreachable(&p, 9);
        // instance 5: failed then recovered — must not appear in the export
        bank.record_unreachable(&p, 5);
        bank.record_reachable(&p, 5);

        let rows = bank.export_state();
        assert_eq!(rows, vec![(3, 3, 2), (9, 1, 0)]);

        let restored = BreakerBank::restore_state(&rows);
        assert_eq!(restored.export_state(), rows, "export is a fixpoint");
        // the open breaker serves exactly its REMAINING 2 fast-fails, then
        // admits the half-open probe — the cooldown did not refill
        assert!(!restored.admit(&p, 3));
        assert!(!restored.admit(&p, 3));
        assert!(restored.admit(&p, 3));
        // the closed breaker opens after 2 more failures, not 3
        assert!(restored.admit(&p, 9));
        restored.record_unreachable(&p, 9);
        restored.record_unreachable(&p, 9);
        assert_eq!(restored.open_count(&p), 2);
    }

    #[test]
    fn transient_statuses() {
        assert!(is_transient(StatusCode(500)));
        assert!(is_transient(StatusCode(502)));
        assert!(!is_transient(StatusCode(503)), "503 is real downtime");
        assert!(!is_transient(StatusCode(403)));
        assert!(!is_transient(StatusCode::TOO_MANY_REQUESTS), "429 has its own path");
    }
}
