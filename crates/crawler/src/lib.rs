//! # fediscope-crawler
//!
//! The measurement toolkit of the study (§3), as a reusable library:
//!
//! - [`discovery`]: the seed list of instances (the mnm.social index),
//! - [`monitor`]: the 5-minute `/api/v1/instance` poller producing the
//!   *Instances* dataset,
//! - [`toots`]: the multi-worker toot crawler walking paged public
//!   timelines with politeness delays, producing the *Toots* dataset
//!   ("we parallelised this across 10 threads on 7 machines … we introduced
//!   artificial delays between API calls"),
//! - [`followers`]: the follower-list scraper producing the *Graphs*
//!   dataset,
//! - [`politeness`]: concurrency limits, delays, retry/backoff/breaker
//!   policy knobs,
//! - [`retry`]: the shared retry engine — capped jittered backoff,
//!   `retry-after`-honouring 429 handling, per-instance circuit breakers.
//!
//! Everything is cancellation-safe in the async-book sense: buffers and
//! partial results live in owned collections, so dropping a crawl future
//! mid-flight never corrupts state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discovery;
#[cfg(feature = "net")]
pub mod followers;
#[cfg(feature = "net")]
pub mod monitor;
pub mod politeness;
#[cfg(feature = "net")]
pub mod retry;
#[cfg(feature = "net")]
pub mod survey;
#[cfg(feature = "net")]
pub mod toots;

pub use discovery::SeedList;
#[cfg(feature = "net")]
pub use monitor::{InstanceMonitor, MonitorState};
pub use politeness::Politeness;
#[cfg(feature = "net")]
pub use retry::{fetch_with_retry, BreakerBank, FetchResult};
#[cfg(feature = "net")]
pub use survey::{run_survey, Survey};
