//! Instance discovery: the seed list.
//!
//! The paper bootstrapped from mnm.social's "comprehensive index of
//! instances around the world" (4,328 domains). Our equivalent is a list of
//! `(domain, socket address)` pairs; in the simulator every domain resolves
//! to the shared loopback listener (virtual hosting), while a real
//! deployment would resolve DNS per domain.

use fediscope_model::ids::InstanceId;
use std::net::SocketAddr;

/// One seed entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    /// The instance the crawler believes this domain to be (dense id in the
    /// seed list; equals the world id in simulation).
    pub instance: InstanceId,
    /// Domain name (sent as the `Host` header).
    pub domain: String,
    /// Where to connect.
    pub addr: SocketAddr,
}

/// The full seed list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeedList {
    entries: Vec<Seed>,
}

impl SeedList {
    /// Build from explicit entries.
    pub fn new(entries: Vec<Seed>) -> Self {
        Self { entries }
    }

    /// Build a seed list for a simulated world where every domain is served
    /// by `addr`.
    pub fn for_simnet(world: &fediscope_model::world::World, addr: SocketAddr) -> Self {
        Self {
            entries: world
                .instances
                .iter()
                .map(|i| Seed {
                    instance: i.id,
                    domain: i.domain.clone(),
                    addr,
                })
                .collect(),
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[Seed] {
        &self.entries
    }

    /// Number of seeds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Restrict to the first `n` seeds (subset crawls in tests/examples).
    pub fn truncated(&self, n: usize) -> SeedList {
        Self {
            entries: self.entries.iter().take(n).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> SocketAddr {
        "127.0.0.1:4242".parse().unwrap()
    }

    #[test]
    fn construction_and_truncation() {
        let seeds = SeedList::new(vec![
            Seed {
                instance: InstanceId(0),
                domain: "a.test".into(),
                addr: addr(),
            },
            Seed {
                instance: InstanceId(1),
                domain: "b.test".into(),
                addr: addr(),
            },
        ]);
        assert_eq!(seeds.len(), 2);
        assert!(!seeds.is_empty());
        let t = seeds.truncated(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].domain, "a.test");
    }

    #[test]
    fn empty_list() {
        let s = SeedList::default();
        assert!(s.is_empty());
        assert_eq!(s.truncated(5).len(), 0);
    }
}
