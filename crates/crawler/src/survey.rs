//! The full survey: the paper's three data-collection campaigns as one
//! orchestrated run.
//!
//! §3's methodology in order: (i) monitor the instance population,
//! (ii) crawl toots from the instances that are up and crawlable,
//! (iii) scrape the follower lists of every user seen tooting. The output
//! bundles the three datasets exactly as the paper's analyses consume them.

use crate::discovery::SeedList;
use crate::followers::scrape_followers;
use crate::monitor::InstanceMonitor;
use crate::politeness::Politeness;
use crate::toots::crawl_toots;
use fediscope_httpwire::Client;
use fediscope_model::datasets::{GraphDataset, InstancesDataset, TootsDataset};
use fediscope_model::ids::{InstanceId, UserId};
use fediscope_model::time::Epoch;

/// The bundled output of a survey run.
#[derive(Debug, Clone, PartialEq)]
pub struct Survey {
    /// The monitoring series (one poll per requested epoch).
    pub instances: InstancesDataset,
    /// The toot crawl.
    pub toots: TootsDataset,
    /// The follower graphs.
    pub graphs: GraphDataset,
}

impl Survey {
    /// Accounts that were seen tooting (the scrape targets that §3 used).
    pub fn tooting_users(toots: &TootsDataset) -> Vec<(UserId, InstanceId)> {
        let mut out = Vec::new();
        for record in &toots.records {
            for &(user, _count) in &record.user_toots {
                out.push((user, record.instance));
            }
        }
        out
    }
}

/// Run the full survey against a seed list.
///
/// `monitor_epochs` are the poll times (the caller advances any virtual
/// clock between them via the `on_epoch` hook — pass `|_| {}` when talking
/// to real infrastructure where wall time is the clock).
pub async fn run_survey<F>(
    seeds: &SeedList,
    politeness: &Politeness,
    monitor_epochs: &[Epoch],
    mut on_epoch: F,
) -> Survey
where
    F: FnMut(Epoch),
{
    let client = Client::default();
    let mut monitor = InstanceMonitor::new(seeds.clone(), politeness.clone());
    for &epoch in monitor_epochs {
        on_epoch(epoch);
        monitor.poll_all(epoch).await;
    }
    let instances = monitor.into_dataset();

    let toots = crawl_toots(seeds, politeness, &client).await;
    let targets = Survey::tooting_users(&toots);
    let graphs = scrape_followers(seeds, &targets, politeness, &client).await;

    Survey {
        instances,
        toots,
        graphs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::datasets::TootCrawlRecord;

    #[test]
    fn tooting_users_extraction() {
        let toots = TootsDataset {
            records: vec![
                TootCrawlRecord {
                    instance: InstanceId(0),
                    crawled: true,
                    home_toots: 5,
                    remote_toots: 0,
                    tooting_users: 2,
                    user_toots: vec![(UserId(3), 2), (UserId(9), 3)],
                },
                TootCrawlRecord {
                    instance: InstanceId(1),
                    crawled: false,
                    home_toots: 0,
                    remote_toots: 0,
                    tooting_users: 0,
                    user_toots: vec![],
                },
            ],
        };
        let targets = Survey::tooting_users(&toots);
        assert_eq!(
            targets,
            vec![(UserId(3), InstanceId(0)), (UserId(9), InstanceId(0))]
        );
    }
}
