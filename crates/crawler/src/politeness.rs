//! Politeness policy: concurrency, pacing, retries, backoff, and the
//! circuit-breaker knobs the retry engine ([`crate::retry`]) consumes.
//!
//! Backoff is capped exponential with *deterministic* jitter: the jitter
//! term derives from a seed and a caller-supplied token, never from a
//! wall-clock RNG, so the same crawl replays with the same wait schedule —
//! which keeps whole crawl transcripts byte-identical across runs.

use std::time::Duration;

/// How aggressively the crawler talks to instances.
#[derive(Debug, Clone)]
pub struct Politeness {
    /// Maximum in-flight requests across all instances (the paper used 10
    /// threads × 7 machines = 70 concurrent workers at internet scale).
    pub concurrency: usize,
    /// Artificial delay between successive API calls to the *same* instance
    /// ("to avoid overwhelming instances").
    pub per_call_delay: Duration,
    /// Retries after transient failures (5xx/timeouts/resets) before giving
    /// up.
    pub retries: u32,
    /// Base backoff; doubles per retry.
    pub backoff: Duration,
    /// Ceiling on any single backoff wait (the exponential never exceeds
    /// this, however many retries are configured).
    pub backoff_cap: Duration,
    /// Jitter fraction in `[0, 1)`: each backoff gains up to this fraction
    /// of itself, chosen deterministically from [`Politeness::jitter_seed`]
    /// and the caller's token.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Ceiling on an honoured `retry-after` header (a hostile server must
    /// not park the crawler for an hour).
    pub retry_after_cap: Duration,
    /// How many 429 waits to honour per fetch, *separately* from
    /// [`Politeness::retries`] (rate limits are expected during a budgeted
    /// crawl and should not eat the transient-failure budget).
    pub rate_limit_waits: u32,
    /// Consecutive connection-level failures before an instance's circuit
    /// breaker opens (0 disables the breaker).
    pub breaker_threshold: u32,
    /// Requests fast-failed while a breaker is open before one probe
    /// request is let through (request-count cooldown: clock-free, so it
    /// behaves identically under virtual and wall time).
    pub breaker_cooldown: u32,
}

impl Default for Politeness {
    fn default() -> Self {
        Self {
            concurrency: 16,
            per_call_delay: Duration::from_millis(2),
            retries: 2,
            backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_secs(1),
            jitter: 0.0,
            jitter_seed: 0x5eed_cafe,
            retry_after_cap: Duration::from_secs(5),
            rate_limit_waits: 2,
            breaker_threshold: 0,
            breaker_cooldown: 8,
        }
    }
}

impl Politeness {
    /// Fast profile for tests: no pacing, one retry, breaker off.
    pub fn fast() -> Self {
        Self {
            concurrency: 32,
            per_call_delay: Duration::ZERO,
            retries: 1,
            backoff: Duration::from_millis(1),
            ..Self::default()
        }
    }

    /// Profile for crawling through a hostile network: deep retry budget,
    /// jittered capped backoff, generous 429 tolerance, and the circuit
    /// breaker armed so persistently dead instances stop costing retries.
    pub fn hostile() -> Self {
        Self {
            concurrency: 16,
            per_call_delay: Duration::ZERO,
            retries: 5,
            backoff: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            jitter: 0.25,
            rate_limit_waits: 4,
            breaker_threshold: 4,
            breaker_cooldown: 16,
            ..Self::default()
        }
    }

    /// Backoff before retry `attempt` (0-based): exponential doubling,
    /// capped at [`Politeness::backoff_cap`].
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.backoff_cap)
    }

    /// Capped backoff plus deterministic jitter: up to `jitter` of the base
    /// wait, derived from the seed and `token` (callers pass something
    /// stable per call site — instance id, page number — so replays wait
    /// identically).
    pub fn backoff_jittered(&self, attempt: u32, token: u64) -> Duration {
        let base = self.backoff_for(attempt);
        if self.jitter <= 0.0 {
            return base;
        }
        let h = splitmix(self.jitter_seed ^ token.rotate_left(17) ^ (u64::from(attempt) << 48));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform [0,1)
        let extra = base.mul_f64(self.jitter.min(1.0) * u);
        (base + extra).min(self.backoff_cap)
    }

    /// Clamp a server-provided `retry-after` (seconds) to the configured
    /// ceiling.
    pub fn clamp_retry_after(&self, seconds: u64) -> Duration {
        Duration::from_secs(seconds).min(self.retry_after_cap)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_backoff() {
        let p = Politeness {
            backoff: Duration::from_millis(10),
            ..Politeness::default()
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(80));
    }

    #[test]
    fn backoff_saturates() {
        let p = Politeness {
            backoff: Duration::from_secs(1 << 20),
            ..Politeness::default()
        };
        // must not panic on overflow
        let _ = p.backoff_for(40);
    }

    #[test]
    fn backoff_capped() {
        let p = Politeness {
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            ..Politeness::default()
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(2), Duration::from_millis(35), "hits cap");
        assert_eq!(p.backoff_for(10), Duration::from_millis(35));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = Politeness {
            backoff: Duration::from_millis(100),
            jitter: 0.5,
            backoff_cap: Duration::from_secs(10),
            ..Politeness::default()
        };
        for token in 0..200u64 {
            let a = p.backoff_jittered(1, token);
            let b = p.backoff_jittered(1, token);
            assert_eq!(a, b, "same token must jitter identically");
            assert!(a >= Duration::from_millis(200));
            assert!(a <= Duration::from_millis(300), "jitter ≤ 50% of base");
        }
        // different tokens actually spread
        let spread: std::collections::HashSet<Duration> =
            (0..50).map(|t| p.backoff_jittered(0, t)).collect();
        assert!(spread.len() > 10, "jitter should vary across tokens");
        // seed changes the stream
        let p2 = Politeness {
            jitter_seed: 999,
            ..p.clone()
        };
        assert!(
            (0..50).any(|t| p.backoff_jittered(0, t) != p2.backoff_jittered(0, t)),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn zero_jitter_is_pure_exponential() {
        let p = Politeness {
            backoff: Duration::from_millis(10),
            jitter: 0.0,
            ..Politeness::default()
        };
        assert_eq!(p.backoff_jittered(2, 12345), p.backoff_for(2));
    }

    #[test]
    fn retry_after_clamped() {
        let p = Politeness {
            retry_after_cap: Duration::from_secs(3),
            ..Politeness::default()
        };
        assert_eq!(p.clamp_retry_after(1), Duration::from_secs(1));
        assert_eq!(p.clamp_retry_after(3600), Duration::from_secs(3));
    }

    #[test]
    fn defaults_sane() {
        let p = Politeness::default();
        assert!(p.concurrency > 0);
        assert!(p.retries > 0);
        assert!(p.backoff_cap >= p.backoff);
        // default and fast profiles keep the breaker disarmed
        assert_eq!(p.breaker_threshold, 0);
        assert_eq!(Politeness::fast().breaker_threshold, 0);
        // hostile arms everything
        let h = Politeness::hostile();
        assert!(h.breaker_threshold > 0);
        assert!(h.jitter > 0.0);
        assert!(h.retries > p.retries);
    }
}
