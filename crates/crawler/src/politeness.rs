//! Politeness policy: concurrency, pacing, retries.

use std::time::Duration;

/// How aggressively the crawler talks to instances.
#[derive(Debug, Clone)]
pub struct Politeness {
    /// Maximum in-flight requests across all instances (the paper used 10
    /// threads × 7 machines = 70 concurrent workers at internet scale).
    pub concurrency: usize,
    /// Artificial delay between successive API calls to the *same* instance
    /// ("to avoid overwhelming instances").
    pub per_call_delay: Duration,
    /// Retries after transient failures (5xx/timeouts) before giving up.
    pub retries: u32,
    /// Base backoff; doubles per retry.
    pub backoff: Duration,
}

impl Default for Politeness {
    fn default() -> Self {
        Self {
            concurrency: 16,
            per_call_delay: Duration::from_millis(2),
            retries: 2,
            backoff: Duration::from_millis(5),
        }
    }
}

impl Politeness {
    /// Fast profile for tests: no pacing, one retry.
    pub fn fast() -> Self {
        Self {
            concurrency: 32,
            per_call_delay: Duration::ZERO,
            retries: 1,
            backoff: Duration::from_millis(1),
        }
    }

    /// Backoff before retry `attempt` (0-based): exponential doubling.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff.saturating_mul(1u32 << attempt.min(16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_backoff() {
        let p = Politeness {
            backoff: Duration::from_millis(10),
            ..Politeness::default()
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(80));
    }

    #[test]
    fn backoff_saturates() {
        let p = Politeness {
            backoff: Duration::from_secs(1 << 20),
            ..Politeness::default()
        };
        // must not panic on overflow
        let _ = p.backoff_for(40);
    }

    #[test]
    fn defaults_sane() {
        let p = Politeness::default();
        assert!(p.concurrency > 0);
        assert!(p.retries > 0);
    }
}
