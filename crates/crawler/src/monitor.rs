//! The instance monitor: the mnm.social replica.
//!
//! "Every five minutes, mnm.social connected to each instance's
//! `/api/v1/instance` API endpoint" (§3). [`InstanceMonitor::poll_all`]
//! performs one such sweep; the caller advances the virtual clock between
//! sweeps (or wires a ticker). Results accumulate into an
//! [`InstancesDataset`].

use crate::discovery::SeedList;
use crate::politeness::Politeness;
use fediscope_httpwire::Client;
use fediscope_model::datasets::{InstanceApiInfo, InstancesDataset, ObservedSeries, PollResult};
use fediscope_model::time::Epoch;
use std::sync::Arc;
use tokio::sync::Semaphore;

/// Accumulating monitor.
pub struct InstanceMonitor {
    seeds: SeedList,
    politeness: Politeness,
    client: Client,
    dataset: InstancesDataset,
}

impl InstanceMonitor {
    /// New monitor over a seed list.
    pub fn new(seeds: SeedList, politeness: Politeness) -> Self {
        let dataset = InstancesDataset {
            series: seeds
                .entries()
                .iter()
                .map(|s| ObservedSeries {
                    instance: s.instance,
                    polls: Vec::new(),
                })
                .collect(),
        };
        Self {
            seeds,
            politeness,
            client: Client::default(),
            dataset,
        }
    }

    /// Use a custom HTTP client (timeouts).
    pub fn with_client(mut self, client: Client) -> Self {
        self.client = client;
        self
    }

    /// Poll every seed once, recording results under `epoch`.
    pub async fn poll_all(&mut self, epoch: Epoch) {
        let sem = Arc::new(Semaphore::new(self.politeness.concurrency));
        let mut joins = Vec::with_capacity(self.seeds.len());
        for (idx, seed) in self.seeds.entries().iter().cloned().enumerate() {
            let sem = sem.clone();
            let client = self.client.clone();
            let politeness = self.politeness.clone();
            joins.push(tokio::spawn(async move {
                let _permit = sem.acquire_owned().await.expect("semaphore open");
                let result = poll_instance(&client, &politeness, &seed.addr, &seed.domain).await;
                (idx, result)
            }));
        }
        for j in joins {
            let (idx, result) = j.await.expect("poll task panicked");
            self.dataset.series[idx].polls.push((epoch, result));
        }
    }

    /// Finish monitoring and take the dataset.
    pub fn into_dataset(self) -> InstancesDataset {
        self.dataset
    }

    /// Peek at the dataset so far.
    pub fn dataset(&self) -> &InstancesDataset {
        &self.dataset
    }
}

/// One poll with retries; any persistent failure maps to [`PollResult::Down`]
/// — the monitor cannot distinguish causes, which is exactly the paper's
/// vantage point.
pub async fn poll_instance(
    client: &Client,
    politeness: &Politeness,
    addr: &std::net::SocketAddr,
    domain: &str,
) -> PollResult {
    for attempt in 0..=politeness.retries {
        match client.get(*addr, domain, "/api/v1/instance").await {
            Ok(resp) if resp.status.is_success() => {
                match parse_instance_info(&resp.text()) {
                    Some(info) => return PollResult::Up(info),
                    None => return PollResult::Down, // corrupt payload
                }
            }
            Ok(resp) if resp.status.0 == 500 || resp.status.0 == 429 => {
                // transient: retry after backoff
                if attempt < politeness.retries {
                    tokio::time::sleep(politeness.backoff_for(attempt)).await;
                    continue;
                }
                return PollResult::Down;
            }
            Ok(_) => return PollResult::Down, // 4xx/503: down for our purposes
            Err(_) => {
                if attempt < politeness.retries {
                    tokio::time::sleep(politeness.backoff_for(attempt)).await;
                    continue;
                }
                return PollResult::Down;
            }
        }
    }
    PollResult::Down
}

/// Parse the instance-API payload into the §3 field set.
pub fn parse_instance_info(body: &str) -> Option<InstanceApiInfo> {
    let v: serde_json::Value = serde_json::from_str(body).ok()?;
    Some(InstanceApiInfo {
        name: v["uri"].as_str()?.to_string(),
        version: v["version"].as_str()?.to_string(),
        toots: v["stats"]["status_count"].as_u64()?,
        users: v["stats"]["user_count"].as_u64()? as u32,
        subscriptions: v["stats"]["domain_count"].as_u64()? as u32,
        logins: v["logins_week"].as_u64().unwrap_or(0) as u32,
        registration_open: v["registrations"].as_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_valid_payload() {
        let body = r#"{
            "uri": "m0001.fedi.test", "version": "2.4.0",
            "registrations": true,
            "stats": {"user_count": 12, "status_count": 340, "domain_count": 7},
            "logins_week": 5
        }"#;
        let info = parse_instance_info(body).unwrap();
        assert_eq!(info.name, "m0001.fedi.test");
        assert_eq!(info.users, 12);
        assert_eq!(info.toots, 340);
        assert_eq!(info.subscriptions, 7);
        assert_eq!(info.logins, 5);
        assert!(info.registration_open);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_instance_info("not json").is_none());
        assert!(parse_instance_info(r#"{"uri": 5}"#).is_none());
        assert!(parse_instance_info(r#"{"uri":"x","version":"v","stats":{}}"#).is_none());
    }
}
