//! The instance monitor: the mnm.social replica.
//!
//! "Every five minutes, mnm.social connected to each instance's
//! `/api/v1/instance` API endpoint" (§3). [`InstanceMonitor::poll_all`]
//! performs one such sweep; the caller advances the virtual clock between
//! sweeps (or wires a ticker). Results accumulate into an
//! [`InstancesDataset`].

use crate::discovery::{Seed, SeedList};
use crate::politeness::Politeness;
use crate::retry::{fetch_with_retry, BreakerBank, FetchResult};
use fediscope_httpwire::Client;
use fediscope_model::datasets::{InstanceApiInfo, InstancesDataset, ObservedSeries, PollResult};
use fediscope_model::time::Epoch;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tokio::sync::Semaphore;

/// Resumable monitor state: everything [`InstanceMonitor`] mutates across
/// sweeps. Config (seed list, politeness, client) is *not* stored — resume
/// reconstructs it, so a snapshot can never disagree with its config. The
/// breaker rows matter for bit-identical resume: an open breaker's
/// remaining cooldown shapes which polls fast-fail after the crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorState {
    /// Polls accumulated so far, one series per seed.
    pub dataset: InstancesDataset,
    /// Circuit-breaker rows ([`BreakerBank::export_state`]).
    pub breakers: Vec<(u32, u32, u32)>,
}

/// Accumulating monitor.
pub struct InstanceMonitor {
    seeds: SeedList,
    politeness: Politeness,
    client: Client,
    dataset: InstancesDataset,
    breakers: Arc<BreakerBank>,
}

impl InstanceMonitor {
    /// New monitor over a seed list.
    pub fn new(seeds: SeedList, politeness: Politeness) -> Self {
        let dataset = InstancesDataset {
            series: seeds
                .entries()
                .iter()
                .map(|s| ObservedSeries {
                    instance: s.instance,
                    polls: Vec::new(),
                })
                .collect(),
        };
        Self {
            seeds,
            politeness,
            client: Client::default(),
            dataset,
            breakers: Arc::new(BreakerBank::new()),
        }
    }

    /// Use a custom HTTP client (timeouts).
    pub fn with_client(mut self, client: Client) -> Self {
        self.client = client;
        self
    }

    /// Snapshot the monitor's mutable state for a checkpoint.
    pub fn capture(&self) -> MonitorState {
        MonitorState {
            dataset: self.dataset.clone(),
            breakers: self.breakers.export_state(),
        }
    }

    /// Rebuild a monitor from a checkpoint on a fresh executor. The
    /// accumulated polls and breaker cooldowns continue exactly where the
    /// crashed process stopped; `seeds` and `politeness` come from config,
    /// exactly as in [`InstanceMonitor::new`].
    pub fn resume(seeds: SeedList, politeness: Politeness, state: &MonitorState) -> Self {
        assert_eq!(
            state.dataset.series.len(),
            seeds.len(),
            "snapshot was taken over a different seed list"
        );
        Self {
            seeds,
            politeness,
            client: Client::default(),
            dataset: state.dataset.clone(),
            breakers: Arc::new(BreakerBank::restore_state(&state.breakers)),
        }
    }

    /// Poll every seed once, recording results under `epoch`.
    pub async fn poll_all(&mut self, epoch: Epoch) {
        let sem = Arc::new(Semaphore::new(self.politeness.concurrency));
        let mut joins = Vec::with_capacity(self.seeds.len());
        for (idx, seed) in self.seeds.entries().iter().cloned().enumerate() {
            let sem = sem.clone();
            let client = self.client.clone();
            let politeness = self.politeness.clone();
            let breakers = self.breakers.clone();
            joins.push(tokio::spawn(async move {
                let _permit = sem.acquire_owned().await.expect("semaphore open");
                let result = poll_instance(&client, &politeness, Some(&breakers), &seed).await;
                (idx, result)
            }));
        }
        for j in joins {
            let (idx, result) = j.await.expect("poll task panicked");
            self.dataset.series[idx].polls.push((epoch, result));
        }
    }

    /// Finish monitoring and take the dataset.
    pub fn into_dataset(self) -> InstancesDataset {
        self.dataset
    }

    /// Peek at the dataset so far.
    pub fn dataset(&self) -> &InstancesDataset {
        &self.dataset
    }
}

/// One poll through the shared retry engine ([`crate::retry`]).
///
/// Outcome mapping — the load-bearing distinction is *observation* versus
/// *measurement gap*:
/// - 2xx with a valid payload → [`PollResult::Up`];
/// - a well-formed negative answer (503, 403, 404, any other 4xx) →
///   [`PollResult::Down`] — something answered for the instance and said
///   no, which is exactly the mnm.social vantage point;
/// - everything where the *measurement itself* failed (connection
///   reset/refused/timeout after retries, persistent 429/5xx from the
///   fault layer, corrupt payload) → [`PollResult::Unknown`] — the poll
///   says nothing about the instance, and reconstruction must not read an
///   outage into it.
pub async fn poll_instance(
    client: &Client,
    politeness: &Politeness,
    breakers: Option<&BreakerBank>,
    seed: &Seed,
) -> PollResult {
    let token = u64::from(seed.instance.0);
    match fetch_with_retry(client, politeness, breakers, seed, token, "/api/v1/instance").await
    {
        FetchResult::Ok(resp) => match parse_instance_info(&resp.text()) {
            Some(info) => PollResult::Up(info),
            None => PollResult::Unknown, // corrupt payload: learned nothing
        },
        FetchResult::Denied(status) if status.0 == 429 || (500..600).contains(&status.0) => {
            if status.0 == 503 {
                // a 503 is the instance's hosting answering "down"
                PollResult::Down
            } else {
                // persistent injected faults (429/500/502): no observation
                PollResult::Unknown
            }
        }
        FetchResult::Denied(_) => PollResult::Down,
        FetchResult::Unreachable => PollResult::Unknown,
    }
}

/// Parse the instance-API payload into the §3 field set.
pub fn parse_instance_info(body: &str) -> Option<InstanceApiInfo> {
    let v: serde_json::Value = serde_json::from_str(body).ok()?;
    Some(InstanceApiInfo {
        name: v["uri"].as_str()?.to_string(),
        version: v["version"].as_str()?.to_string(),
        toots: v["stats"]["status_count"].as_u64()?,
        users: v["stats"]["user_count"].as_u64()? as u32,
        subscriptions: v["stats"]["domain_count"].as_u64()? as u32,
        logins: v["logins_week"].as_u64().unwrap_or(0) as u32,
        registration_open: v["registrations"].as_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_valid_payload() {
        let body = r#"{
            "uri": "m0001.fedi.test", "version": "2.4.0",
            "registrations": true,
            "stats": {"user_count": 12, "status_count": 340, "domain_count": 7},
            "logins_week": 5
        }"#;
        let info = parse_instance_info(body).unwrap();
        assert_eq!(info.name, "m0001.fedi.test");
        assert_eq!(info.users, 12);
        assert_eq!(info.toots, 340);
        assert_eq!(info.subscriptions, 7);
        assert_eq!(info.logins, 5);
        assert!(info.registration_open);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_instance_info("not json").is_none());
        assert!(parse_instance_info(r#"{"uri": 5}"#).is_none());
        assert!(parse_instance_info(r#"{"uri":"x","version":"v","stats":{}}"#).is_none());
    }
}
