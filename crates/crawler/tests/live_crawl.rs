//! End-to-end crawler tests against a live simulated fediverse: the crawler
//! must recover the ground truth over real loopback HTTP.

use fediscope_crawler::discovery::SeedList;
use fediscope_crawler::monitor::InstanceMonitor;
use fediscope_crawler::politeness::Politeness;
use fediscope_crawler::{followers, toots};
use fediscope_httpwire::Client;
use fediscope_model::datasets::PollResult;
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::Epoch;
use fediscope_model::world::World;
use fediscope_simnet::{launch, FaultPlan, TimelineIndex};
use fediscope_worldgen::{Generator, WorldConfig};
use std::sync::Arc;

fn tiny_world(seed: u64, always_up: bool) -> World {
    let mut cfg = WorldConfig::tiny(seed);
    cfg.n_instances = 10;
    cfg.n_users = 200;
    // keep toot volumes small so the crawl is quick
    cfg.toots_per_user_open = 8.0;
    cfg.toots_per_user_closed = 15.0;
    let mut world = Generator::generate_world(cfg);
    if always_up {
        for s in &mut world.schedules {
            *s = AvailabilitySchedule::always_up();
        }
    }
    world
}

#[tokio::test]
async fn monitor_matches_ground_truth_availability() {
    let world = Arc::new(tiny_world(101, false));
    let net = launch(world.clone(), FaultPlan::default(), 5).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());
    let mut monitor = InstanceMonitor::new(seeds, Politeness::fast());

    let sample_epochs = [0u32, 30_000, 60_000, 100_000, 135_000];
    for &e in &sample_epochs {
        net.state.clock.set(Epoch(e));
        monitor.poll_all(Epoch(e)).await;
    }
    let dataset = monitor.into_dataset();
    assert_eq!(dataset.series.len(), world.instances.len());
    for series in &dataset.series {
        let sched = &world.schedules[series.instance.index()];
        for (epoch, result) in &series.polls {
            assert_eq!(
                result.is_up(),
                sched.is_up(*epoch),
                "instance {} at epoch {}",
                series.instance,
                epoch.0
            );
        }
    }
    net.shutdown().await;
}

#[tokio::test]
async fn monitor_payload_reflects_instance_metadata() {
    let world = Arc::new(tiny_world(102, true));
    let net = launch(world.clone(), FaultPlan::default(), 5).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());
    let mut monitor = InstanceMonitor::new(seeds, Politeness::fast());
    monitor.poll_all(Epoch(0)).await;
    let dataset = monitor.into_dataset();
    for series in &dataset.series {
        let inst = &world.instances[series.instance.index()];
        match &series.polls[0].1 {
            PollResult::Up(info) => {
                assert_eq!(info.name, inst.domain);
                assert_eq!(info.users, inst.user_count);
                assert_eq!(info.toots, inst.toot_count);
                assert_eq!(info.registration_open, inst.is_open());
            }
            other => panic!("always-up world reported {other:?}"),
        }
    }
    net.shutdown().await;
}

#[tokio::test]
async fn toot_crawl_recovers_public_toot_counts_exactly() {
    let world = Arc::new(tiny_world(103, true));
    let net = launch(world.clone(), FaultPlan::default(), 5).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());
    let dataset = toots::crawl_toots(&seeds, &Politeness::fast(), &Client::default()).await;

    for record in &dataset.records {
        let inst = &world.instances[record.instance.index()];
        let tl = TimelineIndex::build(&world, record.instance);
        if inst.crawl_allowed {
            assert!(record.crawled, "instance {} should crawl", inst.domain);
            assert_eq!(
                record.home_toots, tl.total_public,
                "home toots of {}",
                inst.domain
            );
            // per-user counts match the public ground truth
            for &(user, count) in &record.user_toots {
                let expect = fediscope_simnet::timelines::public_toots_of(
                    &world,
                    user.index(),
                );
                assert_eq!(count as u64, expect, "user {user}");
            }
        } else {
            assert!(!record.crawled, "blocked instance {} crawled", inst.domain);
            assert_eq!(record.home_toots, 0);
        }
    }
    // coverage is partial, like the paper's 62%
    let coverage = dataset.coverage(world.total_toots());
    assert!(
        coverage > 0.2 && coverage < 1.0,
        "coverage {coverage} out of band"
    );
    net.shutdown().await;
}

#[tokio::test]
async fn toot_crawl_survives_fault_injection() {
    let world = Arc::new(tiny_world(104, true));
    let plan = FaultPlan {
        error_prob: 0.05,
        ..FaultPlan::default()
    };
    let net = launch(world.clone(), plan, 77).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());
    let politeness = Politeness {
        retries: 6,
        ..Politeness::fast()
    };
    let dataset = toots::crawl_toots(&seeds, &politeness, &Client::default()).await;
    // With retries, counts still exact despite injected 500s.
    for record in &dataset.records {
        let inst = &world.instances[record.instance.index()];
        if inst.crawl_allowed {
            let tl = TimelineIndex::build(&world, record.instance);
            assert_eq!(
                record.home_toots, tl.total_public,
                "faults corrupted crawl of {}",
                inst.domain
            );
        }
    }
    net.shutdown().await;
}

#[tokio::test]
async fn follower_scrape_recovers_ego_networks() {
    let world = Arc::new(tiny_world(105, true));
    let net = launch(world.clone(), FaultPlan::default(), 5).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());

    // scrape the ego networks of all tooting users (the paper's targets)
    let targets: Vec<_> = world
        .users
        .iter()
        .filter(|u| u.has_tooted())
        .map(|u| (u.id, u.instance))
        .collect();
    let dataset =
        followers::scrape_followers(&seeds, &targets, &Politeness::fast(), &Client::default())
            .await;

    // ground truth: every follow edge whose followee tooted
    let tooting: std::collections::HashSet<_> = targets.iter().map(|(u, _)| *u).collect();
    let mut expect: Vec<(fediscope_model::ids::UserId, fediscope_model::ids::UserId)> = world
        .follows
        .iter()
        .copied()
        .filter(|(_, b)| tooting.contains(b))
        .collect();
    expect.sort_unstable();
    expect.dedup();
    assert_eq!(dataset.follows, expect);
    // the induced account set includes non-tooting followers
    assert!(dataset.accounts.len() >= tooting.len());
    net.shutdown().await;
}

#[tokio::test]
async fn full_survey_bundles_all_three_datasets() {
    let world = Arc::new(tiny_world(106, true));
    let net = launch(world.clone(), FaultPlan::default(), 5).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());
    let clock = net.state.clock.clone();
    let survey = fediscope_crawler::run_survey(
        &seeds,
        &Politeness::fast(),
        &[Epoch(0), Epoch(50_000), Epoch(100_000)],
        |e| clock.set(e),
    )
    .await;

    // monitoring: one series per seed, three polls each
    assert_eq!(survey.instances.series.len(), seeds.len());
    assert!(survey
        .instances
        .series
        .iter()
        .all(|s| s.polls.len() == 3));
    // toots: crawlable instances covered exactly
    for record in survey.toots.records.iter().filter(|r| r.crawled) {
        let tl = TimelineIndex::build(&world, record.instance);
        assert_eq!(record.home_toots, tl.total_public);
    }
    // graphs: every scraped edge exists in ground truth
    let truth: std::collections::HashSet<_> = world.follows.iter().copied().collect();
    for edge in &survey.graphs.follows {
        assert!(truth.contains(edge), "phantom edge {edge:?}");
    }
    assert!(!survey.graphs.follows.is_empty());
    net.shutdown().await;
}
