//! Crash/resume identity for the fault-injected crawl pipeline.
//!
//! The monitoring campaign checkpoints at sweep boundaries: a frame holds
//! the accumulated dataset, the breaker-bank rows, and the fault
//! injector's state (its decision counter *is* its RNG). The property
//! under test is the `crates/recover` headline guarantee applied to the
//! crawler: kill the campaign at any sweep drawn from `mix(seed,
//! counter)`, bring up a **fresh executor and a fresh listener**, resume
//! from the newest good frame, and the finished dataset is bit-identical
//! to the campaign that never crashed — under recoverable *and* harsh
//! fault plans, with torn final checkpoints falling back to the previous
//! good frame, and the all-torn case honestly restarting from scratch.

use fediscope_crawler::discovery::SeedList;
use fediscope_crawler::monitor::{InstanceMonitor, MonitorState};
use fediscope_crawler::politeness::Politeness;
use fediscope_model::datasets::InstancesDataset;
use fediscope_model::time::Epoch;
use fediscope_model::world::World;
use fediscope_recover::{encode_frame, recover_latest, CrashPlan, MemStore, SnapshotStore};
use fediscope_simnet::{launch, FaultPlan, InjectorState, SimNetHandle};
use fediscope_worldgen::{Generator, WorldConfig};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const KIND: &str = "crawl-monitor";
const STATE_VERSION: u32 = 1;
/// Epochs between sweeps (mnm.social polled every 5 minutes; the test
/// campaign strides faster to keep runtimes sane).
const STRIDE: u32 = 96;
/// Sweeps in a full campaign (6 virtual days).
const TOTAL_SWEEPS: u32 = 18;

/// One crawl checkpoint: everything a fresh process needs to continue the
/// campaign — monitor accumulation, breaker cooldowns, injector RNG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CrawlCheckpoint {
    sweeps_done: u32,
    monitor: MonitorState,
    injector: InjectorState,
}

fn frame_for(ckpt: &CrawlCheckpoint) -> Vec<u8> {
    encode_frame(KIND, STATE_VERSION, ckpt.sweeps_done as u64, &ckpt.to_json_value())
}

fn checkpoint(net: &SimNetHandle, monitor: &InstanceMonitor, sweeps_done: u32) -> CrawlCheckpoint {
    CrawlCheckpoint {
        sweeps_done,
        monitor: monitor.capture(),
        injector: net.state.faults.export_state(),
    }
}

/// Newest good checkpoint in the store, plus how many torn frames were
/// skipped on the way down.
fn recover(store: &MemStore) -> (Option<CrawlCheckpoint>, u32) {
    let rec = recover_latest(store, KIND, STATE_VERSION);
    let ckpt = rec.good.as_ref().map(|(meta, value)| {
        let c = CrawlCheckpoint::from_json_value(value).expect("checksummed frame decodes");
        assert_eq!(c.sweeps_done as u64, meta.tick, "frame header lies about its tick");
        c
    });
    (ckpt, rec.torn_skipped)
}

/// Same tiny world as `crawl_faults.rs`.
fn tiny_world(seed: u64) -> Arc<World> {
    let mut cfg = WorldConfig::tiny(seed);
    cfg.n_instances = 6;
    cfg.n_users = 80;
    cfg.toots_per_user_open = 4.0;
    cfg.toots_per_user_closed = 6.0;
    Arc::new(Generator::generate_world(cfg))
}

/// Run the campaign on a fresh executor + fresh listener, checkpointing
/// every `interval` sweeps, dying on cue when `crash` fires (mirroring
/// `run_checkpointed`'s semantics: the crash is checked *before* a sweep,
/// a torn final frame is the one mid-write at the crash). `resume`
/// continues from a recovered checkpoint. Returns the finished dataset,
/// or `None` if the crash plan killed the run.
fn run_crawl(
    world: Arc<World>,
    plan: FaultPlan,
    injector_seed: u64,
    store: &mut MemStore,
    interval: u32,
    crash: Option<CrashPlan>,
    resume: Option<CrawlCheckpoint>,
) -> Option<InstancesDataset> {
    let rt = tokio::runtime::Runtime::new().unwrap();
    rt.block_on(async move {
        let net = launch(world, plan, injector_seed).await.unwrap();
        let seeds = SeedList::for_simnet(&net.state.world, net.addr());
        let (mut monitor, mut sweep) = match &resume {
            Some(ckpt) => {
                net.state.faults.restore_state(&ckpt.injector);
                let m = InstanceMonitor::resume(seeds, Politeness::hostile(), &ckpt.monitor);
                (m, ckpt.sweeps_done)
            }
            None => (InstanceMonitor::new(seeds, Politeness::hostile()), 0),
        };
        let mut out = None;
        loop {
            if sweep >= TOTAL_SWEEPS {
                out = Some(monitor.into_dataset());
                break;
            }
            if let Some(p) = crash {
                if p.fires_at(sweep as u64) {
                    if p.torn_final {
                        let frame = frame_for(&checkpoint(&net, &monitor, sweep));
                        store.put(sweep as u64, &frame[..frame.len() / 2]).unwrap();
                    }
                    break;
                }
            }
            let epoch = Epoch(sweep * STRIDE);
            net.state.clock.set(epoch);
            monitor.poll_all(epoch).await;
            sweep += 1;
            if sweep % interval == 0 {
                let frame = frame_for(&checkpoint(&net, &monitor, sweep));
                store.put(sweep as u64, &frame).unwrap();
            }
        }
        net.shutdown().await;
        out
    })
}

/// Crash the campaign per `crash`, then resume from the store on a fresh
/// executor and finish. Returns the final dataset and where resume landed.
fn crash_then_resume(
    world: Arc<World>,
    plan: FaultPlan,
    injector_seed: u64,
    interval: u32,
    crash: CrashPlan,
) -> (InstancesDataset, Option<u32>, u32) {
    let mut store = MemStore::new();
    if let Some(done) =
        run_crawl(world.clone(), plan.clone(), injector_seed, &mut store, interval, Some(crash), None)
    {
        // the drawn crash tick sat at the campaign's natural end: nothing
        // to resume, the "crashed" run simply completed
        return (done, None, 0);
    }
    let (ckpt, torn_skipped) = recover(&store);
    let resumed_from = ckpt.as_ref().map(|c| c.sweeps_done);
    let done = run_crawl(world, plan, injector_seed, &mut store, interval, None, ckpt)
        .expect("no crash plan on the resumed run");
    (done, resumed_from, torn_skipped)
}

fn uninterrupted(world: Arc<World>, plan: FaultPlan, injector_seed: u64) -> InstancesDataset {
    run_crawl(world, plan, injector_seed, &mut MemStore::new(), u32::MAX, None, None)
        .expect("uninterrupted run completes")
}

proptest! {
    /// Random worlds × random seeds × flaky-or-harsh plans × random crash
    /// sweeps and checkpoint cadences: the crashed-then-resumed campaign
    /// produces the byte-identical dataset, torn final frames included.
    #[test]
    fn crash_then_resume_crawl_is_bit_identical(
        world_seed in 0u64..1_000,
        injector_seed in 0u64..1_000,
        crash_counter in 0u64..10_000,
        interval in 1u32..7,
        harsh in any::<bool>(),
    ) {
        let plan = if harsh {
            FaultPlan::harsh()
        } else {
            FaultPlan {
                error_prob: 0.10,
                delay_prob: 0.10,
                reset_prob: 0.015,
                rate_limit_prob: 0.015,
                ..FaultPlan::default()
            }
        };
        let world = tiny_world(world_seed);
        let crash = CrashPlan::drawn(injector_seed, crash_counter, TOTAL_SWEEPS as u64);
        let (resumed, _, _) =
            crash_then_resume(world.clone(), plan.clone(), injector_seed, interval, crash);
        let clean = uninterrupted(world, plan, injector_seed);
        prop_assert_eq!(&resumed, &clean, "crash {:?} diverged from the uninterrupted crawl", crash);
    }
}

/// A torn final checkpoint is skipped and recovery lands on the previous
/// good frame — and the finished dataset is still identical.
#[test]
fn torn_final_crawl_checkpoint_falls_back() {
    let world = tiny_world(77);
    let plan = FaultPlan::harsh();
    let crash = CrashPlan { crash_tick: 12, torn_final: true };
    let (resumed, resumed_from, torn_skipped) =
        crash_then_resume(world.clone(), plan.clone(), 9, 4, crash);
    assert_eq!(torn_skipped, 1, "the mid-write frame at sweep 12 must read as torn");
    assert_eq!(resumed_from, Some(8), "fall back to the sweep-8 frame");
    assert_eq!(resumed, uninterrupted(world, plan, 9));
}

/// Every frame torn: recovery honestly reports nothing usable and the
/// campaign restarts from scratch — same bytes, no panic, no garbage.
#[test]
fn all_torn_crawl_store_restarts_from_scratch() {
    let world = tiny_world(31);
    let plan = FaultPlan::harsh();
    let mut store = MemStore::new();
    let crashed = run_crawl(
        world.clone(), plan.clone(), 5, &mut store, 3, Some(CrashPlan::at(10)), None,
    );
    assert!(crashed.is_none(), "the plan must kill the first run");
    let n_frames = store.len() as u32;
    assert!(n_frames > 0);
    for tick in store.ticks() {
        store.tear_truncate(tick, 7);
    }
    let (ckpt, torn_skipped) = recover(&store);
    assert!(ckpt.is_none(), "no torn frame may masquerade as good");
    assert_eq!(torn_skipped, n_frames);
    let restarted = run_crawl(world.clone(), plan.clone(), 5, &mut store, 3, None, None)
        .expect("restart completes");
    assert_eq!(restarted, uninterrupted(world, plan, 5));
}
