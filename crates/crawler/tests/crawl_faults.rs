//! Property tests for the crawl-under-faults differential: crawling through
//! the deterministic net stack is (a) a pure function of its seeds — two
//! fresh executors replay byte-identical transcripts at any fault plan —
//! and (b) lossless whenever every drawn fault is recoverable — the faulted
//! transcript equals the fault-free one, because the retry engine absorbs
//! transient 500s, resets, rate limits, and delays before they can reach
//! the dataset.

use fediscope_crawler::discovery::SeedList;
use fediscope_crawler::monitor::InstanceMonitor;
use fediscope_crawler::politeness::Politeness;
use fediscope_model::datasets::InstancesDataset;
use fediscope_model::time::Epoch;
use fediscope_model::world::World;
use fediscope_simnet::{launch, FaultPlan};
use fediscope_worldgen::{Generator, WorldConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// A world small enough to crawl hundreds of times in one test run.
fn tiny_world(seed: u64) -> Arc<World> {
    let mut cfg = WorldConfig::tiny(seed);
    cfg.n_instances = 6;
    cfg.n_users = 80;
    cfg.toots_per_user_open = 4.0;
    cfg.toots_per_user_closed = 6.0;
    Arc::new(Generator::generate_world(cfg))
}

/// One short monitoring campaign (18 sweeps over 6 virtual days) on a
/// fresh executor, so every call is a from-scratch replay.
fn crawl(world: Arc<World>, plan: FaultPlan, injector_seed: u64) -> InstancesDataset {
    let rt = tokio::runtime::Runtime::new().unwrap();
    rt.block_on(async move {
        let net = launch(world, plan, injector_seed).await.unwrap();
        let seeds = SeedList::for_simnet(&net.state.world, net.addr());
        let mut monitor = InstanceMonitor::new(seeds, Politeness::hostile());
        let mut epoch = 0u32;
        while epoch < 6 * 288 {
            net.state.clock.set(Epoch(epoch));
            monitor.poll_all(Epoch(epoch)).await;
            epoch += 96;
        }
        let dataset = monitor.into_dataset();
        net.shutdown().await;
        dataset
    })
}

proptest! {
    /// Random worlds × random recoverable fault plans × random seeds: the
    /// crawl replays identically on a second fresh executor, and equals
    /// the fault-free crawl of the same world (all drawn fault kinds are
    /// transient and within the hostile retry budget).
    #[test]
    fn crawl_is_deterministic_and_recoverable_faults_are_invisible(
        world_seed in 0u64..1_000,
        injector_seed in 0u64..1_000,
        error_prob in 0.0f64..0.12,
        delay_prob in 0.0f64..0.15,
        reset_prob in 0.0f64..0.02,
        rate_limit_prob in 0.0f64..0.02,
    ) {
        let plan = FaultPlan {
            error_prob,
            delay_prob,
            reset_prob,
            rate_limit_prob,
            ..FaultPlan::default()
        };
        let world = tiny_world(world_seed);
        let a = crawl(world.clone(), plan.clone(), injector_seed);
        let b = crawl(world.clone(), plan, injector_seed);
        prop_assert_eq!(&a, &b, "same seeds diverged across fresh executors");
        let clean = crawl(world, FaultPlan::default(), injector_seed);
        prop_assert_eq!(&a, &clean, "recoverable faults leaked into the dataset");
    }

    /// Unrecoverable plans (instance death, persistent exhaustion) still
    /// replay deterministically — robustness never costs reproducibility.
    #[test]
    fn harsh_crawls_replay_identically(
        world_seed in 0u64..1_000,
        injector_seed in 0u64..1_000,
    ) {
        let world = tiny_world(world_seed);
        let a = crawl(world.clone(), FaultPlan::harsh(), injector_seed);
        let b = crawl(world, FaultPlan::harsh(), injector_seed);
        prop_assert_eq!(&a, &b, "harsh crawl diverged across fresh executors");
    }
}
