//! `bench_graph` — pin the incremental resilience engine's speedup and
//! record a trajectory point in `BENCH_graph.json`.
//!
//! ```text
//! bench_graph [--quick] [--seed N] [--out PATH]
//! ```
//!
//! Full mode builds a ~100k-node / ~1M-edge power-law follower graph
//! through the worldgen pipeline and runs the Fig. 12 attack (100 rounds of
//! 1% top-degree removals) with both the incremental engine and the naive
//! reference, asserting the outputs are identical and the speedup is at
//! least 5x. `--quick` shrinks the graph and round count for CI smoke runs
//! (the identity check still holds; the speedup floor is not enforced).

use fediscope_bench::bench_user_graph;
use fediscope_graph::removal::{RankBy, RemovalSweep};
use std::time::Instant;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_graph.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--help" | "-h" => {
                println!("usage: bench_graph [--quick] [--seed N] [--out PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let (n_users, steps, trials) = if args.quick {
        (20_000usize, 25usize, 2usize)
    } else {
        (100_000usize, 100usize, 3usize)
    };

    eprintln!("generating power-law graph ({n_users} users) via worldgen …");
    let t0 = Instant::now();
    // The generator's realised mean degree lands well under the configured
    // value after parallel-edge dedup; 28 yields ~1M edges at 100k users.
    let g = bench_user_graph(n_users, 28.0, args.seed);
    eprintln!(
        "graph ready in {:.1?}: {} nodes, {} edges",
        t0.elapsed(),
        g.node_count(),
        g.edge_count()
    );

    let sweep = RemovalSweep::new(&g);

    // Warm-up + correctness: the engines must agree exactly.
    let fast_points = sweep.iterative_fraction(0.01, steps, RankBy::DegreeIterative);
    let naive_points = sweep.iterative_fraction_naive(0.01, steps, RankBy::DegreeIterative);
    assert_eq!(
        fast_points, naive_points,
        "incremental sweep diverged from the naive reference"
    );
    eprintln!(
        "identity check passed: {} sweep points, final LCC {:.2}%",
        fast_points.len(),
        fast_points.last().map(|p| p.lcc_node_frac * 100.0).unwrap_or(0.0)
    );

    let time = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..trials {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };

    eprintln!("timing incremental engine ({trials} trials) …");
    let incremental_s = time(&|| {
        sweep.iterative_fraction(0.01, steps, RankBy::DegreeIterative);
    });
    eprintln!("incremental: {incremental_s:.3}s");

    eprintln!("timing naive engine ({trials} trials) …");
    let naive_s = time(&|| {
        sweep.iterative_fraction_naive(0.01, steps, RankBy::DegreeIterative);
    });
    eprintln!("naive:       {naive_s:.3}s");

    let speedup = naive_s / incremental_s;
    eprintln!("speedup:     {speedup:.1}x");

    let json = format!(
        "{{\"bench\":\"removal_sweep_iterative\",\"mode\":\"{mode}\",\
         \"nodes\":{nodes},\"edges\":{edges},\"steps\":{steps},\
         \"frac_per_round\":0.01,\"seed\":{seed},\
         \"naive_seconds\":{naive_s:.6},\"incremental_seconds\":{incremental_s:.6},\
         \"speedup\":{speedup:.2},\"identical_output\":true}}",
        mode = if args.quick { "quick" } else { "full" },
        nodes = g.node_count(),
        edges = g.edge_count(),
        seed = args.seed,
    );
    std::fs::write(&args.out, format!("{json}\n")).expect("write BENCH_graph.json");
    println!("{json}");

    if !args.quick && speedup < 5.0 {
        eprintln!("FAIL: speedup {speedup:.1}x below the 5x acceptance floor");
        std::process::exit(1);
    }
}
