//! `bench_graph` — pin the incremental resilience engine's speedups and
//! record trajectory points in `BENCH_graph.json` (one JSON object per
//! line, appended — the file is a history, not a snapshot).
//!
//! ```text
//! bench_graph [--quick] [--seed N] [--out PATH] [--tier paper2019|mid|modern]
//!             [--threads N]
//! ```
//!
//! `--threads N` pins the shard-worker budget of the parallel
//! connectivity core (`par::set_thread_override`) and is recorded in
//! every JSON line (`"threads"`, plus `"cores"` = what the machine
//! actually offers). Output is bit-identical at any thread count, so
//! thread sweeps only move the wall-clock columns.
//!
//! Without `--tier`, full mode builds a ~100k-node / ~1M-edge power-law
//! follower graph through the worldgen pipeline and runs the Fig. 12
//! attack (100 rounds of 1% top-degree removals) twice — unweighted and
//! with integer node weights — comparing the incremental engine against
//! the naive reference. Output must be identical and each speedup at
//! least 5x.
//!
//! With `--tier`, the named [`ScaleTier`] world's follower graph is
//! generated through the streaming pipeline (the `modern` tier stands up
//! ~30K instances and a 1M-account graph) and the same comparison is
//! recorded as that tier's datapoint.
//!
//! `--quick` shrinks the scale and round count for CI smoke runs (the
//! identity check still holds; the speedup floors are not enforced).

use fediscope_bench::{bench_user_graph, tier_user_graph};
use fediscope_graph::par;
use fediscope_graph::removal::{RankBy, RemovalSweep};
use fediscope_graph::DiGraph;
use fediscope_worldgen::ScaleTier;
use std::time::Instant;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    tier: Option<ScaleTier>,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_graph.json".to_string(),
        tier: None,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--tier" => {
                let name = it.next().expect("--tier needs a name");
                a.tier = Some(
                    ScaleTier::parse(&name)
                        .unwrap_or_else(|| panic!("unknown tier {name:?} (paper2019|mid|modern)")),
                );
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
                assert!(t >= 1, "--threads must be at least 1");
                a.threads = Some(t);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_graph [--quick] [--seed N] [--out PATH] \
                     [--tier paper2019|mid|modern] [--threads N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

/// Deterministic integer-valued node weights (user-count-like): integer
/// weights make float summation order unobservable, so the engines must
/// agree bit-for-bit.
fn synthetic_weights(n: usize) -> Vec<f64> {
    (0..n as u64)
        .map(|v| (v.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 52) as f64 + 1.0)
        .collect()
}

/// Best-of-`trials` wall time of `f`, in seconds.
fn time(trials: usize, f: &dyn Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct EngineComparison {
    naive_s: f64,
    incremental_s: f64,
    speedup: f64,
    identical: bool,
}

/// Run fast + naive engines, compare their output, time both. A
/// divergence is *recorded* (`identical_output: false` in the JSON line —
/// which CI greps for) rather than panicking, so the datapoint lands in
/// the trajectory either way; main exits non-zero afterwards.
fn compare_engines(
    sweep: &RemovalSweep<'_>,
    steps: usize,
    trials: usize,
    label: &str,
) -> EngineComparison {
    let fast = sweep.iterative_fraction(0.01, steps, RankBy::DegreeIterative);
    let naive = sweep.iterative_fraction_naive(0.01, steps, RankBy::DegreeIterative);
    let identical = fast == naive;
    if identical {
        eprintln!(
            "{label}: identity check passed ({} points, final LCC {:.2}%)",
            fast.len(),
            fast.last().map(|p| p.lcc_node_frac * 100.0).unwrap_or(0.0)
        );
    } else {
        eprintln!("{label}: FAIL — incremental sweep diverged from the naive reference");
    }
    let incremental_s = time(trials, &|| {
        sweep.iterative_fraction(0.01, steps, RankBy::DegreeIterative);
    });
    let naive_s = time(trials, &|| {
        sweep.iterative_fraction_naive(0.01, steps, RankBy::DegreeIterative);
    });
    let speedup = naive_s / incremental_s;
    eprintln!("{label}: incremental {incremental_s:.3}s, naive {naive_s:.3}s ({speedup:.1}x)");
    EngineComparison {
        naive_s,
        incremental_s,
        speedup,
        identical,
    }
}

/// Append one JSON line to the trajectory file (and echo it to stdout).
/// Delegates to [`fediscope_bench::record_line`], which rewrites the file
/// via temp-then-rename so a mid-record kill can't tear the history.
fn record(out: &str, json: &str) {
    fediscope_bench::record_line(out, json);
}

fn main() {
    let args = parse_args();
    par::set_thread_override(args.threads);
    let threads = par::thread_budget();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("shard workers: {threads} (machine offers {cores})");
    let mode = if args.quick { "quick" } else { "full" };
    let (steps, trials) = if args.quick { (25, 2) } else { (100, 3) };

    let (g, gen_s, tier_name): (DiGraph, f64, Option<&'static str>) = match args.tier {
        Some(tier) => {
            eprintln!(
                "generating {tier} tier world ({} instances, {} users) …",
                tier.n_instances(),
                tier.n_users()
            );
            let t0 = Instant::now();
            let g = tier_user_graph(tier, args.seed);
            (g, t0.elapsed().as_secs_f64(), Some(tier.name()))
        }
        None => {
            let n_users = if args.quick { 20_000 } else { 100_000 };
            eprintln!("generating power-law graph ({n_users} users) via worldgen …");
            let t0 = Instant::now();
            // The generator's realised mean degree lands well under the
            // configured value after parallel-edge dedup; 28 yields ~1M
            // edges at 100k users.
            let g = bench_user_graph(n_users, 28.0, args.seed);
            (g, t0.elapsed().as_secs_f64(), None)
        }
    };
    eprintln!(
        "graph ready in {gen_s:.1}s: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );

    let sweep = RemovalSweep::new(&g);
    let plain = compare_engines(&sweep, steps, trials, "unweighted");

    let weights = synthetic_weights(g.node_count());
    let weighted_sweep = RemovalSweep::new(&g).with_weights(&weights);
    let weighted = compare_engines(&weighted_sweep, steps, trials, "weighted");

    match tier_name {
        Some(tier) => record(
            &args.out,
            &format!(
                "{{\"bench\":\"fig12_tier\",\"tier\":\"{tier}\",\"mode\":\"{mode}\",\
                 \"threads\":{threads},\"cores\":{cores},\
                 \"nodes\":{nodes},\"edges\":{edges},\"steps\":{steps},\
                 \"frac_per_round\":0.01,\"seed\":{seed},\"gen_seconds\":{gen_s:.3},\
                 \"naive_seconds\":{pn:.6},\"incremental_seconds\":{pi:.6},\
                 \"speedup\":{ps:.2},\"weighted_naive_seconds\":{wn:.6},\
                 \"weighted_incremental_seconds\":{wi:.6},\"weighted_speedup\":{ws:.2},\
                 \"identical_output\":{ident}}}",
                nodes = g.node_count(),
                edges = g.edge_count(),
                seed = args.seed,
                pn = plain.naive_s,
                pi = plain.incremental_s,
                ps = plain.speedup,
                wn = weighted.naive_s,
                wi = weighted.incremental_s,
                ws = weighted.speedup,
                ident = plain.identical && weighted.identical,
            ),
        ),
        None => {
            for (name, cmp) in [
                ("removal_sweep_iterative", &plain),
                ("removal_sweep_iterative_weighted", &weighted),
            ] {
                record(
                    &args.out,
                    &format!(
                        "{{\"bench\":\"{name}\",\"mode\":\"{mode}\",\
                         \"threads\":{threads},\"cores\":{cores},\
                         \"nodes\":{nodes},\"edges\":{edges},\"steps\":{steps},\
                         \"frac_per_round\":0.01,\"seed\":{seed},\
                         \"naive_seconds\":{n:.6},\"incremental_seconds\":{i:.6},\
                         \"speedup\":{s:.2},\"identical_output\":{ident}}}",
                        nodes = g.node_count(),
                        edges = g.edge_count(),
                        seed = args.seed,
                        n = cmp.naive_s,
                        i = cmp.incremental_s,
                        s = cmp.speedup,
                        ident = cmp.identical,
                    ),
                );
            }
        }
    }

    let mut fail = false;
    // Divergence fails in every mode; the speedup floor only in full mode.
    for (label, cmp) in [("unweighted", &plain), ("weighted", &weighted)] {
        if !cmp.identical {
            eprintln!("FAIL: {label} output diverged from the naive reference");
            fail = true;
        }
        if !args.quick && cmp.speedup < 5.0 {
            eprintln!(
                "FAIL: {label} speedup {:.1}x below the 5x acceptance floor",
                cmp.speedup
            );
            fail = true;
        }
    }
    if fail {
        std::process::exit(1);
    }
}
