//! `repro` — regenerate every table and figure of the paper on a seeded
//! synthetic world and print paper-vs-measured verdicts.
//!
//! ```text
//! repro [--seed N] [--scale tiny|small|paper|full] [--fast]
//! ```

use fediscope_core::report;
use fediscope_core::{availability, content, graphs, population, verdicts, Observatory};
use fediscope_worldgen::{Generator, WorldConfig};

fn main() {
    let mut seed = 42u64;
    let mut scale = "small".to_string();
    let mut fast = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--scale" => scale = args.next().expect("--scale needs a value"),
            "--fast" => fast = true,
            "--help" | "-h" => {
                println!("usage: repro [--seed N] [--scale tiny|small|paper|full] [--fast]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let cfg = match scale.as_str() {
        "tiny" => WorldConfig::tiny(seed),
        "small" => WorldConfig::small(seed),
        "paper" => WorldConfig::paper_scaled(seed),
        "full" => WorldConfig::paper_full(seed),
        other => {
            eprintln!("unknown scale: {other}");
            std::process::exit(2);
        }
    };
    let n_instances = cfg.n_instances;
    // thresholds scale with world size
    let table1_min = if n_instances >= 2000 { 8 } else { 3 };
    let fig13_instances = (n_instances / 5).max(10);
    let fig13_ases = 20;

    eprintln!("generating world (seed {seed}, scale {scale}) …");
    let t0 = std::time::Instant::now();
    let world = Generator::generate_world(cfg);
    eprintln!(
        "world ready in {:.1?}: {} instances, {} users, {} follows, {} toots",
        t0.elapsed(),
        world.instances.len(),
        world.users.len(),
        world.follows.len(),
        world.total_toots()
    );
    let obs = Observatory::new(world);

    println!("==============================================================");
    println!("fediscope repro — Challenges in the Decentralised Web (IMC'19)");
    println!("seed {seed} | scale {scale}");
    println!("==============================================================\n");

    println!("{}", report::render_fig01(&population::fig01_growth(&obs, 30)));
    println!("{}", report::render_fig02(&population::fig02_open_closed(&obs)));
    println!("{}", report::render_fig03(&population::fig03_categories(&obs)));
    println!("{}", report::render_fig04(&population::fig04_policies(&obs)));
    println!("{}", report::render_fig05(&population::fig05_hosting(&obs)));
    println!("{}", report::render_fig06(&population::fig06_country_links(&obs)));
    // Figs. 7, 8, 10 + Table 1 come out of ONE sharded pass over the
    // columnar outage arena (stride 1: the interval walk makes
    // full-resolution Fig. 8 cheap — no day subsampling needed).
    let s4 = availability::section4_sweep(&obs, table1_min, 1);
    println!("{}", report::render_fig07(&s4.fig07));
    println!("{}", report::render_fig08(&s4.fig08));
    println!("{}", report::render_fig09(&availability::fig09_certificates(&obs)));
    println!("{}", report::render_table1(&s4.table1));
    println!("{}", report::render_fig10(&s4.fig10));
    println!("{}", report::render_fig11(&graphs::fig11_degrees(&obs)));
    println!("{}", report::render_table2(&graphs::table2_top_instances(&obs)));
    if !fast {
        println!("{}", report::render_fig12(&graphs::fig12_user_removal(&obs, 15)));
        println!(
            "{}",
            report::render_fig13(&graphs::fig13_federation_removal(
                &obs,
                fig13_instances,
                fig13_ases
            ))
        );
    }
    println!("{}", report::render_fig14(&content::fig14_remote_ratio(&obs)));
    if !fast {
        println!(
            "{}",
            report::render_fig15(&content::fig15_replication(&obs, 30, 20))
        );
        println!(
            "{}",
            report::render_fig16(&content::fig16_random_replication(&obs, 25))
        );
    }

    println!("==============================================================");
    println!("paper-vs-measured verdicts");
    println!("==============================================================");
    let vs = verdicts::evaluate(&obs, fast);
    println!("{}", report::render_verdicts(&vs));
    let failed = verdicts::failed(&vs);
    println!("{} checks, {} failed", vs.len(), failed);
    if failed > 0 {
        std::process::exit(1);
    }
}
