//! `bench_wire` — pin the net stack's throughput: polls per second through
//! the full wire path (deterministic executor → in-memory TCP → HTTP/1.1
//! codec → simnet handler → retry engine) and record trajectory points in
//! `BENCH_wire.json` (one JSON object per line, appended — the file is a
//! history, not a snapshot).
//!
//! ```text
//! bench_wire [--quick] [--seed N] [--out PATH] [--sweeps N]
//! ```
//!
//! Two campaigns run, each twice on a *fresh* executor:
//!
//! 1. **clean** — `FaultPlan::default()` with `Politeness::fast()`: the raw
//!    serve/encode/parse/join cost per poll;
//! 2. **flaky** — `FaultPlan::flaky()` with `Politeness::hostile()`: the
//!    same campaign with injected 500s/resets/429s/delays absorbed by the
//!    retry engine, showing what robustness costs on the wire.
//!
//! The second run of each campaign is the **determinism gate**: a fresh
//! runtime, listener, and injector must replay a byte-identical dataset
//! (`identical_output` in the JSON line; the process exits non-zero when
//! the gate fails).

use fediscope_crawler::discovery::SeedList;
use fediscope_crawler::monitor::InstanceMonitor;
use fediscope_crawler::politeness::Politeness;
use fediscope_model::datasets::InstancesDataset;
use fediscope_model::time::Epoch;
use fediscope_model::world::World;
use fediscope_simnet::{launch, FaultPlan};
use fediscope_worldgen::{Generator, WorldConfig};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    sweeps: Option<u32>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_wire.json".to_string(),
        sweeps: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--sweeps" => {
                a.sweeps = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--sweeps needs a number"),
                )
            }
            "--help" | "-h" => {
                println!("usage: bench_wire [--quick] [--seed N] [--out PATH] [--sweeps N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

/// One monitoring campaign on a fresh executor: `sweeps` full passes over
/// the seed list, the virtual clock stepping 72 epochs between passes.
/// Returns the dataset and the wall time of the crawl proper.
fn campaign(
    world: Arc<World>,
    plan: FaultPlan,
    injector_seed: u64,
    politeness: Politeness,
    sweeps: u32,
) -> (InstancesDataset, f64) {
    let rt = tokio::runtime::Runtime::new().expect("executor");
    rt.block_on(async move {
        let net = launch(world, plan, injector_seed).await.expect("launch");
        let seeds = SeedList::for_simnet(&net.state.world, net.addr());
        let mut monitor = InstanceMonitor::new(seeds, politeness);
        let t0 = Instant::now();
        for sweep in 0..sweeps {
            let epoch = Epoch(sweep * 72);
            net.state.clock.set(epoch);
            monitor.poll_all(epoch).await;
        }
        let wall = t0.elapsed().as_secs_f64();
        let dataset = monitor.into_dataset();
        net.shutdown().await;
        (dataset, wall)
    })
}

/// Append one JSON line to the trajectory file (and echo it to stdout).
/// Delegates to [`fediscope_bench::record_line`], which rewrites the file
/// via temp-then-rename so a mid-record kill can't tear the history.
fn record(out: &str, json: &str) {
    fediscope_bench::record_line(out, json);
}

fn main() {
    let args = parse_args();
    let mode = if args.quick { "quick" } else { "full" };
    let (n_instances, n_users, default_sweeps) =
        if args.quick { (10, 200, 40) } else { (40, 800, 200) };
    let sweeps = args.sweeps.unwrap_or(default_sweeps);

    let mut cfg = WorldConfig::tiny(args.seed);
    cfg.n_instances = n_instances;
    cfg.n_users = n_users;
    cfg.toots_per_user_open = 4.0;
    cfg.toots_per_user_closed = 6.0;
    let world = Arc::new(Generator::generate_world(cfg));
    let polls = u64::from(sweeps) * world.instances.len() as u64;
    eprintln!(
        "world: {} instances, {} users; {sweeps} sweeps = {polls} polls per campaign",
        world.instances.len(),
        world.users.len()
    );

    // Each campaign runs twice on a fresh executor: best-of-2 for the
    // throughput number, and the pair feeds the determinism gate.
    let (clean_a, clean_s1) = campaign(
        world.clone(),
        FaultPlan::default(),
        args.seed,
        Politeness::fast(),
        sweeps,
    );
    let (clean_b, clean_s2) = campaign(
        world.clone(),
        FaultPlan::default(),
        args.seed,
        Politeness::fast(),
        sweeps,
    );
    let clean_s = clean_s1.min(clean_s2);

    let (flaky_a, flaky_s1) = campaign(
        world.clone(),
        FaultPlan::flaky(),
        args.seed,
        Politeness::hostile(),
        sweeps,
    );
    let (flaky_b, flaky_s2) = campaign(
        world.clone(),
        FaultPlan::flaky(),
        args.seed,
        Politeness::hostile(),
        sweeps,
    );
    let flaky_s = flaky_s1.min(flaky_s2);

    let identical = clean_a == clean_b && flaky_a == flaky_b;
    // Flaky faults are all recoverable, so robustness must also mean the
    // flaky transcript matches the clean one poll for poll.
    let recovered = clean_a == flaky_a;
    if identical {
        eprintln!("determinism gate passed (fresh executors replayed identical datasets)");
    } else {
        eprintln!("FAIL — fresh executors diverged");
    }
    if !recovered {
        eprintln!("FAIL — flaky campaign did not recover the clean transcript");
    }

    let clean_pps = polls as f64 / clean_s;
    let flaky_pps = polls as f64 / flaky_s;
    eprintln!(
        "clean: {clean_s:.3}s ({clean_pps:.0} polls/s); \
         flaky: {flaky_s:.3}s ({flaky_pps:.0} polls/s)"
    );

    record(
        &args.out,
        &format!(
            "{{\"bench\":\"wire_polls\",\"mode\":\"{mode}\",\"seed\":{seed},\
             \"instances\":{inst},\"sweeps\":{sweeps},\"polls\":{polls},\
             \"clean_seconds\":{clean_s:.6},\"clean_polls_per_sec\":{clean_pps:.1},\
             \"flaky_seconds\":{flaky_s:.6},\"flaky_polls_per_sec\":{flaky_pps:.1},\
             \"identical_output\":{identical},\"flaky_recovers_clean\":{recovered}}}",
            seed = args.seed,
            inst = world.instances.len(),
        ),
    );

    if !identical || !recovered {
        std::process::exit(1);
    }
}
