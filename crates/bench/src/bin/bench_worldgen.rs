//! `bench_worldgen` — pin the sharded worldgen pipeline's serial-vs-sharded
//! identity and record per-tier generation times in `BENCH_worldgen.json`
//! (one JSON object per line, appended — the file is a history, not a
//! snapshot).
//!
//! ```text
//! bench_worldgen [--quick] [--seed N] [--out PATH]
//!                [--tier paper2019|mid|modern|fediverse2026] [--threads N]
//! ```
//!
//! Every generator stage (users, social edges, availability arena, toot
//! streams) runs twice: once as a single serial block and once sharded at
//! the default block size under the requested `--threads` budget. The two
//! outputs are compared by FNV-1a world digest ([`shard::digest_users`]
//! and friends); a mismatch is *recorded* (`"identical_output":false`,
//! which CI greps for) and the process exits non-zero. Timings are
//! best-of-N wall clock per stage.
//!
//! The social segments are then assembled into the CSR follower graph
//! (`DiGraph::from_sorted_blocks`, no global sort) and a Fig.-12-style
//! top-degree removal sweep runs on it, so a tier's line records the full
//! *generate → analyse* path — the ISSUE-10 acceptance for the
//! `fediverse2026` tier is exactly this line.
//!
//! `--quick` shrinks the population (CI smoke); the identity gate still
//! holds there.

use fediscope_graph::par;
use fediscope_graph::removal::{RankBy, RemovalSweep};
use fediscope_graph::DiGraph;
use fediscope_model::geo::ProviderCatalog;
use fediscope_worldgen::{
    availability, instances, shard, social, toots, users, ScaleTier, WorldConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    tier: ScaleTier,
    threads: Option<usize>,
    trials: Option<usize>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_worldgen.json".to_string(),
        tier: ScaleTier::Paper2019,
        threads: None,
        trials: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--tier" => {
                let name = it.next().expect("--tier needs a name");
                a.tier = ScaleTier::parse(&name).unwrap_or_else(|| {
                    panic!("unknown tier {name:?} (paper2019|mid|modern|fediverse2026)")
                });
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
                assert!(t >= 1, "--threads must be at least 1");
                a.threads = Some(t);
            }
            "--trials" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials needs a number");
                assert!(t >= 1, "--trials must be at least 1");
                a.trials = Some(t);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_worldgen [--quick] [--seed N] [--out PATH] \
                     [--tier paper2019|mid|modern|fediverse2026] [--threads N] [--trials N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

/// Best-of-`trials` wall time of `f`, in seconds.
fn time(trials: usize, f: &mut dyn FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// One serial-vs-sharded stage comparison: wall times plus digest match.
struct StageCmp {
    serial_s: f64,
    sharded_s: f64,
    identical: bool,
}

fn report(label: &str, c: &StageCmp) {
    eprintln!(
        "{label}: serial {:.3}s, sharded {:.3}s, identical {}",
        c.serial_s, c.sharded_s, c.identical
    );
}

fn main() {
    let args = parse_args();
    par::set_thread_override(args.threads);
    let threads = par::thread_budget();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("shard workers: {threads} (machine offers {cores})");
    let mode = if args.quick { "quick" } else { "full" };
    // Best-of-N: the shared-core machines this runs on jitter ±30%, so
    // the minimum over a few trials is the stable statistic.
    let trials = args.trials.unwrap_or(if args.quick { 1 } else { 2 });

    let mut cfg = WorldConfig::for_tier(args.tier, args.seed);
    if args.quick {
        // CI smoke: keep the tier's *shape* but shrink the population.
        cfg.n_instances = (cfg.n_instances / 16).max(60);
        cfg.n_users = (cfg.n_users / 16).max(1_500);
        cfg.n_providers = (cfg.n_providers / 4).max(30);
        cfg.twitter_users = 1_000;
    }
    eprintln!(
        "{} tier ({} instances, {} users, seed {})",
        args.tier, cfg.n_instances, cfg.n_users, args.seed
    );

    // Instance stage: a single sequential RNG stream (it is ~30x smaller
    // than the user population), shared by both pipeline variants.
    let providers = ProviderCatalog::with_tail(cfg.n_providers);
    let t0 = Instant::now();
    let stage = instances::generate(
        &cfg,
        &providers,
        &mut StdRng::seed_from_u64(fediscope_worldgen::sub_seed(cfg.seed, 1)),
    );
    let instances_s = t0.elapsed().as_secs_f64();

    // Users: block 0 = one serial block; DEFAULT_BLOCK = sharded fan-out.
    let serial_users = {
        let mut inst = stage.instances.clone();
        users::generate_with_block(&cfg, &mut inst, &stage.popularity, 0)
    };
    let mut inst = stage.instances.clone();
    let sharded_users =
        users::generate_with_block(&cfg, &mut inst, &stage.popularity, shard::DEFAULT_BLOCK);
    let users_cmp = StageCmp {
        serial_s: time(trials, &mut || {
            let mut i = stage.instances.clone();
            users::generate_with_block(&cfg, &mut i, &stage.popularity, 0);
        }),
        sharded_s: time(trials, &mut || {
            let mut i = stage.instances.clone();
            users::generate_with_block(&cfg, &mut i, &stage.popularity, shard::DEFAULT_BLOCK);
        }),
        identical: shard::digest_users(&serial_users) == shard::digest_users(&sharded_users),
    };
    report("users", &users_cmp);
    let users_v = sharded_users;

    // Social edges: one frozen cursor, emitted serially vs sharded.
    let cursor = social::SocialCursor::new(&cfg, &inst, &users_v);
    let serial_segs = cursor.segments(0);
    let sharded_segs = cursor.segments(shard::DEFAULT_BLOCK);
    let digest_of = |segs: &[social::SocialSegment]| {
        shard::digest_edges(segs.iter().flat_map(|s| {
            (0..s.offsets.len() - 1).flat_map(move |k| {
                s.targets[s.offsets[k] as usize..s.offsets[k + 1] as usize]
                    .iter()
                    .map(move |&t| (s.start + k as u32, t))
            })
        }))
    };
    let social_cmp = StageCmp {
        serial_s: time(trials, &mut || {
            cursor.segments(0);
        }),
        sharded_s: time(trials, &mut || {
            cursor.segments(shard::DEFAULT_BLOCK);
        }),
        identical: digest_of(&serial_segs) == digest_of(&sharded_segs),
    };
    report("social", &social_cmp);
    drop(serial_segs);

    // Availability: straight into the columnar arena via the unsorted
    // interval ingest.
    let serial_arena = {
        let mut i = inst.clone();
        availability::generate_arena_with_block(&cfg, &mut i, 0)
    };
    let sharded_arena = {
        let mut i = inst.clone();
        availability::generate_arena_with_block(&cfg, &mut i, shard::INSTANCE_BLOCK)
    };
    let avail_cmp = StageCmp {
        serial_s: time(trials, &mut || {
            let mut i = inst.clone();
            availability::generate_arena_with_block(&cfg, &mut i, 0);
        }),
        sharded_s: time(trials, &mut || {
            let mut i = inst.clone();
            availability::generate_arena_with_block(&cfg, &mut i, shard::INSTANCE_BLOCK);
        }),
        identical: shard::digest_arena(&serial_arena) == shard::digest_arena(&sharded_arena),
    };
    report("availability", &avail_cmp);

    // Toot streams over the tier's fedsim horizon.
    let horizon = args.tier.fedsim_horizon_epochs();
    let rate = args.tier.fedsim_rate_scale();
    let serial_toots = toots::generate_with_block(&cfg, &users_v, horizon, rate, 0);
    let sharded_toots =
        toots::generate_with_block(&cfg, &users_v, horizon, rate, shard::DEFAULT_BLOCK);
    let toots_cmp = StageCmp {
        serial_s: time(trials, &mut || {
            toots::generate_with_block(&cfg, &users_v, horizon, rate, 0);
        }),
        sharded_s: time(trials, &mut || {
            toots::generate_with_block(&cfg, &users_v, horizon, rate, shard::DEFAULT_BLOCK);
        }),
        identical: shard::digest_toots(&serial_toots) == shard::digest_toots(&sharded_toots),
    };
    report("toots", &toots_cmp);

    // End-to-end: CSR graph from the sharded segments (no global sort),
    // then the Fig.-12 top-degree removal sweep on it.
    let t0 = Instant::now();
    let g = DiGraph::from_sorted_blocks(
        users_v.len() as u32,
        sharded_segs
            .iter()
            .map(|s| (s.start, s.offsets.as_slice(), s.targets.as_slice())),
    );
    let csr_s = t0.elapsed().as_secs_f64();
    let steps = if args.quick { 5 } else { 10 };
    let t0 = Instant::now();
    let sweep = RemovalSweep::new(&g).iterative_fraction(0.01, steps, RankBy::DegreeIterative);
    let sweep_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "graph {} nodes / {} edges in {csr_s:.3}s; {steps}-step removal sweep {sweep_s:.3}s \
         (final LCC {:.1}%)",
        g.node_count(),
        g.edge_count(),
        sweep.last().map(|p| p.lcc_node_frac * 100.0).unwrap_or(0.0)
    );

    let identical = users_cmp.identical
        && social_cmp.identical
        && avail_cmp.identical
        && toots_cmp.identical;
    let serial_total =
        instances_s + users_cmp.serial_s + social_cmp.serial_s + avail_cmp.serial_s
            + toots_cmp.serial_s;
    let sharded_total =
        instances_s + users_cmp.sharded_s + social_cmp.sharded_s + avail_cmp.sharded_s
            + toots_cmp.sharded_s;
    eprintln!(
        "gen total: serial {serial_total:.3}s, sharded {sharded_total:.3}s, \
         end-to-end (gen+graph+sweep) {:.3}s",
        sharded_total + csr_s + sweep_s
    );

    fediscope_bench::record_line(
        &args.out,
        &format!(
            "{{\"bench\":\"worldgen_tier\",\"tier\":\"{tier}\",\"mode\":\"{mode}\",\
             \"threads\":{threads},\"cores\":{cores},\"seed\":{seed},\
             \"instances\":{ni},\"users\":{nu},\"edges\":{ne},\"toot_events\":{nt},\
             \"gen_seconds\":{st:.3},\"gen_seconds_sharded\":{sh:.3},\
             \"instances_seconds\":{is:.3},\
             \"users_seconds\":{us:.3},\"users_seconds_sharded\":{uss:.3},\
             \"social_seconds\":{ss:.3},\"social_seconds_sharded\":{sss:.3},\
             \"avail_seconds\":{avs:.3},\"avail_seconds_sharded\":{avss:.3},\
             \"toots_seconds\":{ts:.3},\"toots_seconds_sharded\":{tss:.3},\
             \"csr_seconds\":{cs:.3},\"sweep_steps\":{steps},\"sweep_seconds\":{sw:.3},\
             \"end_to_end_seconds\":{e2e:.3},\"identical_output\":{identical}}}",
            tier = args.tier.name(),
            seed = args.seed,
            ni = cfg.n_instances,
            nu = cfg.n_users,
            ne = g.edge_count(),
            nt = sharded_toots.n_toots(),
            st = serial_total,
            sh = sharded_total,
            is = instances_s,
            us = users_cmp.serial_s,
            uss = users_cmp.sharded_s,
            ss = social_cmp.serial_s,
            sss = social_cmp.sharded_s,
            avs = avail_cmp.serial_s,
            avss = avail_cmp.sharded_s,
            ts = toots_cmp.serial_s,
            tss = toots_cmp.sharded_s,
            cs = csr_s,
            sw = sweep_s,
            e2e = sharded_total + csr_s + sweep_s,
        ),
    );

    if !identical {
        eprintln!("FAIL: sharded output diverged from serial");
        std::process::exit(1);
    }
}
