//! `bench_recover` — price the checkpoint layer and gate the resume
//! contract, recording one line in `BENCH_recover.json`.
//!
//! ```text
//! bench_recover [--quick] [--seed N] [--out PATH]
//! ```
//!
//! Three gates ride every run, all over the federation simulator driven
//! through [`fediscope_recover::run_checkpointed`] with on-disk
//! [`DirStore`] snapshots:
//!
//! 1. **`overhead_ok`** — checkpointing at the deployment cadence (one
//!    frame per simulated day, written through temp-then-rename) must
//!    cost **< 5% wall** against the same run with checkpointing off.
//!    Both sides take the best of three repetitions so scheduler noise
//!    doesn't fail CI.
//! 2. **`resume_identical`** — kill the run cleanly mid-flight
//!    ([`CrashPlan`]), resume from the newest snapshot on a fresh
//!    simulator, and the finished [`SimRun`] — report, series,
//!    per-instance loads, `event_hash` — is bit-identical to the run
//!    that never crashed.
//! 3. **`torn_fallback_identical`** — kill it again, this time tearing
//!    the final frame mid-write; recovery must detect the torn frame,
//!    fall back one checkpoint, and still finish bit-identical.

use fediscope_recover::{run_checkpointed, CrashPlan, DirStore, RunOutcome, SnapshotStore};
use fediscope_simnet::fedsim::{
    overlay, resume_or_restart, FanoutArena, FedSim, FedSimConfig, SimRun,
};
use fediscope_simnet::OverlaySpec;
use fediscope_worldgen::{toots, Generator, ScaleTier, WorldConfig};
use std::time::Instant;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_recover.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--help" | "-h" => {
                println!("usage: bench_recover [--quick] [--seed N] [--out PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let mode = if args.quick { "quick" } else { "full" };

    // The full run prices checkpointing against the paper-2019 tier —
    // a quick tiny-world run finishes in microseconds, far too short to
    // amortise (or meaningfully measure) a per-frame cost.
    let (wcfg, horizon, rate_scale, mut cfg) = if args.quick {
        let mut cfg = FedSimConfig::new(args.seed);
        cfg.drain_epochs = 96;
        (WorldConfig::tiny(args.seed), 48u32, 8.0, cfg)
    } else {
        let tier = ScaleTier::Paper2019;
        (
            WorldConfig::for_tier(tier, args.seed),
            tier.fedsim_horizon_epochs(),
            tier.fedsim_rate_scale(),
            FedSimConfig::for_tier(tier, args.seed),
        )
    };
    cfg.overlay = OverlaySpec::TopAsOutage(3, horizon / 4, horizon / 2);

    let world = Generator::generate_world(wcfg.clone());
    let fanout = FanoutArena::from_world(&world);
    let toot_arena = toots::generate(&wcfg, &world.users, horizon, rate_scale);
    let dest_users: Vec<u32> = world.instances.iter().map(|i| i.user_count).collect();
    let total = toot_arena.horizon() + cfg.drain_epochs;
    eprintln!(
        "world ready: {} instances, {} delivery pairs, {} toots, horizon {total}",
        world.instances.len(),
        fanout.n_pairs(),
        toot_arena.n_toots()
    );

    let fresh = || -> FedSim<'_> {
        let arena = overlay::build(&cfg.overlay, &world.instances, total);
        FedSim::new(cfg.clone(), &fanout, &toot_arena, &dest_users, arena)
    };
    let ckpt_dir = std::env::temp_dir().join(format!("bench-recover-{}", std::process::id()));
    let open_store = || DirStore::open(&ckpt_dir).expect("open checkpoint dir");
    let wipe_store = || {
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    };

    // --- Gate 1: checkpoint overhead < 5% wall (best of 3 each side).
    let mut clean_s = f64::MAX;
    let mut clean: Option<SimRun> = None;
    for _ in 0..3 {
        let mut sim = fresh();
        let t0 = Instant::now();
        // interval u64::MAX: the loop runs identically but writes nothing.
        let mut store = open_store();
        let out = run_checkpointed(&mut sim, &mut store, u64::MAX, None).unwrap();
        assert_eq!(out, RunOutcome::Completed);
        eprintln!("  clean rep: {:.4}s", t0.elapsed().as_secs_f64());
        clean_s = clean_s.min(t0.elapsed().as_secs_f64());
        clean = Some(sim.finish());
        wipe_store();
    }
    let clean = clean.expect("clean run produced a result");

    // The simulator stops once everything drains, typically well before
    // the configured horizon — cadence and crash ticks come from the
    // *actual* run length so the crash always lands mid-flight.
    let ticks_run = clean.series.len() as u64;
    // The overhead gate prices the *deployment* cadence: a multi-day run
    // checkpoints once per simulated day. The crash-resume gates below
    // use a much denser interval — they test correctness, not cost.
    let day = u64::from(fediscope_model::time::EPOCHS_PER_DAY);
    let overhead_interval = if ticks_run > day { day } else { (ticks_run / 2).max(1) };
    let interval = (ticks_run / 8).max(1);

    let mut ckpt_s = f64::MAX;
    let mut n_frames = 0usize;
    let mut max_frame_bytes = 0usize;
    for _ in 0..3 {
        wipe_store();
        let mut sim = fresh();
        let t0 = Instant::now();
        let mut store = open_store();
        let out = run_checkpointed(&mut sim, &mut store, overhead_interval, None).unwrap();
        assert_eq!(out, RunOutcome::Completed);
        eprintln!("  ckpt rep: {:.4}s", t0.elapsed().as_secs_f64());
        ckpt_s = ckpt_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(sim.finish(), clean, "checkpointing altered the computed stream");
        let ticks = store.ticks();
        n_frames = ticks.len();
        max_frame_bytes = ticks
            .iter()
            .filter_map(|&t| store.get(t).map(|b| b.len()))
            .max()
            .unwrap_or(0);
    }
    let overhead = (ckpt_s - clean_s).max(0.0) / clean_s;
    let overhead_ok = overhead < 0.05;
    // A --quick run finishes in well under a millisecond, so a wall-clock
    // *fraction* is pure scheduler noise there: record it, but only the
    // full run enforces the 5% budget.
    let overhead_gated = !args.quick;
    eprintln!(
        "overhead: clean {clean_s:.4}s, checkpointed {ckpt_s:.4}s \
         ({:+.2}% — {n_frames} frames, largest {max_frame_bytes} bytes{})",
        overhead * 100.0,
        if overhead_gated { "" } else { "; not gated under --quick" }
    );

    // --- Gates 2 & 3: crash → resume ≡ uninterrupted.
    let resume_case = |plan: CrashPlan| -> (bool, Option<u64>, u32) {
        wipe_store();
        let mut store = open_store();
        let mut sim = fresh();
        let out = run_checkpointed(&mut sim, &mut store, interval, Some(plan)).unwrap();
        assert!(matches!(out, RunOutcome::Crashed { .. }), "crash plan never fired");
        drop(sim); // the process died: nothing in-memory survives

        let arena = overlay::build(&cfg.overlay, &world.instances, total);
        let (mut resumed, info) =
            resume_or_restart(&store, cfg.clone(), &fanout, &toot_arena, &dest_users, arena);
        let fin = run_checkpointed(&mut resumed, &mut store, interval, None).unwrap();
        assert_eq!(fin, RunOutcome::Completed);
        (resumed.finish() == clean, info.resumed_from, info.torn_skipped)
    };

    let crash_tick = (ticks_run * 3 / 5).max(1);
    let (resume_identical, resumed_from, _) = resume_case(CrashPlan::at(crash_tick));
    eprintln!(
        "clean kill at tick {crash_tick}: resumed from {resumed_from:?}, \
         identical: {resume_identical}"
    );

    // Tear the frame written at the crash tick itself: recovery must
    // fall back one interval and still converge.
    let torn_crash_tick = interval * (crash_tick / interval).max(2);
    let torn_plan = CrashPlan {
        crash_tick: torn_crash_tick,
        torn_final: true,
    };
    let (torn_fallback_identical, torn_resumed_from, torn_skipped) = resume_case(torn_plan);
    eprintln!(
        "torn kill at tick {torn_crash_tick}: skipped {torn_skipped} torn frame(s), \
         resumed from {torn_resumed_from:?}, identical: {torn_fallback_identical}"
    );
    assert!(torn_skipped >= 1, "the torn final frame went undetected");
    wipe_store();

    fediscope_bench::record_line(
        &args.out,
        &format!(
            "{{\"bench\":\"recover\",\"mode\":\"{mode}\",\"seed\":{seed},\
             \"instances\":{inst},\"users\":{users},\"ticks\":{ticks_run},\
             \"overhead_interval\":{overhead_interval},\
             \"interval\":{interval},\"frames\":{n_frames},\
             \"max_frame_bytes\":{max_frame_bytes},\
             \"clean_seconds\":{clean_s:.4},\"checkpointed_seconds\":{ckpt_s:.4},\
             \"overhead_frac\":{overhead:.4},\"crash_tick\":{crash_tick},\
             \"torn_crash_tick\":{torn_crash_tick},\"torn_skipped\":{torn_skipped},\
             \"event_hash\":{hash},\"overhead_gated\":{overhead_gated},\
             \"overhead_ok\":{overhead_ok},\
             \"torn_fallback_identical\":{torn_fallback_identical},\
             \"resume_identical\":{both_identical}}}",
            seed = args.seed,
            inst = world.instances.len(),
            users = world.users.len(),
            hash = clean.report.event_hash,
            both_identical = resume_identical && torn_fallback_identical,
        ),
    );

    let mut fail = false;
    if overhead_gated && !overhead_ok {
        eprintln!("FAIL: checkpointing cost {:.2}% wall (budget 5%)", overhead * 100.0);
        fail = true;
    }
    if !(resume_identical && torn_fallback_identical) {
        eprintln!("FAIL: a resumed run diverged from the uninterrupted run");
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
}
