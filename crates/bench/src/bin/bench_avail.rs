//! `bench_avail` — pin the batched availability engine's speedups and
//! record trajectory points in `BENCH_avail.json` (one JSON object per
//! line, appended — the file is a history, not a snapshot).
//!
//! ```text
//! bench_avail [--quick] [--seed N] [--out PATH] [--tier paper2019|mid|modern]
//!             [--threads N]
//! ```
//!
//! `--threads N` pins the shard-worker budget (recorded as `"threads"`
//! in every JSON line alongside `"cores"`); histogram merging is exact,
//! so output is bit-identical at any setting.
//!
//! Three engines are compared on the same workloads; all must produce
//! bit-identical curves:
//!
//! 1. **seed** — the pre-PR evaluator, kept verbatim here: per-user
//!    `Vec<Vec<u32>>` holder lists and one full population scan per
//!    strategy. This is the `naive_seconds` baseline.
//! 2. **reference** — `fediscope_replication::eval::availability_curve`,
//!    the same per-strategy algorithm reading the flat CSR `ContentView`
//!    (kept in-crate as the differential-test baseline); recorded as
//!    `naive_csr_seconds`.
//! 3. **batched** — [`AvailabilitySweep`]: every strategy folded out of
//!    one pass over the removed instances' resident users.
//!
//! Without `--tier`, a 100k-user world runs Fig. 16's multi-n workload
//! (No-Rep + S-Rep + Random{1,2,3,4,7,9} under top-instance removal); the
//! batched engine must beat the seed path by ≥5x. With `--tier`, the
//! named [`ScaleTier`] world (the `modern` tier stands up 30k instances
//! and a million users) records both the Fig. 15 (instance + AS removal)
//! and Fig. 16 workloads as that tier's datapoint.
//!
//! `--quick` shrinks the non-tier scale and timing repetitions for CI
//! smoke runs; the identity check and the ≥5x floor are enforced in every
//! mode (the speedup is structural — eight scans collapse into one — so
//! it holds at smoke scale too).

use fediscope_core::content::FIG16_NS as NS;
use fediscope_core::{Metric, Observatory};
use fediscope_graph::par;
use fediscope_replication::eval::{
    availability_curve, evaluate_plans_fused, singleton_groups, AvailabilityPoint,
    AvailabilitySweep, RemovalPlan, Strategy,
};
use fediscope_worldgen::{Generator, ScaleTier, WorldConfig};
use std::time::Instant;

/// Render the replica-count list as a JSON array literal.
fn ns_json() -> String {
    let items: Vec<String> = NS.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(","))
}

/// The seed evaluator, preserved verbatim as the pre-PR baseline: nested
/// per-user holder `Vec`s and one full scan per strategy. Only the
/// `ContentView` plumbing was renamed; every loop and float expression is
/// the seed's, so its curves pin the baseline semantics exactly.
mod seed {
    use super::{AvailabilityPoint, Observatory, Strategy};

    pub struct SeedView {
        pub n_instances: usize,
        pub home: Vec<u32>,
        pub toots: Vec<u64>,
        pub follower_instances: Vec<Vec<u32>>,
        pub total_toots: u64,
    }

    impl SeedView {
        pub fn from_obs(obs: &Observatory) -> Self {
            let world = &obs.world;
            let n_users = world.users.len();
            let home: Vec<u32> = world.users.iter().map(|u| u.instance.0).collect();
            let toots: Vec<u64> = world.users.iter().map(|u| u.toot_count as u64).collect();
            let mut follower_instances: Vec<Vec<u32>> = vec![Vec::new(); n_users];
            for &(a, b) in &world.follows {
                follower_instances[b.index()].push(home[a.index()]);
            }
            for list in &mut follower_instances {
                list.sort_unstable();
                list.dedup();
            }
            let total_toots = toots.iter().sum();
            SeedView {
                n_instances: world.instances.len(),
                home,
                toots,
                follower_instances,
                total_toots,
            }
        }

        fn n_users(&self) -> usize {
            self.home.len()
        }
    }

    fn removal_steps(n_instances: usize, groups: &[Vec<u32>]) -> Vec<usize> {
        let mut step = vec![usize::MAX; n_instances];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                if step[m as usize] == usize::MAX {
                    step[m as usize] = g + 1;
                }
            }
        }
        step
    }

    fn fold_availability(death: &[f64], steps: usize, total: f64) -> Vec<AvailabilityPoint> {
        let mut lost = 0.0;
        let mut out = Vec::with_capacity(steps + 1);
        out.push(AvailabilityPoint {
            removed: 0,
            availability: 1.0,
        });
        for (k, &dead) in death.iter().enumerate().take(steps + 1).skip(1) {
            lost += dead;
            out.push(AvailabilityPoint {
                removed: k,
                availability: 1.0 - lost / total,
            });
        }
        out
    }

    pub fn availability_curve(
        view: &SeedView,
        strategy: Strategy,
        groups: &[Vec<u32>],
    ) -> Vec<AvailabilityPoint> {
        match strategy {
            Strategy::Random { n } => random_expectation_curve(view, n, groups),
            _ => exact_curve(view, strategy, groups),
        }
    }

    fn exact_curve(
        view: &SeedView,
        strategy: Strategy,
        groups: &[Vec<u32>],
    ) -> Vec<AvailabilityPoint> {
        let steps = removal_steps(view.n_instances, groups);
        let mut death_toots = vec![0.0f64; groups.len() + 2];
        for u in 0..view.n_users() {
            let home_step = steps[view.home[u] as usize];
            let death = match strategy {
                Strategy::NoReplication => home_step,
                Strategy::Subscription => {
                    let mut death = home_step;
                    for &f in &view.follower_instances[u] {
                        death = death.max(steps[f as usize]);
                    }
                    death
                }
                Strategy::Random { .. } => unreachable!("handled elsewhere"),
            };
            if death != usize::MAX && death <= groups.len() {
                death_toots[death] += view.toots[u] as f64;
            }
        }
        let total = view.total_toots.max(1) as f64;
        fold_availability(&death_toots, groups.len(), total)
    }

    fn random_expectation_curve(
        view: &SeedView,
        n: usize,
        groups: &[Vec<u32>],
    ) -> Vec<AvailabilityPoint> {
        let steps = removal_steps(view.n_instances, groups);
        let mut home_death_toots = vec![0u64; groups.len() + 2];
        for u in 0..view.n_users() {
            let s = steps[view.home[u] as usize];
            if s != usize::MAX && s <= groups.len() {
                home_death_toots[s] += view.toots[u];
            }
        }
        let total = view.total_toots.max(1) as f64;
        let i_total = view.n_instances;
        let mut removed_count = 0usize;
        let mut homeless = 0u64;
        let mut out = Vec::with_capacity(groups.len() + 1);
        out.push(AvailabilityPoint {
            removed: 0,
            availability: 1.0,
        });
        for k in 1..=groups.len() {
            removed_count += groups[k - 1].len();
            homeless += home_death_toots[k];
            let mut p_all_gone = 1.0f64;
            for i in 0..n {
                let num = removed_count.saturating_sub(i) as f64;
                let den = (i_total - i).max(1) as f64;
                p_all_gone *= (num / den).clamp(0.0, 1.0);
            }
            let expected_lost = homeless as f64 * p_all_gone;
            out.push(AvailabilityPoint {
                removed: k,
                availability: 1.0 - expected_lost / total,
            });
        }
        out
    }
}

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    tier: Option<ScaleTier>,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_avail.json".to_string(),
        tier: None,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--tier" => {
                let name = it.next().expect("--tier needs a name");
                a.tier = Some(
                    ScaleTier::parse(&name)
                        .unwrap_or_else(|| panic!("unknown tier {name:?} (paper2019|mid|modern)")),
                );
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
                assert!(t >= 1, "--threads must be at least 1");
                a.threads = Some(t);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_avail [--quick] [--seed N] [--out PATH] \
                     [--tier paper2019|mid|modern] [--threads N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

/// Best-of-`trials` wall time of `f`, in seconds.
fn time(trials: usize, f: &dyn Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// All curves of a workload, in a fixed comparison order.
type Curves = Vec<Vec<AvailabilityPoint>>;

/// Fig. 16's strategy list: No-Rep, S-Rep, then every Random{n}.
fn fig16_strategies() -> Vec<Strategy> {
    let mut s = vec![Strategy::NoReplication, Strategy::Subscription];
    s.extend(NS.iter().map(|&n| Strategy::Random { n }));
    s
}

/// Seed path for Fig. 16: materialise singleton groups, then one full
/// per-strategy pass over the nested-Vec view.
fn seed_fig16(view: &seed::SeedView, order: &[u32]) -> Curves {
    let groups = singleton_groups(order);
    fig16_strategies()
        .into_iter()
        .map(|s| seed::availability_curve(view, s, &groups))
        .collect()
}

/// The kept CSR reference for Fig. 16: same per-strategy algorithm over
/// the flat `ContentView`.
fn csr_fig16(obs: &Observatory, order: &[u32]) -> Curves {
    let groups = singleton_groups(order);
    fig16_strategies()
        .into_iter()
        .map(|s| availability_curve(obs.content_view(), s, &groups))
        .collect()
}

/// The batched path for Fig. 16: every strategy out of one pass.
fn batched_fig16(obs: &Observatory, order: &[u32]) -> Curves {
    let batch = AvailabilitySweep::singletons(obs.content_view(), order).evaluate(&NS);
    let mut out = Vec::with_capacity(NS.len() + 2);
    out.push(batch.none);
    out.push(batch.subscription);
    out.extend(batch.random.into_iter().map(|(_, c)| c));
    out
}

/// Seed path for Fig. 15: four per-strategy passes over two orders.
fn seed_fig15(view: &seed::SeedView, order: &[u32], as_groups: &[Vec<u32>]) -> Curves {
    let inst_groups = singleton_groups(order);
    vec![
        seed::availability_curve(view, Strategy::NoReplication, &inst_groups),
        seed::availability_curve(view, Strategy::Subscription, &inst_groups),
        seed::availability_curve(view, Strategy::NoReplication, as_groups),
        seed::availability_curve(view, Strategy::Subscription, as_groups),
    ]
}

/// CSR reference for Fig. 15.
fn csr_fig15(obs: &Observatory, order: &[u32], as_groups: &[Vec<u32>]) -> Curves {
    let view = obs.content_view();
    let inst_groups = singleton_groups(order);
    vec![
        availability_curve(view, Strategy::NoReplication, &inst_groups),
        availability_curve(view, Strategy::Subscription, &inst_groups),
        availability_curve(view, Strategy::NoReplication, as_groups),
        availability_curve(view, Strategy::Subscription, as_groups),
    ]
}

/// Batched path for Fig. 15: both plans compiled up front, one fused
/// walk over the union of their removed instances' resident segments.
fn batched_fig15(obs: &Observatory, order: &[u32], as_groups: &[Vec<u32>]) -> Curves {
    let view = obs.content_view();
    let inst_plan = RemovalPlan::from_order(view.n_instances, order);
    let as_plan = RemovalPlan::from_groups(view.n_instances, as_groups);
    let (inst, by_as) = evaluate_plans_fused(view, &inst_plan, &as_plan, &[]);
    vec![inst.none, inst.subscription, by_as.none, by_as.subscription]
}

struct Comparison {
    seed_s: f64,
    csr_s: f64,
    batched_s: f64,
    speedup: f64,
    csr_speedup: f64,
    identical: bool,
}

/// Compare and time the three engines on one workload. Divergence is
/// *recorded* (`identical_output: false`, which CI greps for) rather than
/// panicking; main exits non-zero afterwards.
fn compare(
    label: &str,
    trials: usize,
    seed_f: &dyn Fn() -> Curves,
    csr_f: &dyn Fn() -> Curves,
    batched_f: &dyn Fn() -> Curves,
) -> Comparison {
    let expect = seed_f();
    let identical = expect == csr_f() && expect == batched_f();
    if identical {
        eprintln!("{label}: identity check passed (seed == CSR reference == batched)");
    } else {
        eprintln!("{label}: FAIL — engines diverged");
    }
    let batched_s = time(trials, &|| {
        std::hint::black_box(batched_f());
    });
    let csr_s = time(trials, &|| {
        std::hint::black_box(csr_f());
    });
    let seed_s = time(trials, &|| {
        std::hint::black_box(seed_f());
    });
    let speedup = seed_s / batched_s;
    let csr_speedup = csr_s / batched_s;
    eprintln!(
        "{label}: batched {batched_s:.4}s, CSR naive {csr_s:.4}s ({csr_speedup:.1}x), \
         seed naive {seed_s:.4}s ({speedup:.1}x)"
    );
    Comparison {
        seed_s,
        csr_s,
        batched_s,
        speedup,
        csr_speedup,
        identical,
    }
}

/// Append one JSON line to the trajectory file (and echo it to stdout).
/// Delegates to [`fediscope_bench::record_line`], which rewrites the file
/// via temp-then-rename so a mid-record kill can't tear the history.
fn record(out: &str, json: &str) {
    fediscope_bench::record_line(out, json);
}

fn main() {
    let args = parse_args();
    par::set_thread_override(args.threads);
    let threads = par::thread_budget();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("shard workers: {threads} (machine offers {cores})");
    let mode = if args.quick { "quick" } else { "full" };
    // Best-of-9 in every mode: the minimum is robust to scheduler noise on
    // shared CI runners, and the workloads are at most tens of ms.
    let trials = 9;

    let (obs, gen_s, tier_name) = match args.tier {
        Some(tier) => {
            eprintln!(
                "generating {tier} tier world ({} instances, {} users) …",
                tier.n_instances(),
                tier.n_users()
            );
            let t0 = Instant::now();
            let obs = Observatory::new(Generator::generate_world(WorldConfig::for_tier(
                tier, args.seed,
            )));
            (obs, t0.elapsed().as_secs_f64(), Some(tier.name()))
        }
        None => {
            let n_users = if args.quick { 20_000 } else { 100_000 };
            eprintln!("generating {n_users}-user world via worldgen …");
            let mut cfg = WorldConfig::paper_scaled(args.seed);
            cfg.n_users = n_users;
            cfg.twitter_users = 1_000;
            let t0 = Instant::now();
            let obs = Observatory::new(Generator::generate_world(cfg));
            (obs, t0.elapsed().as_secs_f64(), None)
        }
    };
    let view = obs.content_view();
    let seed_view = seed::SeedView::from_obs(&obs);
    eprintln!(
        "world ready in {gen_s:.1}s: {} users, {} instances, {} holder entries",
        view.n_users(),
        view.n_instances,
        view.holder_entries()
    );

    let full_order = obs.instance_order(Metric::Toots);
    let mut fail = false;

    match tier_name {
        Some(tier_str) => {
            let tier = args.tier.unwrap();
            let f16_order = &full_order[..tier.fig16_max_instances().min(full_order.len())];
            let fig16 = compare(
                "fig16 multi-n",
                trials,
                &|| seed_fig16(&seed_view, f16_order),
                &|| csr_fig16(&obs, f16_order),
                &|| batched_fig16(&obs, f16_order),
            );
            let f15_order = &full_order[..tier.fig15_max_instances().min(full_order.len())];
            let mut as_groups = obs.as_groups(Metric::Toots);
            as_groups.truncate(tier.fig15_max_ases());
            let fig15 = compare(
                "fig15 inst+AS",
                trials,
                &|| seed_fig15(&seed_view, f15_order, &as_groups),
                &|| csr_fig15(&obs, f15_order, &as_groups),
                &|| batched_fig15(&obs, f15_order, &as_groups),
            );
            record(
                &args.out,
                &format!(
                    "{{\"bench\":\"avail_tier\",\"tier\":\"{tier_str}\",\"mode\":\"{mode}\",\
                     \"threads\":{threads},\"cores\":{cores},\
                     \"users\":{users},\"instances\":{inst},\"holder_entries\":{he},\
                     \"seed\":{seed},\"gen_seconds\":{gen_s:.3},\
                     \"fig16_removals\":{r16},\"fig16_ns\":{ns},\
                     \"fig16_naive_seconds\":{n16:.6},\"fig16_naive_csr_seconds\":{c16:.6},\
                     \"fig16_batched_seconds\":{b16:.6},\"fig16_speedup\":{s16:.2},\
                     \"fig16_csr_speedup\":{cs16:.2},\
                     \"fig15_removals\":{r15},\"fig15_as_groups\":{g15},\
                     \"fig15_naive_seconds\":{n15:.6},\"fig15_naive_csr_seconds\":{c15:.6},\
                     \"fig15_batched_seconds\":{b15:.6},\"fig15_speedup\":{s15:.2},\
                     \"fig15_csr_speedup\":{cs15:.2},\"identical_output\":{ident}}}",
                    users = view.n_users(),
                    inst = view.n_instances,
                    he = view.holder_entries(),
                    seed = args.seed,
                    ns = ns_json(),
                    r16 = f16_order.len(),
                    n16 = fig16.seed_s,
                    c16 = fig16.csr_s,
                    b16 = fig16.batched_s,
                    s16 = fig16.speedup,
                    cs16 = fig16.csr_speedup,
                    r15 = f15_order.len(),
                    g15 = as_groups.len(),
                    n15 = fig15.seed_s,
                    c15 = fig15.csr_s,
                    b15 = fig15.batched_s,
                    s15 = fig15.speedup,
                    cs15 = fig15.csr_speedup,
                    ident = fig16.identical && fig15.identical,
                ),
            );
            for (label, cmp) in [("fig16", &fig16), ("fig15", &fig15)] {
                if !cmp.identical {
                    eprintln!("FAIL: {label} engines diverged");
                    fail = true;
                }
            }
            // the acceptance floor rides the multi-n workload
            if fig16.speedup < 5.0 {
                eprintln!(
                    "FAIL: fig16 speedup {:.1}x below the 5x acceptance floor",
                    fig16.speedup
                );
                fail = true;
            }
        }
        None => {
            let k = 25.min(full_order.len());
            let order = &full_order[..k];
            let fig16 = compare(
                "fig16 multi-n",
                trials,
                &|| seed_fig16(&seed_view, order),
                &|| csr_fig16(&obs, order),
                &|| batched_fig16(&obs, order),
            );
            record(
                &args.out,
                &format!(
                    "{{\"bench\":\"fig16_multi_n\",\"mode\":\"{mode}\",\
                     \"threads\":{threads},\"cores\":{cores},\
                     \"users\":{users},\"instances\":{inst},\"holder_entries\":{he},\
                     \"removals\":{k},\"ns\":{ns},\"seed\":{seed},\
                     \"naive_seconds\":{n:.6},\"naive_csr_seconds\":{c:.6},\
                     \"batched_seconds\":{b:.6},\"speedup\":{s:.2},\
                     \"csr_speedup\":{cs:.2},\"identical_output\":{ident}}}",
                    users = view.n_users(),
                    inst = view.n_instances,
                    he = view.holder_entries(),
                    seed = args.seed,
                    ns = ns_json(),
                    n = fig16.seed_s,
                    c = fig16.csr_s,
                    b = fig16.batched_s,
                    s = fig16.speedup,
                    cs = fig16.csr_speedup,
                    ident = fig16.identical,
                ),
            );
            if !fig16.identical {
                eprintln!("FAIL: engines diverged");
                fail = true;
            }
            if fig16.speedup < 5.0 {
                eprintln!(
                    "FAIL: speedup {:.1}x below the 5x acceptance floor",
                    fig16.speedup
                );
                fail = true;
            }
        }
    }

    if fail {
        std::process::exit(1);
    }
}
