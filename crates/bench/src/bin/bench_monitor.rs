//! `bench_monitor` — pin the columnar §4 telemetry engine's speedup and
//! record trajectory points in `BENCH_monitor.json` (one JSON object per
//! line, appended — the file is a history, not a snapshot).
//!
//! ```text
//! bench_monitor [--quick] [--seed N] [--out PATH]
//!               [--tier paper2019|mid|modern] [--threads N]
//! ```
//!
//! Two engines run the **combined §4 workload** — Fig. 7 (lifetime
//! downtime + exposure), Fig. 8 (full-resolution daily downtime +
//! correlation), Fig. 10 (outage durations + worst-day blackout), and
//! Table 1 (AS co-failures) — and must produce bit-identical output:
//!
//! 1. **naive** — `fediscope_monitor::naive_section4`: the kept
//!    per-schedule reference, five separate walks over the
//!    `Vec<AvailabilitySchedule>` list, including the seed
//!    `O(days · instances · outages)` whole-day blackout rescan;
//! 2. **columnar** — `MonitorSweep` over the `OutageArena`: one sharded
//!    pass over flat interval columns, integer accumulators merged in
//!    shard order (`--threads N` pins the shard budget; output is
//!    identical at any setting).
//!
//! With `--tier`, the named [`ScaleTier`] world runs with the paper's
//! Table 1 threshold; the `modern` tier (30k instances × the 15-month
//! 5-minute-poll window) must clear the **≥5x** acceptance floor over the
//! naive path. Without `--tier`, a paper-2019-scale world runs (shrunk
//! under `--quick` for CI smoke runs; identity is enforced in every mode).

use fediscope_graph::par;
use fediscope_model::schedule::OutageArena;
use fediscope_monitor::{naive_section4, MonitorSweep, SweepConfig};
use fediscope_worldgen::{Generator, ScaleTier, WorldConfig};
use std::time::Instant;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    tier: Option<ScaleTier>,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_monitor.json".to_string(),
        tier: None,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--tier" => {
                let name = it.next().expect("--tier needs a name");
                a.tier = Some(
                    ScaleTier::parse(&name)
                        .unwrap_or_else(|| panic!("unknown tier {name:?} (paper2019|mid|modern)")),
                );
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
                assert!(t >= 1, "--threads must be at least 1");
                a.threads = Some(t);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_monitor [--quick] [--seed N] [--out PATH] \
                     [--tier paper2019|mid|modern] [--threads N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

/// Best-of-`trials` wall time of `f`, in seconds.
fn time(trials: usize, f: &dyn Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Append one JSON line to the trajectory file (and echo it to stdout).
/// Delegates to [`fediscope_bench::record_line`], which rewrites the file
/// via temp-then-rename so a mid-record kill can't tear the history.
fn record(out: &str, json: &str) {
    fediscope_bench::record_line(out, json);
}

fn main() {
    let args = parse_args();
    par::set_thread_override(args.threads);
    let threads = par::thread_budget();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("shard workers: {threads} (machine offers {cores})");
    let mode = if args.quick { "quick" } else { "full" };
    let trials = if args.quick { 3 } else { 5 };

    let (cfg, tier_name) = match args.tier {
        Some(tier) => (WorldConfig::for_tier(tier, args.seed), Some(tier.name())),
        None => {
            let mut cfg = if args.quick {
                WorldConfig::small(args.seed)
            } else {
                WorldConfig::paper_scaled(args.seed)
            };
            // §4 never touches the follower graph; a lean user table keeps
            // world generation out of the measurement's way.
            cfg.n_users = cfg.n_users.min(30_000);
            cfg.twitter_users = 1_000;
            (cfg, None)
        }
    };
    let min_as_instances = match args.tier {
        Some(tier) => tier.table1_min_instances(),
        None => {
            if cfg.n_instances >= 2000 {
                8
            } else {
                3
            }
        }
    };
    eprintln!(
        "generating world ({} instances, {} users) …",
        cfg.n_instances, cfg.n_users
    );
    let t0 = Instant::now();
    let world = Generator::generate_world(cfg);
    let gen_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let arena = OutageArena::from_schedules(&world.schedules);
    let arena_build_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "world ready in {gen_s:.1}s: {} instances, {} outage intervals \
         (arena built in {arena_build_s:.3}s)",
        arena.len(),
        arena.n_outages()
    );

    let sweep_cfg = SweepConfig {
        day_stride: 1,
        min_as_instances,
    };
    let naive_f =
        || naive_section4(&world.instances, &world.schedules, &world.providers, &sweep_cfg);
    let columnar_f = || {
        MonitorSweep::new(&arena, &world.instances)
            .with_shards(threads)
            .run(&world.providers, &sweep_cfg)
    };

    if std::env::var_os("BENCH_MONITOR_BREAKDOWN").is_some() {
        use fediscope_monitor::asn::{as_failure_table, as_failure_table_arena};
        use fediscope_monitor::daily::{daily_downtime, size_downtime_correlation};
        use fediscope_monitor::downtime::{downtime_report, failure_exposure};
        use fediscope_monitor::outages::{outage_durations, worst_day_blackout};
        let w = &world;
        let t = |label: &str, f: &dyn Fn()| {
            eprintln!("  {label}: {:.4}s", time(trials, f));
        };
        eprintln!("naive breakdown:");
        t("downtime_report", &|| {
            std::hint::black_box(downtime_report(&w.schedules));
        });
        t("failure_exposure", &|| {
            std::hint::black_box(failure_exposure(&w.instances, &w.schedules));
        });
        t("daily_downtime", &|| {
            std::hint::black_box(daily_downtime(&w.instances, &w.schedules, 1));
        });
        t("size_correlation", &|| {
            std::hint::black_box(size_downtime_correlation(&w.instances, &w.schedules));
        });
        t("outage_durations", &|| {
            std::hint::black_box(outage_durations(&w.instances, &w.schedules));
        });
        t("worst_day_blackout", &|| {
            std::hint::black_box(worst_day_blackout(&w.instances, &w.schedules));
        });
        t("as_failure_table", &|| {
            std::hint::black_box(as_failure_table(
                &w.instances,
                &w.schedules,
                &w.providers,
                min_as_instances,
            ));
        });
        eprintln!("columnar breakdown:");
        t("as_failure_table_arena", &|| {
            std::hint::black_box(as_failure_table_arena(
                &w.instances,
                &arena,
                &w.providers,
                min_as_instances,
            ));
        });
        use fediscope_monitor::daily::{daily_downtime_arena, size_downtime_correlation_arena};
        use fediscope_monitor::downtime::downtime_report_arena;
        use fediscope_monitor::outages::{outage_durations_arena, worst_day_blackout_arena};
        t("downtime_report_arena", &|| {
            std::hint::black_box(downtime_report_arena(&arena));
        });
        t("daily_downtime_arena", &|| {
            std::hint::black_box(daily_downtime_arena(&w.instances, &arena, 1));
        });
        t("size_correlation_arena", &|| {
            std::hint::black_box(size_downtime_correlation_arena(&w.instances, &arena));
        });
        t("outage_durations_arena", &|| {
            std::hint::black_box(outage_durations_arena(&w.instances, &arena));
        });
        t("worst_day_blackout_arena", &|| {
            std::hint::black_box(worst_day_blackout_arena(&w.instances, &arena));
        });
    }

    let expect = naive_f();
    let identical = columnar_f() == expect;
    if identical {
        eprintln!("identity check passed (naive == columnar at {threads} shards)");
    } else {
        eprintln!("FAIL — engines diverged");
    }

    let columnar_s = time(trials, &|| {
        std::hint::black_box(columnar_f());
    });
    let naive_s = time(trials, &|| {
        std::hint::black_box(naive_f());
    });
    let speedup = naive_s / columnar_s;
    eprintln!(
        "section4 combined: columnar {columnar_s:.4}s, naive {naive_s:.4}s ({speedup:.1}x)"
    );

    record(
        &args.out,
        &format!(
            "{{\"bench\":\"monitor_section4\",\"tier\":{tier},\"mode\":\"{mode}\",\
             \"threads\":{threads},\"cores\":{cores},\
             \"instances\":{inst},\"outages\":{outages},\"window_days\":472,\
             \"min_as_instances\":{min_as},\"seed\":{seed},\
             \"gen_seconds\":{gen_s:.3},\"arena_build_seconds\":{arena_build_s:.6},\
             \"naive_seconds\":{naive_s:.6},\"columnar_seconds\":{columnar_s:.6},\
             \"speedup\":{speedup:.2},\"identical_output\":{identical}}}",
            tier = tier_name
                .map(|t| format!("\"{t}\""))
                .unwrap_or_else(|| "null".to_string()),
            inst = arena.len(),
            outages = arena.n_outages(),
            min_as = min_as_instances,
            seed = args.seed,
        ),
    );

    let mut fail = false;
    if !identical {
        eprintln!("FAIL: columnar sweep diverged from the naive reference");
        fail = true;
    }
    // the ≥5x acceptance floor rides the modern tier (the structural win —
    // the blackout rescan collapsing to O(outages + days) — needs enough
    // days × instances to dominate; smaller quick runs only record).
    if args.tier == Some(ScaleTier::Modern) && speedup < 5.0 {
        eprintln!("FAIL: modern-tier speedup {speedup:.1}x below the 5x acceptance floor");
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
}
