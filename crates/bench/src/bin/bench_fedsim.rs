//! `bench_fedsim` — drive the federation delivery simulator at scale and
//! record trajectory points in `BENCH_fedsim.json` (one JSON object per
//! line, appended — the file is a history, not a snapshot).
//!
//! ```text
//! bench_fedsim [--quick] [--seed N] [--out PATH]
//!              [--tier paper2019|mid|modern] [--threads N]
//! ```
//!
//! Two gates ride every run:
//!
//! 1. **`identical_output`** — the clean run at 1 shard, at `--threads`
//!    shards, and a fresh replay at `--threads` shards must produce
//!    bit-identical reports, per-tick series, per-instance loads, and
//!    `event_hash` (the ISSUE-7 determinism contract).
//! 2. **`overload_degrades_gracefully`** — the tier's headline overlay
//!    (the top user-hosting ASes dark for the window) must *degrade*
//!    the federation, not melt it: deliveries are refused while dark,
//!    refused mail retries, redelivery recovers traffic after the
//!    outage ends, and the conservation identity holds — every
//!    fanned-out message is delivered, dropped, or still accounted for.
//!
//! With `--tier`, the named [`ScaleTier`] world runs with the tier's
//! horizon/outage knobs. Without `--tier`, a small world runs a full
//! day-scale horizon (shrunk under `--quick` for CI smoke runs; both
//! gates are enforced in every mode).

use fediscope_simnet::fedsim::{overlay, FanoutArena, FedSim, SimRun};
use fediscope_simnet::{FedSimConfig, OverlaySpec};
use fediscope_worldgen::{toots, Generator, ScaleTier, WorldConfig};
use std::time::Instant;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    tier: Option<ScaleTier>,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_fedsim.json".to_string(),
        tier: None,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--tier" => {
                let name = it.next().expect("--tier needs a name");
                a.tier = Some(
                    ScaleTier::parse(&name)
                        .unwrap_or_else(|| panic!("unknown tier {name:?} (paper2019|mid|modern)")),
                );
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
                assert!(t >= 1, "--threads must be at least 1");
                a.threads = Some(t);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_fedsim [--quick] [--seed N] [--out PATH] \
                     [--tier paper2019|mid|modern] [--threads N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

/// Append one JSON line to the trajectory file (and echo it to stdout).
/// Delegates to [`fediscope_bench::record_line`], which rewrites the file
/// via temp-then-rename so a mid-record kill can't tear the history.
fn record(out: &str, json: &str) {
    fediscope_bench::record_line(out, json);
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let threads = args.threads.unwrap_or_else(|| cores.min(8)).max(1);
    eprintln!("shard workers: {threads} (machine offers {cores})");
    let mode = if args.quick { "quick" } else { "full" };

    // World + toot stream + simulator knobs per mode.
    let (wcfg, tier_name, horizon, rate_scale) = match args.tier {
        Some(tier) => (
            WorldConfig::for_tier(tier, args.seed),
            Some(tier.name()),
            tier.fedsim_horizon_epochs(),
            tier.fedsim_rate_scale(),
        ),
        None if args.quick => (WorldConfig::tiny(args.seed), None, 48, 8.0),
        None => (WorldConfig::small(args.seed), None, 288, 4.0),
    };
    let mut clean_cfg = match args.tier {
        Some(tier) => FedSimConfig::for_tier(tier, args.seed),
        None => {
            let mut c = FedSimConfig::new(args.seed);
            c.drain_epochs = 2 * horizon;
            c
        }
    };
    clean_cfg.shards = threads as u32;
    let outage_cfg = match args.tier {
        Some(tier) => clean_cfg.clone().with_top_as_outage(tier),
        None => {
            let mut c = clean_cfg.clone();
            c.overlay = OverlaySpec::TopAsOutage(3, horizon / 4, horizon / 2);
            c
        }
    };
    let OverlaySpec::TopAsOutage(outage_ases, outage_start, outage_end) = outage_cfg.overlay
    else {
        unreachable!("bench overlay is always a top-AS outage");
    };

    eprintln!(
        "generating world ({} instances, {} users) …",
        wcfg.n_instances, wcfg.n_users
    );
    let t0 = Instant::now();
    let world = Generator::generate_world(wcfg.clone());
    let gen_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let fanout = FanoutArena::from_world(&world);
    let toot_arena = toots::generate(&wcfg, &world.users, horizon, rate_scale);
    let build_s = t0.elapsed().as_secs_f64();
    let dest_users: Vec<u32> = world.instances.iter().map(|i| i.user_count).collect();
    eprintln!(
        "world ready in {gen_s:.1}s: {} instances, {} delivery pairs, \
         {} toots over {horizon} epochs (arenas built in {build_s:.3}s)",
        world.instances.len(),
        fanout.n_pairs(),
        toot_arena.n_toots()
    );

    let run = |cfg: &FedSimConfig| -> SimRun {
        let total = toot_arena.horizon() + cfg.drain_epochs;
        let arena = overlay::build(&cfg.overlay, &world.instances, total);
        FedSim::new(cfg.clone(), &fanout, &toot_arena, &dest_users, arena).run()
    };

    // Gate 1 — determinism: serial vs sharded vs sharded replay.
    let mut serial_cfg = clean_cfg.clone();
    serial_cfg.shards = 1;
    let t0 = Instant::now();
    let serial = run(&serial_cfg);
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let clean = run(&clean_cfg);
    let sharded_s = t0.elapsed().as_secs_f64();
    let replay = run(&clean_cfg);
    let identical = serial == clean && clean == replay;
    if identical {
        eprintln!(
            "identity check passed (1 shard == {threads} shards == replay, \
             event_hash {:#018x})",
            clean.report.event_hash
        );
    } else {
        eprintln!("FAIL — shard counts or replays diverged");
    }

    // Gate 2 — the outage overlay degrades gracefully.
    let t0 = Instant::now();
    let hit = run(&outage_cfg);
    let outage_s = t0.elapsed().as_secs_f64();
    let post_outage_delivered: u64 = hit
        .series
        .iter()
        .skip(outage_end as usize)
        .map(|s| s.delivered as u64)
        .sum();
    let peak_backlog = hit.series.iter().map(|s| s.backlog).max().unwrap_or(0);
    // Note: total redeliveries are NOT compared against the clean run —
    // authors on dark instances post nothing, so the outage also
    // suppresses fan-out (and with it the clean run's backpressure
    // retries). Grace is the recovery signal itself: refused mail
    // exists, it retried, suspensions lifted, traffic flowed again.
    let graceful = hit.report.conserved()
        && hit.report.rejected_down > 0
        && hit.report.redelivery_attempts > 0
        && hit.report.recovered_suspensions > 0
        && post_outage_delivered > 0;
    if graceful {
        eprintln!(
            "degradation check passed: {} refused while dark, {} redeliveries, \
             {} delivered after the outage lifted, peak backlog {}",
            hit.report.rejected_down,
            hit.report.redelivery_attempts,
            post_outage_delivered,
            peak_backlog
        );
    } else {
        eprintln!("FAIL — outage run lost mail or never recovered");
    }
    eprintln!(
        "timings: serial {serial_s:.3}s, {threads}-shard {sharded_s:.3}s \
         ({:.2}x), outage run {outage_s:.3}s",
        serial_s / sharded_s
    );

    let r = &hit.report;
    record(
        &args.out,
        &format!(
            "{{\"bench\":\"fedsim_delivery\",\"tier\":{tier},\"mode\":\"{mode}\",\
             \"shards\":{threads},\"cores\":{cores},\"seed\":{seed},\
             \"instances\":{inst},\"users\":{users},\"pairs\":{pairs},\
             \"toots\":{toots},\"horizon\":{horizon},\
             \"outage_ases\":{outage_ases},\"outage_start\":{outage_start},\
             \"outage_end\":{outage_end},\
             \"fanned_out\":{fanned},\"delivered_prompt\":{dp},\
             \"delivered_delayed\":{dd},\"dropped\":{dropped},\
             \"undeliverable\":{undel},\"suspended_undeliverable\":{susp_undel},\
             \"rejected_full\":{rfull},\"rejected_down\":{rdown},\
             \"redelivery_attempts\":{redel},\"suspensions\":{susp},\
             \"recovered_suspensions\":{rec},\"amplification\":{amp:.4},\
             \"mean_latency\":{lat:.4},\"peak_backlog\":{peak_backlog},\
             \"post_outage_delivered\":{post_outage_delivered},\
             \"time_to_drain\":{ttd},\"drained\":{drained},\
             \"event_hash\":{hash},\"clean_event_hash\":{chash},\
             \"gen_seconds\":{gen_s:.3},\"serial_seconds\":{serial_s:.4},\
             \"sharded_seconds\":{sharded_s:.4},\"outage_seconds\":{outage_s:.4},\
             \"conserved\":{conserved},\"identical_output\":{identical},\
             \"overload_degrades_gracefully\":{graceful}}}",
            tier = tier_name
                .map(|t| format!("\"{t}\""))
                .unwrap_or_else(|| "null".to_string()),
            seed = args.seed,
            inst = world.instances.len(),
            users = world.users.len(),
            pairs = fanout.n_pairs(),
            toots = toot_arena.n_toots(),
            fanned = r.fanned_out,
            dp = r.delivered_prompt,
            dd = r.delivered_delayed,
            dropped = r.dropped,
            undel = r.undeliverable,
            susp_undel = r.suspended_undeliverable,
            rfull = r.rejected_full,
            rdown = r.rejected_down,
            redel = r.redelivery_attempts,
            susp = r.suspensions,
            rec = r.recovered_suspensions,
            amp = r.amplification,
            lat = r.mean_latency,
            ttd = r.time_to_drain,
            drained = r.drained,
            hash = r.event_hash,
            chash = clean.report.event_hash,
            conserved = r.conserved(),
        ),
    );

    let mut fail = false;
    if !identical {
        eprintln!("FAIL: the transcript is shard-count- or replay-dependent");
        fail = true;
    }
    if !graceful {
        eprintln!("FAIL: the outage overlay did not degrade gracefully");
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
}
