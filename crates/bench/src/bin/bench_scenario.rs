//! `bench_scenario` — pin the correlated-failure scenario engine and
//! record the replication strategy frontier in `BENCH_scenario.json`
//! (one JSON object per line, appended — a history, not a snapshot).
//!
//! ```text
//! bench_scenario [--quick] [--seed N] [--out PATH]
//!                [--tier paper2019|mid|modern] [--threads N]
//! ```
//!
//! Two engines evaluate the same scenario × strategy product grid and
//! must produce bit-identical frontiers:
//!
//! 1. **naive** — `fediscope_replication::scenario::naive_grid`: one full
//!    pass over the user table per grid cell, with its own step-table
//!    computation from the raw removal groups.
//! 2. **sweep** — `evaluate_grid`: one sharded pass over the resident
//!    arena; every author is placed once per strategy and scored against
//!    every scenario, with integer histograms merged in shard order.
//!
//! The workload is the tier's default scenario set (AS/hoster shared
//! fate, region wave, cert-lapse cascade, churn with rebirth) × the
//! default strategy frontier (No-Rep, S-Rep, Random(2), k-of-n(2/4),
//! pop-weighted(1..4), follower-local(3)); the recorded JSON line carries
//! the full frontier (availability + storage cost per cell) alongside
//! the timings and the `identical_output` verdict. `--threads N` pins the
//! shard-worker budget — the sweep must stay bit-identical at any value.

use fediscope_core::scenarios::{frontier_strategies, tier_specs};
use fediscope_core::Observatory;
use fediscope_graph::par;
use fediscope_replication::scenario::{
    compile, evaluate_grid, naive_grid, CompiledScenario, FrontierCell, Grid, ScenarioStrategy,
    ScenarioWorld,
};
use fediscope_worldgen::{streams, Generator, ScaleTier, WorldConfig};
use std::time::Instant;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    tier: Option<ScaleTier>,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        seed: 42,
        out: "BENCH_scenario.json".to_string(),
        tier: None,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--tier" => {
                let name = it.next().expect("--tier needs a name");
                a.tier = Some(
                    ScaleTier::parse(&name)
                        .unwrap_or_else(|| panic!("unknown tier {name:?} (paper2019|mid|modern)")),
                );
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
                assert!(t >= 1, "--threads must be at least 1");
                a.threads = Some(t);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_scenario [--quick] [--seed N] [--out PATH] \
                     [--tier paper2019|mid|modern] [--threads N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

/// Best-of-`trials` wall time of `f`, in seconds.
fn time(trials: usize, f: &dyn Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The frontier as a JSON array literal (cell order: row-major).
fn frontier_json(grid: &Grid<FrontierCell>) -> String {
    let mut items = Vec::with_capacity(grid.cells.len());
    for (r, scenario) in grid.rows.iter().enumerate() {
        for (c, strategy) in grid.cols.iter().enumerate() {
            let cell = grid.get(r, c);
            items.push(format!(
                "{{\"scenario\":\"{scenario}\",\"strategy\":\"{strategy}\",\
                 \"availability\":{:.6},\"storage_cost\":{:.4}}}",
                cell.availability, cell.storage_cost
            ));
        }
    }
    format!("[{}]", items.join(","))
}

/// Append one JSON line to the trajectory file (and echo it to stdout).
/// Delegates to [`fediscope_bench::record_line`], which rewrites the file
/// via temp-then-rename so a mid-record kill can't tear the history.
fn record(out: &str, json: &str) {
    fediscope_bench::record_line(out, json);
}

fn main() {
    let args = parse_args();
    par::set_thread_override(args.threads);
    let threads = par::thread_budget();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("shard workers: {threads} (machine offers {cores})");
    let mode = if args.quick { "quick" } else { "full" };
    // The naive reference runs one full user-table pass per grid cell
    // (30 of them), so fewer trials than the microsecond-scale benches.
    let trials = if args.quick { 2 } else { 3 };

    let spec_tier = args.tier.unwrap_or(ScaleTier::Paper2019);
    let (obs, gen_s, tier_name) = match args.tier {
        Some(tier) => {
            eprintln!(
                "generating {tier} tier world ({} instances, {} users) …",
                tier.n_instances(),
                tier.n_users()
            );
            let t0 = Instant::now();
            let obs = Observatory::new(Generator::generate_world(WorldConfig::for_tier(
                tier, args.seed,
            )));
            (obs, t0.elapsed().as_secs_f64(), Some(tier.name()))
        }
        None => {
            let n_users = if args.quick { 20_000 } else { 100_000 };
            eprintln!("generating {n_users}-user world via worldgen …");
            let mut cfg = WorldConfig::paper_scaled(args.seed);
            cfg.n_users = n_users;
            cfg.twitter_users = 1_000;
            let t0 = Instant::now();
            let obs = Observatory::new(Generator::generate_world(cfg));
            (obs, t0.elapsed().as_secs_f64(), None)
        }
    };
    let view = obs.content_view();
    eprintln!(
        "world ready in {gen_s:.1}s: {} users, {} instances, {} holder entries",
        view.n_users(),
        view.n_instances,
        view.holder_entries()
    );

    let rebirth = streams::rebirth_days(
        &obs.world.schedules,
        args.seed,
        streams::DEFAULT_REBIRTH_FRAC,
    );
    let sw = ScenarioWorld::from_world(&obs.world).with_rebirth(rebirth);
    let specs = tier_specs(spec_tier);
    let strategies: Vec<ScenarioStrategy> = frontier_strategies();
    let compiled: Vec<CompiledScenario> = specs.iter().map(|s| compile(s, &sw)).collect();
    for c in &compiled {
        eprintln!(
            "scenario {}: {} steps, {} instances removed",
            c.label,
            c.plan.n_steps(),
            c.plan.removed_instances().len()
        );
    }

    let fast = evaluate_grid(view, &sw, &compiled, &strategies, args.seed);
    let slow = naive_grid(view, &sw, &compiled, &strategies, args.seed);
    let identical = fast == slow;
    if identical {
        eprintln!("identity check passed (sweep == naive reference, bit-for-bit)");
    } else {
        eprintln!("FAIL — sweep diverged from the naive reference");
    }

    let sweep_s = time(trials, &|| {
        std::hint::black_box(evaluate_grid(view, &sw, &compiled, &strategies, args.seed));
    });
    let naive_s = time(trials, &|| {
        std::hint::black_box(naive_grid(view, &sw, &compiled, &strategies, args.seed));
    });
    let speedup = naive_s / sweep_s;
    eprintln!(
        "grid {}x{}: sweep {sweep_s:.4}s, naive {naive_s:.4}s ({speedup:.1}x)",
        compiled.len(),
        strategies.len()
    );

    record(
        &args.out,
        &format!(
            "{{\"bench\":\"scenario\",\"tier\":\"{tier}\",\"mode\":\"{mode}\",\
             \"threads\":{threads},\"cores\":{cores},\
             \"users\":{users},\"instances\":{inst},\"holder_entries\":{he},\
             \"seed\":{seed},\"gen_seconds\":{gen_s:.3},\
             \"scenarios\":{n_sc},\"strategies\":{n_st},\
             \"naive_seconds\":{naive_s:.6},\"sweep_seconds\":{sweep_s:.6},\
             \"speedup\":{speedup:.2},\"identical_output\":{identical},\
             \"frontier\":{frontier}}}",
            tier = tier_name.unwrap_or("paper-scaled"),
            users = view.n_users(),
            inst = view.n_instances,
            he = view.holder_entries(),
            seed = args.seed,
            n_sc = compiled.len(),
            n_st = strategies.len(),
            frontier = frontier_json(&fast),
        ),
    );

    let mut fail = false;
    if !identical {
        eprintln!("FAIL: engines diverged");
        fail = true;
    }
    // The fused pass places each author once per strategy instead of once
    // per cell; with 5 scenarios sharing each placement the collapse is
    // structural, so a conservative floor holds even at smoke scale.
    if speedup < 2.0 {
        eprintln!("FAIL: speedup {speedup:.1}x below the 2x acceptance floor");
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
}
