//! # fediscope-bench
//!
//! The benchmark harness: the [`repro`](../repro/index.html) binary prints
//! every table and figure; the Criterion benches (`benches/figures.rs`,
//! `benches/ablations.rs`) time each analysis so regressions in the
//! substrate (graph algorithms, evaluators, generators) are caught.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fediscope_core::Observatory;
use fediscope_graph::DiGraph;
use fediscope_worldgen::{Generator, WorldConfig};

/// Build the standard bench observatory (seeded, small scale so a full
/// Criterion run stays in CI-friendly time).
pub fn bench_observatory(seed: u64) -> Observatory {
    Observatory::new(Generator::generate_world(WorldConfig::small(seed)))
}

/// Synthetic power-law follower graph for the removal-sweep benches,
/// generated through the calibrated worldgen pipeline (same degree law as
/// the paper's Mastodon graph, scaled to `n_users` nodes with
/// `mean_out_degree` edges per node).
pub fn bench_user_graph(n_users: usize, mean_out_degree: f64, seed: u64) -> DiGraph {
    let mut cfg = WorldConfig::paper_scaled(seed);
    cfg.n_users = n_users;
    cfg.mean_out_degree = mean_out_degree;
    // keep the ancillary baseline small; only the Mastodon graph is used
    cfg.twitter_users = 1_000;
    let world = Generator::generate_world(cfg);
    DiGraph::from_edges(
        world.users.len() as u32,
        world.follows.iter().map(|&(a, b)| (a.0, b.0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_observatory_builds() {
        let obs = bench_observatory(1);
        assert!(!obs.world.instances.is_empty());
    }

    #[test]
    fn bench_user_graph_hits_requested_scale() {
        // Realised mean degree lands well below the configured target after
        // parallel-edge dedup and small-world clamps; the bench bin
        // compensates by over-requesting. Here we only pin node count,
        // connectivity, and that density scales with the knob.
        let sparse = bench_user_graph(5_000, 10.0, 3);
        assert_eq!(sparse.node_count(), 5_000);
        assert!(sparse.edge_count() > 2 * sparse.node_count());
        let dense = bench_user_graph(5_000, 20.0, 3);
        assert!(dense.edge_count() > sparse.edge_count());
    }
}
