//! # fediscope-bench
//!
//! The benchmark harness: the [`repro`](../repro/index.html) binary prints
//! every table and figure; the Criterion benches (`benches/figures.rs`,
//! `benches/ablations.rs`) time each analysis so regressions in the
//! substrate (graph algorithms, evaluators, generators) are caught.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fediscope_core::Observatory;
use fediscope_graph::DiGraph;
use fediscope_recover::write_atomic;
use fediscope_worldgen::{Generator, ScaleTier, WorldConfig};
use std::path::Path;

/// Append one JSON line to a `BENCH_*.json` trajectory file (and echo it
/// to stdout). The file is rewritten whole via temp-then-rename
/// ([`fediscope_recover::write_atomic`]) so a kill mid-record leaves the
/// previous history intact instead of a torn final line.
pub fn record_line(out: &str, json: &str) {
    let path = Path::new(out);
    let mut history = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => panic!("read {out}: {e}"),
    };
    history.extend_from_slice(json.as_bytes());
    history.push(b'\n');
    write_atomic(path, &history).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("{json}");
}

/// Build the standard bench observatory (seeded, small scale so a full
/// Criterion run stays in CI-friendly time).
pub fn bench_observatory(seed: u64) -> Observatory {
    Observatory::new(Generator::generate_world(WorldConfig::small(seed)))
}

/// Build a config's follower graph straight into CSR form: the social
/// cursor's sharded segments (no intermediate edge list, no
/// availability/growth/Twitter stages) feed
/// [`DiGraph::from_sorted_blocks`], which skips `GraphBuilder`'s global
/// edge sort — the cheapest way to stand up a million-user graph.
fn streamed_user_graph(cfg: &WorldConfig) -> DiGraph {
    let cursor = Generator::social_cursor(cfg);
    let n = cursor.n_users() as u32;
    debug_assert_eq!(n as usize, cfg.n_users);
    let segments = cursor.segments(fediscope_worldgen::shard::DEFAULT_BLOCK);
    DiGraph::from_sorted_blocks(
        n,
        segments
            .iter()
            .map(|s| (s.start, s.offsets.as_slice(), s.targets.as_slice())),
    )
}

/// Synthetic power-law follower graph for the removal-sweep benches,
/// generated through the calibrated worldgen pipeline (same degree law as
/// the paper's Mastodon graph, scaled to `n_users` nodes with
/// `mean_out_degree` edges per node).
pub fn bench_user_graph(n_users: usize, mean_out_degree: f64, seed: u64) -> DiGraph {
    let mut cfg = WorldConfig::paper_scaled(seed);
    cfg.n_users = n_users;
    cfg.mean_out_degree = mean_out_degree;
    // keep the ancillary baseline small; only the Mastodon graph is used
    cfg.twitter_users = 1_000;
    streamed_user_graph(&cfg)
}

/// The follower graph of a named [`ScaleTier`] world (paper-2019 / mid /
/// modern), streamed into CSR form. The modern tier stands up ~30K
/// instances and a million accounts.
pub fn tier_user_graph(tier: ScaleTier, seed: u64) -> DiGraph {
    streamed_user_graph(&WorldConfig::for_tier(tier, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_line_appends_atomically() {
        let dir = std::env::temp_dir().join(format!("bench-record-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let out = path.to_str().unwrap();
        record_line(out, "{\"a\":1}");
        record_line(out, "{\"b\":2}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        // No leftover temp file: the write is rename-into-place.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name() != "BENCH_test.json")
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_observatory_builds() {
        let obs = bench_observatory(1);
        assert!(!obs.world.instances.is_empty());
    }

    #[test]
    fn streamed_graph_matches_full_world_graph() {
        // The streaming path must produce exactly the graph a full world
        // build produces (same sub-seeded RNG streams, same CSR dedup).
        let cfg = WorldConfig::tiny(9);
        let world = Generator::generate_world(cfg.clone());
        let direct = DiGraph::from_edges(
            world.users.len() as u32,
            world.follows.iter().map(|&(a, b)| (a.0, b.0)),
        );
        let streamed = streamed_user_graph(&cfg);
        assert_eq!(streamed, direct);
    }

    #[test]
    fn bench_user_graph_hits_requested_scale() {
        // Realised mean degree lands well below the configured target after
        // parallel-edge dedup and small-world clamps; the bench bin
        // compensates by over-requesting. Here we only pin node count,
        // connectivity, and that density scales with the knob.
        let sparse = bench_user_graph(5_000, 10.0, 3);
        assert_eq!(sparse.node_count(), 5_000);
        assert!(sparse.edge_count() > 2 * sparse.node_count());
        let dense = bench_user_graph(5_000, 20.0, 3);
        assert!(dense.edge_count() > sparse.edge_count());
    }
}
