//! # fediscope-bench
//!
//! The benchmark harness: the [`repro`](../repro/index.html) binary prints
//! every table and figure; the Criterion benches (`benches/figures.rs`,
//! `benches/ablations.rs`) time each analysis so regressions in the
//! substrate (graph algorithms, evaluators, generators) are caught.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fediscope_core::Observatory;
use fediscope_worldgen::{Generator, WorldConfig};

/// Build the standard bench observatory (seeded, small scale so a full
/// Criterion run stays in CI-friendly time).
pub fn bench_observatory(seed: u64) -> Observatory {
    Observatory::new(Generator::generate_world(WorldConfig::small(seed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_observatory_builds() {
        let obs = bench_observatory(1);
        assert!(!obs.world.instances.is_empty());
    }
}
