//! Criterion benches for the §5.1 removal-sweep engine: incremental vs.
//! naive iterative attack, the ranked reverse sweep, and the parallel
//! figure fan-out. `crates/bench/src/bin/bench_graph.rs` runs the same
//! comparison at full scale and records the speedup trajectory in
//! `BENCH_graph.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use fediscope_bench::{bench_observatory, bench_user_graph};
use fediscope_core::graphs;
use fediscope_graph::removal::{RankBy, RemovalSweep};
use fediscope_graph::DiGraph;
use std::sync::OnceLock;

/// 20k-node / ~200k-edge power-law graph: large enough that the asymptotic
/// win shows, small enough for a criterion loop.
fn graph() -> &'static DiGraph {
    static G: OnceLock<DiGraph> = OnceLock::new();
    G.get_or_init(|| bench_user_graph(20_000, 10.0, 42))
}

fn bench_iterative_incremental(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("removal_iterative");
    grp.sample_size(10);
    grp.bench_function("incremental_25_rounds", |b| {
        b.iter(|| RemovalSweep::new(g).iterative_fraction(0.01, 25, RankBy::DegreeIterative))
    });
    grp.bench_function("naive_25_rounds", |b| {
        b.iter(|| {
            RemovalSweep::new(g).iterative_fraction_naive(0.01, 25, RankBy::DegreeIterative)
        })
    });
    grp.finish();
}

fn bench_random_baseline(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("removal_random");
    grp.sample_size(10);
    grp.bench_function("incremental_25_rounds", |b| {
        b.iter(|| RemovalSweep::new(g).iterative_fraction(0.01, 25, RankBy::Random { seed: 7 }))
    });
    grp.finish();
}

fn bench_ranked_reverse(c: &mut Criterion) {
    let g = graph();
    let order: Vec<u32> = (0..g.node_count() as u32).collect();
    let checkpoints: Vec<usize> = (0..=100).map(|i| i * g.node_count() / 100).collect();
    let mut grp = c.benchmark_group("removal_ranked");
    grp.sample_size(10);
    grp.bench_function("reverse_sweep_100_checkpoints", |b| {
        b.iter(|| RemovalSweep::new(g).ranked(&order, &checkpoints))
    });
    grp.finish();
}

fn bench_parallel_figures(c: &mut Criterion) {
    let obs = bench_observatory(42);
    let mut grp = c.benchmark_group("parallel_fanout");
    grp.sample_size(10);
    grp.bench_function("fig12_join", |b| {
        b.iter(|| graphs::fig12_user_removal(&obs, 10))
    });
    grp.bench_function("fig13_four_way", |b| {
        b.iter(|| graphs::fig13_federation_removal(&obs, 80, 20))
    });
    grp.bench_function("fig12_random_baseline_8_trials", |b| {
        b.iter(|| graphs::fig12_random_baseline(&obs, 10, 8, 99))
    });
    grp.finish();
}

criterion_group!(
    removal,
    bench_iterative_incremental,
    bench_random_baseline,
    bench_ranked_reverse,
    bench_parallel_figures,
);
criterion_main!(removal);
