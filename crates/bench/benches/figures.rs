//! One Criterion bench per table and figure of the paper: each bench runs
//! the full analysis that regenerates the artefact, so this file doubles as
//! the performance regression net for every substrate the analyses touch.

use criterion::{criterion_group, criterion_main, Criterion};
use fediscope_bench::bench_observatory;
use fediscope_core::{availability, content, graphs, population, Observatory};
use std::sync::OnceLock;

fn obs() -> &'static Observatory {
    static OBS: OnceLock<Observatory> = OnceLock::new();
    OBS.get_or_init(|| bench_observatory(42))
}

fn bench_fig01(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig01_growth", |b| {
        b.iter(|| population::fig01_growth(o, 1))
    });
}

fn bench_fig02(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig02_open_closed", |b| {
        b.iter(|| population::fig02_open_closed(o))
    });
}

fn bench_fig03(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig03_categories", |b| {
        b.iter(|| population::fig03_categories(o))
    });
}

fn bench_fig04(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig04_policies", |b| {
        b.iter(|| population::fig04_policies(o))
    });
}

fn bench_fig05(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig05_hosting", |b| {
        b.iter(|| population::fig05_hosting(o))
    });
}

fn bench_fig06(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig06_country_links", |b| {
        b.iter(|| population::fig06_country_links(o))
    });
}

fn bench_fig07(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig07_downtime", |b| {
        b.iter(|| availability::fig07_downtime(o))
    });
}

fn bench_fig08(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig08_daily_downtime", |b| {
        b.iter(|| availability::fig08_daily_downtime(o, 7))
    });
}

fn bench_fig09(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig09_certificates", |b| {
        b.iter(|| availability::fig09_certificates(o))
    });
}

fn bench_table1(c: &mut Criterion) {
    let o = obs();
    c.bench_function("table1_as_failures", |b| {
        b.iter(|| availability::table1_as_failures(o, 3))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig10_outages", |b| {
        b.iter(|| availability::fig10_outages(o))
    });
}

fn bench_fig11(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig11_degrees", |b| b.iter(|| graphs::fig11_degrees(o)));
}

fn bench_table2(c: &mut Criterion) {
    let o = obs();
    c.bench_function("table2_top_instances", |b| {
        b.iter(|| graphs::table2_top_instances(o))
    });
}

fn bench_fig12(c: &mut Criterion) {
    let o = obs();
    let mut g = c.benchmark_group("fig12_user_removal");
    g.sample_size(10);
    g.bench_function("10_rounds", |b| {
        b.iter(|| graphs::fig12_user_removal(o, 10))
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let o = obs();
    let mut g = c.benchmark_group("fig13_federation_removal");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| graphs::fig13_federation_removal(o, 80, 20))
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let o = obs();
    c.bench_function("fig14_remote_ratio", |b| {
        b.iter(|| content::fig14_remote_ratio(o))
    });
}

fn bench_fig15(c: &mut Criterion) {
    let o = obs();
    let mut g = c.benchmark_group("fig15_replication");
    g.sample_size(10);
    g.bench_function("curves", |b| {
        b.iter(|| content::fig15_replication(o, 30, 20))
    });
    g.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let o = obs();
    let mut g = c.benchmark_group("fig16_random_replication");
    g.sample_size(10);
    g.bench_function("curves", |b| {
        b.iter(|| content::fig16_random_replication(o, 25))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig01,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_fig05,
    bench_fig06,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_table1,
    bench_fig10,
    bench_fig11,
    bench_table2,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
);
criterion_main!(figures);
