//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **DHT index cost** (the paper assumes a global index exists; this
//!   measures what lookups would cost at various ring sizes),
//! - **replication strategies head-to-head** (No-Rep vs S-Rep vs Random(n)
//!   vs the capacity-weighted extension),
//! - **world generation** (the substitution substrate itself),
//! - **homophily ablation**: how the country-link structure (Fig. 6) shifts
//!   when the homophily knob is turned off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fediscope_bench::bench_observatory;
use fediscope_core::{population, Metric, Observatory};
use fediscope_replication::eval::{availability_curve, singleton_groups, Strategy};
use fediscope_replication::weighted::weighted_random_curve;
use fediscope_replication::HashRing;
use fediscope_worldgen::{Generator, WorldConfig};
use std::sync::OnceLock;

fn obs() -> &'static Observatory {
    static OBS: OnceLock<Observatory> = OnceLock::new();
    OBS.get_or_init(|| bench_observatory(42))
}

fn bench_ablation_dht(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dht_lookup");
    for ring_size in [100u32, 1_000, 4_328] {
        let ring = HashRing::new(0..ring_size, 32);
        g.bench_with_input(
            BenchmarkId::from_parameter(ring_size),
            &ring,
            |b, ring| {
                let mut key = 0u64;
                b.iter(|| {
                    key = key.wrapping_add(1);
                    ring.lookup(key, 3)
                })
            },
        );
    }
    g.finish();
}

fn bench_ablation_strategies(c: &mut Criterion) {
    let o = obs();
    let view = o.content_view();
    let mut order = o.instance_order(Metric::Toots);
    order.truncate(25);
    let groups = singleton_groups(&order);
    let mut g = c.benchmark_group("ablation_strategies");
    g.sample_size(10);
    g.bench_function("no_replication", |b| {
        b.iter(|| availability_curve(view, Strategy::NoReplication, &groups))
    });
    g.bench_function("subscription", |b| {
        b.iter(|| availability_curve(view, Strategy::Subscription, &groups))
    });
    g.bench_function("random_n3_expectation", |b| {
        b.iter(|| availability_curve(view, Strategy::Random { n: 3 }, &groups))
    });
    let capacities: Vec<f64> = o
        .toots_per_instance
        .iter()
        .map(|&t| (t as f64).max(1.0))
        .collect();
    g.bench_function("weighted_random_n3_mc", |b| {
        b.iter(|| weighted_random_curve(view, &capacities, 3, &groups, 8, 7))
    });
    g.finish();
}

fn bench_ablation_worldgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_worldgen");
    g.sample_size(10);
    g.bench_function("tiny", |b| {
        b.iter(|| Generator::generate_world(WorldConfig::tiny(1)))
    });
    g.bench_function("small", |b| {
        b.iter(|| Generator::generate_world(WorldConfig::small(1)))
    });
    g.finish();
}

fn bench_ablation_homophily(c: &mut Criterion) {
    // Regenerate a small world with homophily off and compare the Fig. 6
    // same-country share; the bench times the full pipeline per variant.
    let mut g = c.benchmark_group("ablation_homophily");
    g.sample_size(10);
    for (label, p_country) in [("homophily_on", 0.40), ("homophily_off", 0.0)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = WorldConfig::tiny(7);
                cfg.p_follow_same_country = p_country;
                let obs = Observatory::new(Generator::generate_world(cfg));
                population::fig06_country_links(&obs).same_country_share
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_ablation_dht,
    bench_ablation_strategies,
    bench_ablation_worldgen,
    bench_ablation_homophily,
);
criterion_main!(ablations);
