//! The study's virtual clock.
//!
//! mnm.social polled every instance **every five minutes** between
//! **2017-04-11** and **2018-07-27** (§3). We therefore discretise time into
//! 5-minute [`Epoch`]s across a 472-day window. A [`Day`] is 288 epochs.
//!
//! Civil-date conversion uses Howard Hinnant's `days_from_civil` algorithm so
//! we can print human-readable dates ("23 July 2018") without a chrono
//! dependency.

use serde::{Deserialize, Serialize};

/// Number of 5-minute epochs per day.
pub const EPOCHS_PER_DAY: u32 = 288;

/// Days in the measurement window (2017-04-11 → 2018-07-27 inclusive start,
/// exclusive end).
pub const WINDOW_DAYS: u32 = 472;

/// Total 5-minute epochs in the measurement window.
pub const WINDOW_EPOCHS: u32 = WINDOW_DAYS * EPOCHS_PER_DAY;

/// The civil date of day 0 of the window.
pub const WINDOW_START: (i32, u32, u32) = (2017, 4, 11);

/// A 5-minute polling epoch, counted from the window start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Epoch(pub u32);

/// A day offset from the window start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Day(pub u32);

impl Epoch {
    /// The day this epoch falls in.
    pub fn day(self) -> Day {
        Day(self.0 / EPOCHS_PER_DAY)
    }

    /// First epoch of the window.
    pub const ZERO: Epoch = Epoch(0);

    /// One-past-the-end epoch of the window.
    pub const END: Epoch = Epoch(WINDOW_EPOCHS);

    /// Minutes since the window start.
    pub fn minutes(self) -> u64 {
        self.0 as u64 * 5
    }

    /// Saturating addition of `n` epochs, clamped to the window end.
    pub fn saturating_add(self, n: u32) -> Epoch {
        Epoch((self.0.saturating_add(n)).min(WINDOW_EPOCHS))
    }
}

impl Day {
    /// First epoch of this day.
    pub fn start_epoch(self) -> Epoch {
        Epoch(self.0 * EPOCHS_PER_DAY)
    }

    /// One-past-the-end epoch of this day.
    pub fn end_epoch(self) -> Epoch {
        Epoch((self.0 + 1) * EPOCHS_PER_DAY)
    }

    /// The civil date `(year, month, day)` of this day offset.
    pub fn civil(self) -> (i32, u32, u32) {
        let base = days_from_civil(WINDOW_START.0, WINDOW_START.1, WINDOW_START.2);
        civil_from_days(base + self.0 as i64)
    }

    /// ISO-8601 `YYYY-MM-DD` representation.
    pub fn iso(self) -> String {
        let (y, m, d) = self.civil();
        format!("{y:04}-{m:02}-{d:02}")
    }

    /// Build a `Day` from a civil date, if within the window.
    pub fn from_civil(y: i32, m: u32, d: u32) -> Option<Day> {
        let base = days_from_civil(WINDOW_START.0, WINDOW_START.1, WINDOW_START.2);
        let days = days_from_civil(y, m, d) - base;
        if (0..WINDOW_DAYS as i64).contains(&days) {
            Some(Day(days as u32))
        } else {
            None
        }
    }
}

impl std::fmt::Display for Day {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.iso())
    }
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
///
/// Howard Hinnant's algorithm, <http://howardhinnant.github.io/date_algorithms.html>.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_472_days() {
        // 2017-04-11 .. 2018-07-27
        let start = days_from_civil(2017, 4, 11);
        let end = days_from_civil(2018, 7, 27);
        assert_eq!(end - start, WINDOW_DAYS as i64);
    }

    #[test]
    fn epoch_day_mapping() {
        assert_eq!(Epoch(0).day(), Day(0));
        assert_eq!(Epoch(287).day(), Day(0));
        assert_eq!(Epoch(288).day(), Day(1));
        assert_eq!(Day(1).start_epoch(), Epoch(288));
        assert_eq!(Day(0).end_epoch(), Epoch(288));
    }

    #[test]
    fn civil_round_trip_epoch_zero() {
        assert_eq!(Day(0).civil(), (2017, 4, 11));
        assert_eq!(Day(0).iso(), "2017-04-11");
    }

    #[test]
    fn known_paper_dates() {
        // "In the worst case we find 105 instances to be down on one day
        // (23 July 2018)" — that date must be inside the window.
        let d = Day::from_civil(2018, 7, 23).expect("2018-07-23 in window");
        assert_eq!(d.iso(), "2018-07-23");
        // "one day (April 15, 2017) where 6% of all toots were unavailable"
        let d2 = Day::from_civil(2017, 4, 15).unwrap();
        assert_eq!(d2, Day(4));
        // Outside the window:
        assert_eq!(Day::from_civil(2018, 7, 27), None);
        assert_eq!(Day::from_civil(2017, 4, 10), None);
    }

    #[test]
    fn civil_conversion_round_trips() {
        for z in [-1_000_000i64, -1, 0, 1, 365, 100_000, 2_000_000] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn unix_epoch_is_1970() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(days_from_civil(1970, 1, 1), 0);
    }

    #[test]
    fn leap_year_handling() {
        // 2016 was a leap year.
        let feb28 = days_from_civil(2016, 2, 28);
        let mar01 = days_from_civil(2016, 3, 1);
        assert_eq!(mar01 - feb28, 2); // Feb 29 exists
        let feb28_17 = days_from_civil(2017, 2, 28);
        let mar01_17 = days_from_civil(2017, 3, 1);
        assert_eq!(mar01_17 - feb28_17, 1);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(Epoch(5).saturating_add(10), Epoch(15));
        assert_eq!(Epoch(WINDOW_EPOCHS - 1).saturating_add(100), Epoch::END);
    }

    #[test]
    fn minutes_accumulate() {
        assert_eq!(Epoch(0).minutes(), 0);
        assert_eq!(Epoch(12).minutes(), 60);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn civil_round_trip(z in -1_000_000i64..1_000_000) {
            let (y, m, d) = civil_from_days(z);
            prop_assert!((1..=12).contains(&m));
            prop_assert!((1..=31).contains(&d));
            prop_assert_eq!(days_from_civil(y, m, d), z);
        }

        #[test]
        fn day_iso_parses_back(day in 0u32..WINDOW_DAYS) {
            let d = Day(day);
            let (y, m, dd) = d.civil();
            prop_assert_eq!(Day::from_civil(y, m, dd), Some(d));
        }
    }
}
