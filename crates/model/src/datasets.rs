//! The *measured* datasets — what a crawler observes, as opposed to the
//! ground truth in [`crate::world`].
//!
//! Mirrors §3 of the paper: an **Instances** dataset (5-minute metadata
//! polls), a **Toots** dataset (historical toots per instance), and a
//! **Graphs** dataset (follower and federation graphs).

use crate::ids::{InstanceId, UserId};
use crate::time::Epoch;
use serde::{Deserialize, Serialize};

/// What the instance API reports when a poll succeeds — the fields named in
/// §3 ("name, version, number of toots, users, federated subscriptions, and
/// user logins; whether registration is open").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceApiInfo {
    /// Instance domain name.
    pub name: String,
    /// Software version string.
    pub version: String,
    /// Total toots on the instance.
    pub toots: u64,
    /// Registered users.
    pub users: u32,
    /// Outbound federated subscription count.
    pub subscriptions: u32,
    /// User logins in the current week.
    pub logins: u32,
    /// Whether registration is open.
    pub registration_open: bool,
}

/// Result of one poll of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PollResult {
    /// Instance responded.
    Up(InstanceApiInfo),
    /// The instance (or its hosting) answered negatively: 503, blocked, …
    /// — the monitor observed it to be down.
    Down,
    /// The poll itself failed (connection reset, persistent rate limiting,
    /// corrupt payload): the monitor learned *nothing* about the instance.
    /// Reconstruction skips these; coverage reporting counts them.
    Unknown,
}

impl PollResult {
    /// True when the instance answered.
    pub fn is_up(&self) -> bool {
        matches!(self, PollResult::Up(_))
    }

    /// Did this poll observe the instance at all? (`Up` and `Down` did;
    /// `Unknown` is a gap in the measurement.)
    pub fn is_known(&self) -> bool {
        !matches!(self, PollResult::Unknown)
    }
}

/// The monitoring time series for one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ObservedSeries {
    /// Instance identity (known from the seed list).
    pub instance: InstanceId,
    /// Epochs at which polls were made, with results, in ascending order.
    pub polls: Vec<(Epoch, PollResult)>,
}

impl ObservedSeries {
    /// Fraction of *known* polls that observed the instance down (`None`
    /// when nothing was ever observed). `Unknown` polls are measurement
    /// gaps, not observations, so they join neither numerator nor
    /// denominator.
    pub fn downtime_fraction(&self) -> Option<f64> {
        let known = self.known_polls();
        if known == 0 {
            return None;
        }
        let down = self
            .polls
            .iter()
            .filter(|(_, r)| r.is_known() && !r.is_up())
            .count();
        Some(down as f64 / known as f64)
    }

    /// Number of polls that actually observed the instance.
    pub fn known_polls(&self) -> usize {
        self.polls.iter().filter(|(_, r)| r.is_known()).count()
    }

    /// Number of polls lost to measurement failure.
    pub fn unknown_polls(&self) -> usize {
        self.polls.len() - self.known_polls()
    }

    /// Latest successful poll payload, if any.
    pub fn last_up(&self) -> Option<&InstanceApiInfo> {
        self.polls.iter().rev().find_map(|(_, r)| match r {
            PollResult::Up(info) => Some(info),
            _ => None,
        })
    }
}

/// The Instances dataset: one observed series per instance in the seed list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct InstancesDataset {
    /// One series per instance.
    pub series: Vec<ObservedSeries>,
}

/// Per-instance outcome of the toot crawl.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TootCrawlRecord {
    /// Which instance.
    pub instance: InstanceId,
    /// Whether the instance was reachable and allowed crawling.
    pub crawled: bool,
    /// Toots collected from the *federated* timeline that were authored
    /// locally.
    pub home_toots: u64,
    /// Toots collected that were authored on other instances (replicas).
    pub remote_toots: u64,
    /// Distinct local users seen tooting.
    pub tooting_users: u32,
    /// Per-user toot counts observed `(user, count)`.
    pub user_toots: Vec<(UserId, u32)>,
}

/// The Toots dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TootsDataset {
    /// One record per attempted instance.
    pub records: Vec<TootCrawlRecord>,
}

impl TootsDataset {
    /// Total toots collected (home timeline view, i.e. deduplicated by
    /// authorship).
    pub fn total_home_toots(&self) -> u64 {
        self.records.iter().map(|r| r.home_toots).sum()
    }

    /// Number of instances successfully crawled.
    pub fn crawled_instances(&self) -> usize {
        self.records.iter().filter(|r| r.crawled).count()
    }

    /// Coverage against a known global toot total (the paper reports 62%).
    pub fn coverage(&self, global_toots: u64) -> f64 {
        if global_toots == 0 {
            return 0.0;
        }
        self.total_home_toots() as f64 / global_toots as f64
    }
}

/// The Graphs dataset: follower edges scraped from profile pages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GraphDataset {
    /// `(a, b)`: account `a` follows account `b`.
    pub follows: Vec<(UserId, UserId)>,
    /// All accounts seen (nodes of the induced graph).
    pub accounts: Vec<UserId>,
}

impl GraphDataset {
    /// Deduplicate and sort edges/nodes in place.
    pub fn normalise(&mut self) {
        self.follows.sort_unstable();
        self.follows.dedup();
        self.accounts.sort_unstable();
        self.accounts.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(users: u32) -> InstanceApiInfo {
        InstanceApiInfo {
            name: "x.example".into(),
            version: "2.4.0".into(),
            toots: 10,
            users,
            subscriptions: 3,
            logins: 5,
            registration_open: true,
        }
    }

    #[test]
    fn observed_series_downtime() {
        let s = ObservedSeries {
            instance: InstanceId(0),
            polls: vec![
                (Epoch(0), PollResult::Up(info(1))),
                (Epoch(1), PollResult::Down),
                (Epoch(2), PollResult::Down),
                (Epoch(3), PollResult::Up(info(2))),
            ],
        };
        assert_eq!(s.downtime_fraction(), Some(0.5));
        assert_eq!(s.last_up().unwrap().users, 2);
    }

    #[test]
    fn unknown_polls_are_gaps_not_observations() {
        let s = ObservedSeries {
            instance: InstanceId(0),
            polls: vec![
                (Epoch(0), PollResult::Up(info(1))),
                (Epoch(1), PollResult::Unknown),
                (Epoch(2), PollResult::Down),
                (Epoch(3), PollResult::Unknown),
            ],
        };
        assert_eq!(s.known_polls(), 2);
        assert_eq!(s.unknown_polls(), 2);
        // downtime over known polls only: 1 down of 2 known
        assert_eq!(s.downtime_fraction(), Some(0.5));
        assert!(!PollResult::Unknown.is_up());
        assert!(!PollResult::Unknown.is_known());
        // a series of only unknowns observed nothing
        let blind = ObservedSeries {
            instance: InstanceId(1),
            polls: vec![(Epoch(0), PollResult::Unknown)],
        };
        assert_eq!(blind.downtime_fraction(), None);
        assert!(blind.last_up().is_none());
    }

    #[test]
    fn empty_series() {
        let s = ObservedSeries::default();
        assert_eq!(s.downtime_fraction(), None);
        assert!(s.last_up().is_none());
    }

    #[test]
    fn toots_dataset_aggregates() {
        let d = TootsDataset {
            records: vec![
                TootCrawlRecord {
                    instance: InstanceId(0),
                    crawled: true,
                    home_toots: 60,
                    remote_toots: 40,
                    tooting_users: 2,
                    user_toots: vec![],
                },
                TootCrawlRecord {
                    instance: InstanceId(1),
                    crawled: false,
                    home_toots: 0,
                    remote_toots: 0,
                    tooting_users: 0,
                    user_toots: vec![],
                },
            ],
        };
        assert_eq!(d.total_home_toots(), 60);
        assert_eq!(d.crawled_instances(), 1);
        assert!((d.coverage(100) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_zero_total() {
        let d = TootsDataset::default();
        assert_eq!(d.coverage(0), 0.0);
    }

    #[test]
    fn graph_dataset_normalises() {
        let mut g = GraphDataset {
            follows: vec![
                (UserId(2), UserId(1)),
                (UserId(0), UserId(1)),
                (UserId(2), UserId(1)),
            ],
            accounts: vec![UserId(2), UserId(0), UserId(1), UserId(1)],
        };
        g.normalise();
        assert_eq!(g.follows, vec![(UserId(0), UserId(1)), (UserId(2), UserId(1))]);
        assert_eq!(g.accounts, vec![UserId(0), UserId(1), UserId(2)]);
    }
}
