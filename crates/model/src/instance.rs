//! The instance record: one row per Mastodon/Pleroma server.

use crate::certs::Certificate;
use crate::geo::Country;
use crate::ids::{AsId, InstanceId};
use crate::taxonomy::{CategorySet, PolicySet};
use crate::time::Day;
use serde::{Deserialize, Serialize};

/// Server software. Since 2017 Mastodon and Pleroma federate over the same
/// protocol, so "from a user's perspective, there is little difference"
/// (§3); the paper's population is 96.9% Mastodon / 3.1% Pleroma.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Software {
    Mastodon,
    Pleroma,
}

impl Software {
    /// Version string reported by the instance API.
    pub fn version_string(self) -> &'static str {
        match self {
            Software::Mastodon => "2.4.0",
            Software::Pleroma => "0.9.9 (compat 2.2.0)",
        }
    }
}

/// Registration policy (§4.1): open lets anybody sign up; closed requires an
/// administrator invitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Registration {
    Open,
    Closed,
}

/// Who runs the instance (Table 2's "Run by" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OperatorKind {
    Individual,
    Company,
    CrowdFunded,
    Unknown,
}

/// Ground-truth record of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Dense identifier.
    pub id: InstanceId,
    /// Domain name, e.g. `mstdn-0042.example`.
    pub domain: String,
    /// Server software.
    pub software: Software,
    /// Registration policy.
    pub registration: Registration,
    /// Whether the instance self-declares a category at all (the paper's
    /// 697-instance subset). A declaring instance with an empty
    /// [`CategorySet`] corresponds to the "generic" label (51.7% of the
    /// categorised population).
    pub declares_categories: bool,
    /// Self-declared categories (empty for undeclared instances *and* for
    /// "generic" ones; check [`Instance::declares_categories`]).
    pub categories: CategorySet,
    /// Explicit allowed/prohibited activities (meaningful only for
    /// categorised instances, mirroring the paper's §4.2 subset).
    pub policies: PolicySet,
    /// Hosting country (via the provider).
    pub country: Country,
    /// Hosting AS.
    pub asn: AsId,
    /// Dense index of the provider in the catalog.
    pub provider_index: u32,
    /// Synthetic IPv4 address.
    pub ip: u32,
    /// TLS certificate in effect.
    pub certificate: Certificate,
    /// Day the instance came online.
    pub created: Day,
    /// Who operates it.
    pub operator: OperatorKind,
    /// Total registered accounts at crawl time (ground truth).
    pub user_count: u32,
    /// Total *local* toots ever posted on this instance at crawl time.
    pub toot_count: u64,
    /// Boosted (re-shared) toots among them.
    pub boosted_toots: u64,
    /// Maximum weekly active-user percentage (Fig. 2c), in `[0, 100]`.
    pub active_user_pct: f64,
    /// Whether the instance permits API crawling of its toots. The paper
    /// could only gather 62% of toots; the rest were private (~20% of the
    /// missing) or hosted on instances that blocked crawling.
    pub crawl_allowed: bool,
    /// Fraction of this instance's toots marked private.
    pub private_toot_frac: f64,
}

impl Instance {
    /// Is registration open?
    pub fn is_open(&self) -> bool {
        self.registration == Registration::Open
    }

    /// Publicly crawlable toot count (excludes private toots; zero when the
    /// instance blocks crawling).
    pub fn crawlable_toots(&self) -> u64 {
        if !self.crawl_allowed {
            return 0;
        }
        let public = (self.toot_count as f64 * (1.0 - self.private_toot_frac)).round();
        public as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::CertificateAuthority;

    fn demo() -> Instance {
        Instance {
            id: InstanceId(0),
            domain: "demo.example".into(),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: false,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(9370),
            provider_index: 0,
            ip: 0x0a00_0001,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: 100,
            toot_count: 1000,
            boosted_toots: 100,
            active_user_pct: 50.0,
            crawl_allowed: true,
            private_toot_frac: 0.2,
        }
    }

    #[test]
    fn open_check() {
        let mut i = demo();
        assert!(i.is_open());
        i.registration = Registration::Closed;
        assert!(!i.is_open());
    }

    #[test]
    fn crawlable_toots_respects_privacy() {
        let i = demo();
        assert_eq!(i.crawlable_toots(), 800);
    }

    #[test]
    fn crawl_blocked_yields_zero() {
        let mut i = demo();
        i.crawl_allowed = false;
        assert_eq!(i.crawlable_toots(), 0);
    }

    #[test]
    fn software_versions() {
        assert!(Software::Mastodon.version_string().starts_with('2'));
        assert!(Software::Pleroma.version_string().contains("compat"));
    }

    #[test]
    fn serde_round_trip() {
        let i = demo();
        let json = serde_json::to_string(&i).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
    }
}
