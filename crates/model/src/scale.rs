//! Scale tiers: named world sizes from the paper's 2019 crawl up to the
//! modern Fediverse.
//!
//! The IMC'19 paper measured 4,328 instances and 853K follower-graph
//! accounts. Post-2022 crawls (Xavier 2024; Jeong et al. 2025 — see
//! PAPERS.md) put the network at roughly 30K instances and millions of
//! accounts. A [`ScaleTier`] names one point on that trajectory so the
//! generator, the analyses, and the benchmarks can all be parameterised by
//! the same knob and `BENCH_graph.json` can carry one datapoint per tier.

/// A named world scale, from the paper's 2019 crawl to the modern network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleTier {
    /// The paper's July-2018/early-2019 crawl: 4,328 instances, 853K
    /// accounts, 351 hosting ASes.
    Paper2019,
    /// Midpoint of the post-2022 growth curve: ~12K instances, 250K
    /// accounts — big enough that asymptotics dominate, small enough for
    /// CI.
    Mid,
    /// The modern Fediverse: ~30K instances (Xavier 2024) and a
    /// million-account follower graph.
    Modern,
    /// The 2026 projection: ~100K instances and a ten-million-account
    /// follower graph (~50M edges) — an order of magnitude past the
    /// paper, per the post-2022 growth documented in arXiv:2408.15383.
    Fediverse2026,
}

impl ScaleTier {
    /// Every tier, ascending by instance count (largest world last).
    pub const ALL: [ScaleTier; 4] = [
        ScaleTier::Paper2019,
        ScaleTier::Mid,
        ScaleTier::Modern,
        ScaleTier::Fediverse2026,
    ];

    /// Canonical lowercase name (stable: used in CLI flags and bench
    /// records).
    pub fn name(self) -> &'static str {
        match self {
            ScaleTier::Paper2019 => "paper2019",
            ScaleTier::Mid => "mid",
            ScaleTier::Modern => "modern",
            ScaleTier::Fediverse2026 => "fediverse2026",
        }
    }

    /// Parse a tier name as written in CLI flags; accepts the canonical
    /// names plus the `paper-2019` spelling. Returns `None` for anything
    /// else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "paper2019" | "paper-2019" | "paper" => Some(ScaleTier::Paper2019),
            "mid" => Some(ScaleTier::Mid),
            "modern" => Some(ScaleTier::Modern),
            "fediverse2026" | "fediverse-2026" | "2026" => Some(ScaleTier::Fediverse2026),
            _ => None,
        }
    }

    /// Number of instances in this tier's world.
    pub fn n_instances(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 4_328,
            ScaleTier::Mid => 12_000,
            ScaleTier::Modern => 30_000,
            ScaleTier::Fediverse2026 => 100_000,
        }
    }

    /// Number of user accounts in this tier's world.
    pub fn n_users(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 853_000,
            ScaleTier::Mid => 250_000,
            ScaleTier::Modern => 1_000_000,
            ScaleTier::Fediverse2026 => 10_000_000,
        }
    }

    /// Number of hosting ASes (grows sublinearly with instances: hosting
    /// stays concentrated, which is the paper's §4 point).
    pub fn n_providers(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 351,
            ScaleTier::Mid => 520,
            ScaleTier::Modern => 900,
            ScaleTier::Fediverse2026 => 2_000,
        }
    }

    /// Rounds of 1% removals for the Fig. 12 iterative attack at this tier.
    pub fn fig12_steps(self) -> usize {
        100
    }

    /// Fig. 13a sweep depth (instances removed) given the tier's world:
    /// a quarter of the instance population, like the paper's x-axis.
    pub fn fig13_max_instances(self) -> usize {
        self.n_instances() / 4
    }

    /// Fig. 13b sweep depth (ASes removed).
    pub fn fig13_max_ases(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 30,
            ScaleTier::Mid => 40,
            ScaleTier::Modern => 50,
            ScaleTier::Fediverse2026 => 60,
        }
    }

    /// Monte-Carlo trials for the Fig. 12 random-removal baseline (fewer
    /// at larger scales: each trial already averages over more nodes).
    pub fn baseline_trials(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 8,
            ScaleTier::Mid => 8,
            ScaleTier::Modern => 4,
            ScaleTier::Fediverse2026 => 2,
        }
    }

    /// Fig. 15 sweep depth (instances removed, ranked by toots): the
    /// paper's x-axis reaches 30 at 2019 scale; deeper tiers scale the
    /// depth with the instance population.
    pub fn fig15_max_instances(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 30,
            ScaleTier::Mid => 80,
            ScaleTier::Modern => 200,
            ScaleTier::Fediverse2026 => 400,
        }
    }

    /// Fig. 15 AS-removal sweep depth.
    pub fn fig15_max_ases(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 10,
            ScaleTier::Mid => 15,
            ScaleTier::Modern => 20,
            ScaleTier::Fediverse2026 => 25,
        }
    }

    /// Fig. 16 sweep depth (instances removed under random replication):
    /// 25 in the paper, scaled up with the tier.
    pub fn fig16_max_instances(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 25,
            ScaleTier::Mid => 60,
            ScaleTier::Modern => 150,
            ScaleTier::Fediverse2026 => 300,
        }
    }

    /// Table 1 membership threshold: the paper only reports ASes hosting
    /// at least 8 instances. Hosting concentration persists at every tier,
    /// so the absolute threshold carries over unchanged.
    pub fn table1_min_instances(self) -> usize {
        8
    }

    /// Fig. 8 day-sampling stride for this tier's §4 sweep. The columnar
    /// interval walk is `O(days + outages)` per instance, cheap enough
    /// that every tier — including the 30k-instance modern observatory —
    /// pools every instance-day sample (stride 1).
    pub fn fig08_day_stride(self) -> u32 {
        1
    }

    // --- delivery-simulator knobs (simnet::fedsim) ---

    /// Toot-emission horizon of the delivery simulation, in 5-minute ticks
    /// (one simulated day at every tier: the §3 load-concentration shape is
    /// per-rate, not per-duration, and one day keeps the modern tier's
    /// ~7M-message fan-out inside a bench budget).
    pub fn fedsim_horizon_epochs(self) -> u32 {
        crate::time::EPOCHS_PER_DAY
    }

    /// Extra ticks the simulator may run past the horizon to drain queues
    /// and flush redelivery backlogs before declaring leftovers
    /// undeliverable.
    pub fn fedsim_drain_epochs(self) -> u32 {
        2 * crate::time::EPOCHS_PER_DAY
    }

    /// Global multiplier on per-user toot rates for the simulation window
    /// (1.0 = the paper's measured lifetime rates spread uniformly over the
    /// measurement window).
    pub fn fedsim_rate_scale(self) -> f64 {
        1.0
    }

    /// How many top-ranked ASes the degradation overlay takes down (the
    /// paper's §4 headline: the top-5 ASes host the majority of users).
    pub fn fedsim_outage_ases(self) -> usize {
        5
    }

    /// The overlay outage window `[start, end)` in simulation ticks:
    /// one quarter of the horizon in, lasting a quarter — leaving half the
    /// horizon plus the drain budget to observe redelivery recovery.
    pub fn fedsim_outage_window(self) -> (u32, u32) {
        let h = self.fedsim_horizon_epochs();
        (h / 4, h / 2)
    }

    // --- correlated-failure scenario knobs (replication::scenario) ---

    /// Shared-fate depth: how many top-ranked ASes (and hosting providers)
    /// the AS-/hoster-level shared-fate scenarios take down, one group per
    /// removal step.
    pub fn scenario_shared_fate_groups(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 10,
            ScaleTier::Mid => 15,
            ScaleTier::Modern => 20,
            ScaleTier::Fediverse2026 => 25,
        }
    }

    /// Cert-lapse cascade resolution: the window's lapse days are folded
    /// into this many equal day buckets, each bucket one removal step.
    pub fn scenario_cascade_buckets(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 8,
            ScaleTier::Mid => 12,
            ScaleTier::Modern => 16,
            ScaleTier::Fediverse2026 => 20,
        }
    }

    /// Churn-with-rebirth step count: churned instances retire in
    /// retirement-day order, folded into this many removal steps.
    pub fn scenario_churn_steps(self) -> usize {
        match self {
            ScaleTier::Paper2019 => 10,
            ScaleTier::Mid => 12,
            ScaleTier::Modern => 16,
            ScaleTier::Fediverse2026 => 20,
        }
    }
}

impl std::fmt::Display for ScaleTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for tier in ScaleTier::ALL {
            assert_eq!(ScaleTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(ScaleTier::parse("paper-2019"), Some(ScaleTier::Paper2019));
        assert_eq!(ScaleTier::parse("MODERN"), Some(ScaleTier::Modern));
        assert_eq!(ScaleTier::parse("gigantic"), None);
    }

    #[test]
    fn tiers_scale_monotonically() {
        assert!(ScaleTier::Mid.n_instances() > ScaleTier::Paper2019.n_instances());
        assert!(ScaleTier::Modern.n_instances() > ScaleTier::Mid.n_instances());
        assert!(ScaleTier::Modern.n_users() >= 1_000_000);
        assert!(ScaleTier::Fediverse2026.n_instances() >= 100_000);
        assert!(ScaleTier::Fediverse2026.n_users() >= 10_000_000);
        assert_eq!(ScaleTier::Paper2019.n_instances(), 4_328);
        assert_eq!(ScaleTier::Paper2019.n_users(), 853_000);
        // providers grow sublinearly relative to instances
        for tier in ScaleTier::ALL {
            assert!(tier.n_providers() < tier.n_instances() / 5);
        }
    }

    #[test]
    fn sweep_depths_positive_and_in_range() {
        for tier in ScaleTier::ALL {
            assert!(tier.fig12_steps() > 0);
            assert!(tier.fig13_max_instances() > 0);
            assert!(tier.fig13_max_instances() <= tier.n_instances());
            assert!(tier.fig13_max_ases() <= tier.n_providers());
            assert!(tier.baseline_trials() > 0);
            assert!(tier.fig15_max_instances() > 0);
            assert!(tier.fig15_max_instances() <= tier.n_instances());
            assert!(tier.fig15_max_ases() <= tier.n_providers());
            assert!(tier.fig16_max_instances() > 0);
            assert!(tier.fig16_max_instances() <= tier.n_instances());
            assert_eq!(tier.table1_min_instances(), 8);
            assert!(tier.fig08_day_stride() >= 1);
            assert!(tier.scenario_shared_fate_groups() > 0);
            assert!(tier.scenario_shared_fate_groups() <= tier.n_providers());
            assert!(tier.scenario_cascade_buckets() > 0);
            assert!(tier.scenario_cascade_buckets() <= crate::time::WINDOW_DAYS as usize);
            assert!(tier.scenario_churn_steps() > 0);
            assert!(tier.scenario_churn_steps() <= tier.n_instances());
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", ScaleTier::Mid), "mid");
    }
}
