//! # fediscope-model
//!
//! Shared domain model for the fediscope toolkit: the vocabulary of the
//! IMC'19 Mastodon study expressed as Rust types.
//!
//! - [`ids`]: newtype identifiers for instances, users and ASes,
//! - [`time`]: the study's virtual clock (5-minute epochs across the
//!   2017-04-11 → 2018-07-27 measurement window) and civil-date conversion,
//! - [`taxonomy`]: the 15 instance categories of Fig. 3 and the 8 activity
//!   policies of Fig. 4,
//! - [`geo`]: countries, hosting providers (ASes) and synthetic IP blocks,
//! - [`certs`]: certificate authorities and certificate lifecycles (Fig. 9),
//! - [`instance`] / [`user`]: the core population records,
//! - [`schedule`]: per-instance availability schedules (sparse outage
//!   intervals) with cause tags,
//! - [`world`]: the fully-generated ground-truth world consumed by the
//!   simulator, the crawler and the analyses,
//! - [`datasets`]: the *measured* datasets a crawler produces (the study's
//!   "Instances", "Toots" and "Graphs" datasets),
//! - [`scale`]: named world-scale tiers (paper-2019 / mid / modern) shared
//!   by the generator, the analyses, and the benchmarks,
//! - [`traffic`]: tick-major toot-event arenas feeding the federation
//!   delivery simulator.
//!
//! The model deliberately distinguishes ground truth ([`world::World`]) from
//! measurement ([`datasets`]): the paper only ever sees the latter, and our
//! integration tests verify the crawler recovers the former.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certs;
pub mod datasets;
pub mod geo;
pub mod ids;
pub mod instance;
pub mod scale;
pub mod schedule;
pub mod taxonomy;
pub mod time;
pub mod traffic;
pub mod user;
pub mod world;

pub use certs::{Certificate, CertificateAuthority};
pub use geo::{Country, ProviderCatalog, ProviderInfo};
pub use ids::{AsId, InstanceId, UserId};
pub use instance::{Instance, Registration, Software};
pub use scale::ScaleTier;
pub use schedule::{AvailabilitySchedule, Outage, OutageCause};
pub use taxonomy::{Activity, Category, PolicySet};
pub use time::{Day, Epoch, EPOCHS_PER_DAY, WINDOW_DAYS, WINDOW_EPOCHS};
pub use traffic::TootArena;
pub use user::UserProfile;
pub use world::World;
