//! Per-instance availability schedules.
//!
//! The mnm.social feed is, per instance, a 15-month boolean time series at
//! 5-minute resolution (≈0.5B points in total). We store the equivalent
//! information sparsely: the instance's lifetime (creation day, optional
//! permanent retirement — the paper observes 21.3% of instances go offline
//! and never return) plus a sorted, non-overlapping list of [`Outage`]
//! intervals. Every derived quantity the paper uses (downtime fraction,
//! per-day downtime, continuous outage durations) is computed from this.
//!
//! Outages carry a ground-truth [`OutageCause`] so integration tests can
//! check that the *monitor* (which never sees causes) attributes failures
//! correctly.

use crate::time::{Day, Epoch, EPOCHS_PER_DAY, WINDOW_EPOCHS};
use serde::{Deserialize, Serialize};

/// Why an outage happened (ground truth; hidden from the measurement side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutageCause {
    /// Operator-level failure: crashed process, botched upgrade, unpaid bill…
    Organic,
    /// TLS certificate expired and nobody renewed it in time (Fig. 9b).
    CertExpiry,
    /// The hosting AS suffered a network-wide failure (Table 1).
    AsFailure,
    /// Scenario-engine provenance: a cert-lapse cascade step (the bitset-
    /// indexed Fig. 9b lapse model used as a correlated-failure trigger).
    CertLapseCascade,
    /// Scenario-engine provenance: a shared-fate event (AS-, hoster- or
    /// region-level correlated removal).
    SharedFate,
    /// Scenario-engine provenance: churn — the instance left (possibly to be
    /// reborn later in the scenario).
    Churn,
}

/// A continuous unavailability interval `[start, end)` in epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// First unavailable epoch.
    pub start: Epoch,
    /// First available epoch after the outage.
    pub end: Epoch,
    /// Ground-truth cause.
    pub cause: OutageCause,
}

impl Outage {
    /// Length in epochs.
    pub fn len_epochs(&self) -> u32 {
        self.end.0.saturating_sub(self.start.0)
    }

    /// Length in fractional days.
    pub fn len_days(&self) -> f64 {
        self.len_epochs() as f64 / EPOCHS_PER_DAY as f64
    }
}

/// The availability history of one instance over the measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilitySchedule {
    /// Day the instance first appeared.
    pub created: Day,
    /// Day the instance permanently disappeared, if it did.
    pub retired: Option<Day>,
    outages: Vec<Outage>,
}

impl AvailabilitySchedule {
    /// A schedule for an instance alive (and outage-free) for the whole window.
    pub fn always_up() -> Self {
        Self {
            created: Day(0),
            retired: None,
            outages: Vec::new(),
        }
    }

    /// Create an empty schedule with a lifetime.
    pub fn new(created: Day, retired: Option<Day>) -> Self {
        if let Some(r) = retired {
            assert!(r.0 >= created.0, "retired before created");
        }
        Self {
            created,
            retired,
            outages: Vec::new(),
        }
    }

    /// First epoch of existence.
    pub fn birth_epoch(&self) -> Epoch {
        self.created.start_epoch()
    }

    /// One-past-the-end epoch of existence (window end if not retired).
    pub fn death_epoch(&self) -> Epoch {
        self.retired
            .map(|d| d.start_epoch())
            .unwrap_or(Epoch(WINDOW_EPOCHS))
    }

    /// Lifetime length in epochs.
    pub fn lifetime_epochs(&self) -> u32 {
        self.death_epoch().0.saturating_sub(self.birth_epoch().0)
    }

    /// Add an outage, clipping it to the instance lifetime and merging with
    /// any overlapping/adjacent existing outage. When merged intervals have
    /// different causes the earliest-starting cause wins (a pragmatic rule;
    /// cause mixing is rare in generated schedules).
    pub fn add_outage(&mut self, start: Epoch, end: Epoch, cause: OutageCause) {
        let lo = self.birth_epoch().0.max(start.0);
        let hi = self.death_epoch().0.min(end.0).min(WINDOW_EPOCHS);
        if lo >= hi {
            return; // outside lifetime or empty
        }
        let mut new = Outage {
            start: Epoch(lo),
            end: Epoch(hi),
            cause,
        };
        // Find insertion window of overlapping-or-adjacent outages.
        let mut i = 0;
        let mut j = 0;
        for (k, o) in self.outages.iter().enumerate() {
            if o.end.0 < new.start.0 {
                i = k + 1;
                j = k + 1;
            } else if o.start.0 <= new.end.0 {
                j = k + 1;
            } else {
                break;
            }
        }
        for o in &self.outages[i..j] {
            if o.start.0 < new.start.0 {
                new.cause = o.cause;
                new.start = o.start;
            }
            if o.end.0 > new.end.0 {
                new.end = o.end;
            }
        }
        self.outages.splice(i..j, std::iter::once(new));
    }

    /// The outage list (sorted, non-overlapping, clipped to lifetime).
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Does the instance exist (created, not retired) at `t`?
    pub fn exists_at(&self, t: Epoch) -> bool {
        t >= self.birth_epoch() && t < self.death_epoch()
    }

    /// Is the instance reachable at `t`? (exists and not in an outage)
    pub fn is_up(&self, t: Epoch) -> bool {
        if !self.exists_at(t) {
            return false;
        }
        // binary search: last outage with start <= t
        let idx = self.outages.partition_point(|o| o.start.0 <= t.0);
        if idx == 0 {
            return true;
        }
        let o = &self.outages[idx - 1];
        t.0 >= o.end.0
    }

    /// Number of down epochs within `[from, to)`, counting only epochs where
    /// the instance exists.
    pub fn down_epochs_in(&self, from: Epoch, to: Epoch) -> u32 {
        let lo = from.0.max(self.birth_epoch().0);
        let hi = to.0.min(self.death_epoch().0);
        if lo >= hi {
            return 0;
        }
        let mut down = 0;
        for o in &self.outages {
            if o.end.0 <= lo {
                continue;
            }
            if o.start.0 >= hi {
                break;
            }
            down += o.end.0.min(hi) - o.start.0.max(lo);
        }
        down
    }

    /// Number of existing epochs within `[from, to)`.
    pub fn live_epochs_in(&self, from: Epoch, to: Epoch) -> u32 {
        let lo = from.0.max(self.birth_epoch().0);
        let hi = to.0.min(self.death_epoch().0);
        hi.saturating_sub(lo)
    }

    /// Lifetime downtime fraction (0 for instances with zero lifetime).
    pub fn downtime_fraction(&self) -> f64 {
        let life = self.lifetime_epochs();
        if life == 0 {
            return 0.0;
        }
        self.down_epochs_in(self.birth_epoch(), self.death_epoch()) as f64 / life as f64
    }

    /// Downtime fraction for one day; `None` if the instance does not exist
    /// for any part of that day.
    pub fn daily_downtime(&self, day: Day) -> Option<f64> {
        let live = self.live_epochs_in(day.start_epoch(), day.end_epoch());
        if live == 0 {
            return None;
        }
        let down = self.down_epochs_in(day.start_epoch(), day.end_epoch());
        Some(down as f64 / live as f64)
    }

    /// Whether the instance is down for the entirety of `day`.
    pub fn down_whole_day(&self, day: Day) -> bool {
        self.daily_downtime(day) == Some(1.0)
    }

    /// Total number of distinct outages.
    pub fn outage_count(&self) -> usize {
        self.outages.len()
    }
}

/// Columnar interval store for a whole instance population — the §4
/// telemetry engine's backing structure.
///
/// [`AvailabilitySchedule`] is the right shape for *building* one
/// instance's history (its `add_outage` merges and clips), but a
/// population-wide analysis pass over `Vec<AvailabilitySchedule>` chases a
/// heap pointer per instance. The arena lays the same information out as
/// CSR-by-instance columns:
///
/// ```text
///             offsets:  [0,      3,    3,         7, ...]   (n + 1)
///             starts:   [s s s | · · | s s s s | ...]
///             ends:     [e e e | · · | e e e e | ...]
///             causes:   [c c c | · · | c c c c | ...]
///  per-instance birth:  [b b b b ...]                       (n)
///  per-instance death:  [d d d d ...]                       (n)
/// ```
///
/// so a sweep streams sequentially through flat `u32` columns, and an
/// instance's history is a pair of slices ([`ScheduleView`]) rather than an
/// owned struct. Invariants per instance: outages sorted, strictly
/// separated (a ≥1-epoch up gap between consecutive outages), and clipped
/// to `[birth, death)` — the same invariants `AvailabilitySchedule`
/// maintains, enforced by [`OutageArenaBuilder`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutageArena {
    /// CSR offsets into the interval columns, length `len() + 1`.
    offsets: Vec<u32>,
    /// First unavailable epoch per interval.
    starts: Vec<Epoch>,
    /// First available epoch after each interval.
    ends: Vec<Epoch>,
    /// Ground-truth (or reconstructed) cause per interval.
    causes: Vec<OutageCause>,
    /// First epoch of existence per instance.
    birth: Vec<Epoch>,
    /// One-past-the-end epoch of existence per instance.
    death: Vec<Epoch>,
}

impl OutageArena {
    /// Start building an arena, with capacity hints.
    pub fn builder(n_instances: usize, n_outages: usize) -> OutageArenaBuilder {
        OutageArenaBuilder {
            arena: OutageArena {
                offsets: Vec::with_capacity(n_instances + 1),
                starts: Vec::with_capacity(n_outages),
                ends: Vec::with_capacity(n_outages),
                causes: Vec::with_capacity(n_outages),
                birth: Vec::with_capacity(n_instances),
                death: Vec::with_capacity(n_instances),
            },
        }
    }

    /// Build from borrowed schedules (instance order preserved).
    pub fn from_schedules(schedules: &[AvailabilitySchedule]) -> Self {
        let n_outages = schedules.iter().map(|s| s.outage_count()).sum();
        let mut b = Self::builder(schedules.len(), n_outages);
        for s in schedules {
            b.push_schedule(s);
        }
        b.finish()
    }

    /// Build by draining a schedule stream: each schedule's intervals are
    /// appended to the columns and the schedule is dropped before the next
    /// one is pulled, so the peak cost is the arena plus one schedule.
    pub fn from_schedule_iter(schedules: impl IntoIterator<Item = AvailabilitySchedule>) -> Self {
        let iter = schedules.into_iter();
        let mut b = Self::builder(iter.size_hint().0, 0);
        for s in iter {
            b.push_schedule(&s);
        }
        b.finish()
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.birth.len()
    }

    /// True when the arena holds no instances.
    pub fn is_empty(&self) -> bool {
        self.birth.is_empty()
    }

    /// Total interval count across all instances.
    pub fn n_outages(&self) -> usize {
        self.starts.len()
    }

    /// Borrowed view of one instance's history.
    pub fn view(&self, i: usize) -> ScheduleView<'_> {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        ScheduleView {
            birth: self.birth[i],
            death: self.death[i],
            starts: &self.starts[lo..hi],
            ends: &self.ends[lo..hi],
            causes: &self.causes[lo..hi],
        }
    }

    /// Views of every instance, in instance order.
    pub fn views(&self) -> impl Iterator<Item = ScheduleView<'_>> {
        (0..self.len()).map(|i| self.view(i))
    }

    /// Build an arena from an **unsorted** interval stream — the ingest path
    /// for crawlers and overlay generators that observe outages in arrival
    /// order, not instance-then-start order.
    ///
    /// `lifetimes[i]` is instance `i`'s `[birth, death)`; each raw interval
    /// is `(instance, start, end, cause)` in any order, overlapping freely.
    /// The build is two linear passes (counting sort by instance, stable on
    /// input order) plus a per-instance sort + merge, so a pre-sorted
    /// producer is never required and never faster.
    ///
    /// The result is **bit-identical** to routing the same stream through
    /// [`AvailabilitySchedule::add_outage`] in input order and then
    /// [`OutageArena::from_schedules`] (proptest-enforced): intervals are
    /// clipped to the lifetime and the measurement window, empty intervals
    /// are dropped, overlapping/adjacent intervals merge, and a merged
    /// interval's cause is that of its earliest-starting member — with the
    /// later-arriving interval winning a start-epoch tie, exactly like
    /// repeated `add_outage` calls.
    pub fn from_unsorted(
        lifetimes: &[(Epoch, Epoch)],
        intervals: impl IntoIterator<Item = (u32, Epoch, Epoch, OutageCause)>,
    ) -> Self {
        let n = lifetimes.len();
        for &(birth, death) in lifetimes {
            assert!(birth.0 <= death.0, "birth after death");
        }
        // Pass 0: clip to lifetime + window (the add_outage rule), dropping
        // empties, so the sort only handles surviving intervals.
        let mut raw: Vec<(u32, u32, u32, OutageCause)> = Vec::new();
        for (inst, start, end, cause) in intervals {
            let i = inst as usize;
            assert!(i < n, "interval for unknown instance {inst}");
            let (birth, death) = lifetimes[i];
            let lo = birth.0.max(start.0);
            let hi = death.0.min(end.0).min(WINDOW_EPOCHS);
            if lo < hi {
                raw.push((inst, lo, hi, cause));
            }
        }
        // Pass 1+2: counting sort by instance, stable on arrival order.
        let mut counts = vec![0u32; n + 1];
        for &(inst, ..) in &raw {
            counts[inst as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut grouped: Vec<(u32, u32, OutageCause)> =
            vec![(0, 0, OutageCause::Organic); raw.len()];
        let mut cursor = counts.clone();
        for &(inst, lo, hi, cause) in &raw {
            let c = &mut cursor[inst as usize];
            grouped[*c as usize] = (lo, hi, cause);
            *c += 1;
        }
        drop(raw);
        // Per instance: stable sort by start (ties keep arrival order, so
        // the cause tie-break below reproduces add_outage's last-arrival
        // rule), then a single merging walk.
        let mut b = Self::builder(n, grouped.len());
        for (i, &(birth, death)) in lifetimes.iter().enumerate() {
            b.push_instance(birth, death);
            let slice = &mut grouped[counts[i] as usize..counts[i + 1] as usize];
            slice.sort_by_key(|&(lo, ..)| lo);
            let mut iter = slice.iter().copied();
            let Some((mut lo, mut hi, mut cause)) = iter.next() else {
                continue;
            };
            for (nlo, nhi, ncause) in iter {
                if nlo <= hi {
                    // Overlapping or touching: extend. A start-epoch tie
                    // hands the cause to the later arrival (add_outage's
                    // strict `<` comparison does the same).
                    if nlo == lo {
                        cause = ncause;
                    }
                    hi = hi.max(nhi);
                } else {
                    b.push_outage(Epoch(lo), Epoch(hi), cause);
                    (lo, hi, cause) = (nlo, nhi, ncause);
                }
            }
            b.push_outage(Epoch(lo), Epoch(hi), cause);
        }
        b.finish()
    }
}

/// Streaming builder for [`OutageArena`]: push instances in order, then
/// intervals for the *current* instance in ascending order.
#[derive(Debug)]
pub struct OutageArenaBuilder {
    arena: OutageArena,
}

impl OutageArenaBuilder {
    /// Begin the next instance with lifetime `[birth, death)`. Returns its
    /// index.
    pub fn push_instance(&mut self, birth: Epoch, death: Epoch) -> usize {
        assert!(birth.0 <= death.0, "birth after death");
        self.arena.birth.push(birth);
        self.arena.death.push(death);
        self.arena.offsets.push(self.arena.starts.len() as u32);
        self.arena.birth.len() - 1
    }

    /// Append one outage to the most recently pushed instance. Intervals
    /// must arrive sorted, strictly separated (`start > previous end`), and
    /// inside the instance lifetime — the invariants every
    /// [`AvailabilitySchedule`] already guarantees.
    pub fn push_outage(&mut self, start: Epoch, end: Epoch, cause: OutageCause) {
        let i = self.arena.birth.len().checked_sub(1).expect("no instance pushed");
        assert!(start.0 < end.0, "empty outage");
        assert!(
            start.0 >= self.arena.birth[i].0 && end.0 <= self.arena.death[i].0,
            "outage outside lifetime"
        );
        let lo = self.arena.offsets[i] as usize;
        if let Some(prev_end) = self.arena.ends.get(lo..).and_then(|s| s.last()) {
            assert!(start.0 > prev_end.0, "outages must be strictly separated");
        }
        self.arena.starts.push(start);
        self.arena.ends.push(end);
        self.arena.causes.push(cause);
    }

    /// Append a whole schedule as the next instance.
    pub fn push_schedule(&mut self, s: &AvailabilitySchedule) {
        self.push_instance(s.birth_epoch(), s.death_epoch());
        for o in s.outages() {
            self.push_outage(o.start, o.end, o.cause);
        }
    }

    /// Finish: seal the offsets and return the arena.
    pub fn finish(mut self) -> OutageArena {
        self.arena.offsets.push(self.arena.starts.len() as u32);
        // The builder pushes one offset *before* each instance's intervals
        // plus the final seal, so offsets[i] is the start of instance i's
        // range and offsets[i+1] its end.
        debug_assert_eq!(self.arena.offsets.len(), self.arena.birth.len() + 1);
        self.arena
    }
}

/// Borrowed per-instance availability history — the arena-side equivalent
/// of [`AvailabilitySchedule`]. Every query below evaluates the *same
/// expressions* as its schedule counterpart, so derived floats are
/// bit-identical between the two representations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleView<'a> {
    /// First epoch of existence.
    pub birth: Epoch,
    /// One-past-the-end epoch of existence.
    pub death: Epoch,
    /// Outage start epochs (sorted, strictly separated).
    pub starts: &'a [Epoch],
    /// Outage end epochs (aligned with `starts`).
    pub ends: &'a [Epoch],
    /// Outage causes (aligned with `starts`).
    pub causes: &'a [OutageCause],
}

impl ScheduleView<'_> {
    /// Lifetime length in epochs.
    pub fn lifetime_epochs(&self) -> u32 {
        self.death.0.saturating_sub(self.birth.0)
    }

    /// Number of distinct outages.
    pub fn outage_count(&self) -> usize {
        self.starts.len()
    }

    /// Reassemble outage `k` as an owned [`Outage`].
    pub fn outage(&self, k: usize) -> Outage {
        Outage {
            start: self.starts[k],
            end: self.ends[k],
            cause: self.causes[k],
        }
    }

    /// Does the instance exist (created, not retired) at `t`?
    pub fn exists_at(&self, t: Epoch) -> bool {
        t >= self.birth && t < self.death
    }

    /// Is the instance reachable at `t`? (exists and not in an outage)
    pub fn is_up(&self, t: Epoch) -> bool {
        if !self.exists_at(t) {
            return false;
        }
        let idx = self.starts.partition_point(|s| s.0 <= t.0);
        if idx == 0 {
            return true;
        }
        t.0 >= self.ends[idx - 1].0
    }

    /// Number of down epochs within `[from, to)`, counting only epochs
    /// where the instance exists. Mirrors
    /// [`AvailabilitySchedule::down_epochs_in`].
    pub fn down_epochs_in(&self, from: Epoch, to: Epoch) -> u32 {
        let lo = from.0.max(self.birth.0);
        let hi = to.0.min(self.death.0);
        if lo >= hi {
            return 0;
        }
        let mut down = 0;
        for (s, e) in self.starts.iter().zip(self.ends.iter()) {
            if e.0 <= lo {
                continue;
            }
            if s.0 >= hi {
                break;
            }
            down += e.0.min(hi) - s.0.max(lo);
        }
        down
    }

    /// Number of existing epochs within `[from, to)`.
    pub fn live_epochs_in(&self, from: Epoch, to: Epoch) -> u32 {
        let lo = from.0.max(self.birth.0);
        let hi = to.0.min(self.death.0);
        hi.saturating_sub(lo)
    }

    /// Lifetime downtime fraction (0 for instances with zero lifetime).
    pub fn downtime_fraction(&self) -> f64 {
        let life = self.lifetime_epochs();
        if life == 0 {
            return 0.0;
        }
        self.down_epochs_in(self.birth, self.death) as f64 / life as f64
    }

    /// Downtime fraction for one day; `None` if the instance does not exist
    /// for any part of that day.
    pub fn daily_downtime(&self, day: Day) -> Option<f64> {
        let live = self.live_epochs_in(day.start_epoch(), day.end_epoch());
        if live == 0 {
            return None;
        }
        let down = self.down_epochs_in(day.start_epoch(), day.end_epoch());
        Some(down as f64 / live as f64)
    }

    /// Whether the instance is down for the entirety of `day`.
    pub fn down_whole_day(&self, day: Day) -> bool {
        self.daily_downtime(day) == Some(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> AvailabilitySchedule {
        AvailabilitySchedule::new(Day(0), None)
    }

    #[test]
    fn fresh_schedule_is_up_everywhere() {
        let s = sched();
        assert!(s.is_up(Epoch(0)));
        assert!(s.is_up(Epoch(WINDOW_EPOCHS - 1)));
        assert_eq!(s.downtime_fraction(), 0.0);
    }

    #[test]
    fn outage_marks_down() {
        let mut s = sched();
        s.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        assert!(s.is_up(Epoch(99)));
        assert!(!s.is_up(Epoch(100)));
        assert!(!s.is_up(Epoch(199)));
        assert!(s.is_up(Epoch(200)));
        assert_eq!(s.outage_count(), 1);
        assert_eq!(s.down_epochs_in(Epoch(0), Epoch(1000)), 100);
    }

    #[test]
    fn overlapping_outages_merge() {
        let mut s = sched();
        s.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        s.add_outage(Epoch(150), Epoch(250), OutageCause::AsFailure);
        assert_eq!(s.outage_count(), 1);
        let o = s.outages()[0];
        assert_eq!((o.start, o.end), (Epoch(100), Epoch(250)));
        // earliest-start cause wins
        assert_eq!(o.cause, OutageCause::Organic);
    }

    #[test]
    fn touching_outages_merge() {
        let mut s = sched();
        s.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        s.add_outage(Epoch(200), Epoch(300), OutageCause::Organic);
        assert_eq!(s.outage_count(), 1);
        assert_eq!(s.outages()[0].len_epochs(), 200);
    }

    #[test]
    fn disjoint_outages_stay_separate() {
        let mut s = sched();
        s.add_outage(Epoch(300), Epoch(400), OutageCause::Organic);
        s.add_outage(Epoch(100), Epoch(200), OutageCause::CertExpiry);
        assert_eq!(s.outage_count(), 2);
        assert_eq!(s.outages()[0].start, Epoch(100));
        assert_eq!(s.outages()[1].start, Epoch(300));
    }

    #[test]
    fn outage_clipped_to_lifetime() {
        let mut s = AvailabilitySchedule::new(Day(10), Some(Day(20)));
        s.add_outage(Epoch(0), Epoch(WINDOW_EPOCHS), OutageCause::Organic);
        assert_eq!(s.outage_count(), 1);
        let o = s.outages()[0];
        assert_eq!(o.start, Day(10).start_epoch());
        assert_eq!(o.end, Day(20).start_epoch());
        assert_eq!(s.downtime_fraction(), 1.0);
    }

    #[test]
    fn existence_bounds() {
        let s = AvailabilitySchedule::new(Day(10), Some(Day(20)));
        assert!(!s.exists_at(Epoch(0)));
        assert!(!s.is_up(Epoch(0)));
        assert!(s.is_up(Day(10).start_epoch()));
        assert!(s.is_up(Epoch(Day(20).start_epoch().0 - 1)));
        assert!(!s.exists_at(Day(20).start_epoch()));
    }

    #[test]
    fn daily_downtime_accounting() {
        let mut s = sched();
        // Half of day 1 down.
        let d1 = Day(1);
        s.add_outage(
            d1.start_epoch(),
            Epoch(d1.start_epoch().0 + EPOCHS_PER_DAY / 2),
            OutageCause::Organic,
        );
        assert_eq!(s.daily_downtime(Day(0)), Some(0.0));
        assert_eq!(s.daily_downtime(d1), Some(0.5));
        assert!(!s.down_whole_day(d1));
    }

    #[test]
    fn daily_downtime_none_before_creation() {
        let s = AvailabilitySchedule::new(Day(5), None);
        assert_eq!(s.daily_downtime(Day(4)), None);
        assert_eq!(s.daily_downtime(Day(5)), Some(0.0));
    }

    #[test]
    fn whole_day_outage_detected() {
        let mut s = sched();
        s.add_outage(Day(3).start_epoch(), Day(5).start_epoch(), OutageCause::Organic);
        assert!(s.down_whole_day(Day(3)));
        assert!(s.down_whole_day(Day(4)));
        assert!(!s.down_whole_day(Day(5)));
    }

    #[test]
    fn downtime_fraction_matches_hand_count() {
        let mut s = AvailabilitySchedule::new(Day(0), Some(Day(10)));
        s.add_outage(Epoch(0), Epoch(288), OutageCause::Organic); // 1 day of 10
        assert!((s.downtime_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_length_outage_ignored() {
        let mut s = sched();
        s.add_outage(Epoch(5), Epoch(5), OutageCause::Organic);
        assert_eq!(s.outage_count(), 0);
    }

    #[test]
    fn arena_round_trips_schedules() {
        let mut a = AvailabilitySchedule::new(Day(0), None);
        a.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        a.add_outage(Epoch(500), Epoch(900), OutageCause::CertExpiry);
        let b = AvailabilitySchedule::new(Day(3), Some(Day(40)));
        let mut c = AvailabilitySchedule::new(Day(10), Some(Day(20)));
        c.add_outage(Epoch(0), Epoch(WINDOW_EPOCHS), OutageCause::AsFailure);
        let schedules = vec![a, b, c];

        let arena = OutageArena::from_schedules(&schedules);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.n_outages(), 3);
        for (s, v) in schedules.iter().zip(arena.views()) {
            assert_eq!(v.birth, s.birth_epoch());
            assert_eq!(v.death, s.death_epoch());
            assert_eq!(v.outage_count(), s.outage_count());
            for (k, o) in s.outages().iter().enumerate() {
                assert_eq!(v.outage(k), *o);
            }
            assert_eq!(v.downtime_fraction(), s.downtime_fraction());
        }
        // the draining constructor builds the identical arena
        assert_eq!(OutageArena::from_schedule_iter(schedules), arena);
    }

    #[test]
    fn empty_arena() {
        let arena = OutageArena::from_schedules(&[]);
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
        assert_eq!(arena.n_outages(), 0);
        assert_eq!(arena.views().count(), 0);
    }

    #[test]
    fn view_queries_match_schedule_queries() {
        let mut s = AvailabilitySchedule::new(Day(2), Some(Day(9)));
        s.add_outage(Epoch(600), Epoch(700), OutageCause::Organic);
        s.add_outage(Epoch(900), Epoch(1400), OutageCause::Organic);
        let arena = OutageArena::from_schedules(std::slice::from_ref(&s));
        let v = arena.view(0);
        assert_eq!(v.lifetime_epochs(), s.lifetime_epochs());
        for e in [0u32, 576, 599, 600, 650, 700, 899, 1000, 1399, 1400, 2600] {
            assert_eq!(v.is_up(Epoch(e)), s.is_up(Epoch(e)), "epoch {e}");
            assert_eq!(v.exists_at(Epoch(e)), s.exists_at(Epoch(e)), "epoch {e}");
        }
        for d in 0..12u32 {
            assert_eq!(v.daily_downtime(Day(d)), s.daily_downtime(Day(d)), "day {d}");
            assert_eq!(v.down_whole_day(Day(d)), s.down_whole_day(Day(d)), "day {d}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly separated")]
    fn builder_rejects_adjacent_outages() {
        let mut b = OutageArena::builder(1, 2);
        b.push_instance(Epoch(0), Epoch(1000));
        b.push_outage(Epoch(10), Epoch(20), OutageCause::Organic);
        b.push_outage(Epoch(20), Epoch(30), OutageCause::Organic);
    }

    #[test]
    #[should_panic(expected = "outside lifetime")]
    fn builder_rejects_outage_outside_lifetime() {
        let mut b = OutageArena::builder(1, 1);
        b.push_instance(Epoch(100), Epoch(200));
        b.push_outage(Epoch(50), Epoch(150), OutageCause::Organic);
    }

    #[test]
    fn from_unsorted_matches_schedule_route() {
        // Intervals arrive interleaved across instances, out of order, and
        // overlapping; the counting-sort ingest must equal the add_outage
        // route exactly.
        let stream = [
            (1u32, Epoch(300), Epoch(400), OutageCause::AsFailure),
            (0, Epoch(100), Epoch(200), OutageCause::Organic),
            (1, Epoch(50), Epoch(310), OutageCause::CertExpiry),
            (0, Epoch(150), Epoch(250), OutageCause::AsFailure),
            (2, Epoch(0), Epoch(WINDOW_EPOCHS), OutageCause::Organic),
            (0, Epoch(900), Epoch(950), OutageCause::CertExpiry),
        ];
        let lifetimes = [
            (Epoch(0), Epoch(WINDOW_EPOCHS)),
            (Epoch(0), Epoch(WINDOW_EPOCHS)),
            (Day(10).start_epoch(), Day(20).start_epoch()),
        ];
        let mut schedules: Vec<AvailabilitySchedule> = vec![
            AvailabilitySchedule::new(Day(0), None),
            AvailabilitySchedule::new(Day(0), None),
            AvailabilitySchedule::new(Day(10), Some(Day(20))),
        ];
        for &(inst, s, e, c) in &stream {
            schedules[inst as usize].add_outage(s, e, c);
        }
        let via_schedules = OutageArena::from_schedules(&schedules);
        let via_unsorted = OutageArena::from_unsorted(&lifetimes, stream.iter().copied());
        assert_eq!(via_unsorted, via_schedules);
        // merged as expected
        assert_eq!(via_unsorted.view(0).outage_count(), 2);
        assert_eq!(via_unsorted.view(1).outage_count(), 1);
        assert_eq!(via_unsorted.view(1).outage(0).cause, OutageCause::CertExpiry);
    }

    #[test]
    fn from_unsorted_empty_and_out_of_lifetime() {
        let lifetimes = [(Epoch(100), Epoch(200))];
        let arena = OutageArena::from_unsorted(
            &lifetimes,
            [
                (0u32, Epoch(10), Epoch(50), OutageCause::Organic), // before birth
                (0, Epoch(500), Epoch(600), OutageCause::Organic),  // after death
                (0, Epoch(150), Epoch(150), OutageCause::Organic),  // empty
            ],
        );
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.n_outages(), 0);
    }

    #[test]
    fn cascade_causes_round_trip_through_from_unsorted() {
        // The scenario engine tags intervals with cascade-provenance causes;
        // they must survive the counting-sort ingest (including the merge
        // tie-breaks) exactly like the original three causes.
        let lifetimes = [(Epoch(0), Epoch(WINDOW_EPOCHS)); 3];
        let stream = [
            (0u32, Epoch(100), Epoch(200), OutageCause::CertLapseCascade),
            (1, Epoch(50), Epoch(80), OutageCause::SharedFate),
            (2, Epoch(10), Epoch(40), OutageCause::Churn),
            // overlaps the cascade interval, starts later: earliest-start
            // cause (CertLapseCascade) must win the merge.
            (0, Epoch(150), Epoch(300), OutageCause::Organic),
        ];
        let arena = OutageArena::from_unsorted(&lifetimes, stream.iter().copied());
        assert_eq!(arena.view(0).outage_count(), 1);
        assert_eq!(arena.view(0).outage(0).cause, OutageCause::CertLapseCascade);
        assert_eq!(arena.view(1).outage(0).cause, OutageCause::SharedFate);
        assert_eq!(arena.view(2).outage(0).cause, OutageCause::Churn);
        // and the schedule route agrees (the proptest covers the general
        // case; this pins the new variants concretely).
        let mut schedules: Vec<AvailabilitySchedule> =
            (0..3).map(|_| AvailabilitySchedule::new(Day(0), None)).collect();
        for &(inst, s, e, c) in &stream {
            schedules[inst as usize].add_outage(s, e, c);
        }
        assert_eq!(arena, OutageArena::from_schedules(&schedules));
    }

    #[test]
    #[should_panic(expected = "unknown instance")]
    fn from_unsorted_rejects_unknown_instance() {
        let _ = OutageArena::from_unsorted(
            &[(Epoch(0), Epoch(100))],
            [(3u32, Epoch(1), Epoch(2), OutageCause::Organic)],
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference implementation: dense boolean array.
    fn dense(s: &AvailabilitySchedule, n: u32) -> Vec<bool> {
        (0..n).map(|e| s.is_up(Epoch(e))).collect()
    }

    proptest! {
        /// After arbitrary outage insertion the interval list is sorted,
        /// non-overlapping, non-adjacent, and agrees with a dense rebuild.
        #[test]
        fn interval_invariants(
            ivs in proptest::collection::vec((0u32..2000, 0u32..2000), 0..40)
        ) {
            let mut s = AvailabilitySchedule::new(Day(0), None);
            let mut reference = vec![true; 2048];
            for &(a, b) in &ivs {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                s.add_outage(Epoch(lo), Epoch(hi), OutageCause::Organic);
                for e in lo..hi {
                    reference[e as usize] = false;
                }
            }
            // sorted + gaps between outages
            for w in s.outages().windows(2) {
                prop_assert!(w[0].end.0 < w[1].start.0, "not separated: {w:?}");
            }
            // dense equivalence
            let got = dense(&s, 2048);
            prop_assert_eq!(got, reference);
        }

        /// Arena views answer `down_epochs_in` / `daily_downtime` (and the
        /// derived lifetime fraction) bit-identically to the schedules they
        /// were built from, over random interval soups and random query
        /// ranges.
        #[test]
        fn arena_matches_schedule_queries(
            per_inst in proptest::collection::vec(
                // retirement day, with values ≥ 472 decoding to "never"
                (0u32..470, 0u32..900,
                 proptest::collection::vec((0u32..135_000, 1u32..4_000), 0..12)),
                0..8),
            from in 0u32..WINDOW_EPOCHS, to in 0u32..WINDOW_EPOCHS,
            day in 0u32..472
        ) {
            let mut schedules = Vec::new();
            for (created, retired, ivs) in per_inst {
                let retired = (retired < 472).then(|| Day(created.max(retired)));
                let mut s = AvailabilitySchedule::new(Day(created), retired);
                for &(start, len) in &ivs {
                    s.add_outage(Epoch(start), Epoch(start + len), OutageCause::Organic);
                }
                schedules.push(s);
            }
            let arena = OutageArena::from_schedules(&schedules);
            prop_assert_eq!(arena.len(), schedules.len());
            for (s, v) in schedules.iter().zip(arena.views()) {
                prop_assert_eq!(
                    v.down_epochs_in(Epoch(from), Epoch(to)),
                    s.down_epochs_in(Epoch(from), Epoch(to))
                );
                prop_assert_eq!(
                    v.live_epochs_in(Epoch(from), Epoch(to)),
                    s.live_epochs_in(Epoch(from), Epoch(to))
                );
                prop_assert_eq!(v.daily_downtime(Day(day)), s.daily_downtime(Day(day)));
                // bit-identical, not approximately equal
                prop_assert_eq!(
                    v.downtime_fraction().to_bits(),
                    s.downtime_fraction().to_bits()
                );
            }
        }

        /// The counting-sort ingest of an arbitrary unsorted interval soup
        /// is bit-identical to inserting the same stream through
        /// `add_outage` (in arrival order) and building from schedules —
        /// including merge extents and cause tie-breaks.
        #[test]
        fn unsorted_ingest_matches_sorted_build(
            n_inst in 1usize..7,
            stream in proptest::collection::vec(
                (0u32..7, 0u32..3_000, 0u32..3_000, 0usize..6), 0..60),
            lives in proptest::collection::vec((0u32..9, 0u32..12), 7),
        ) {
            let causes = [OutageCause::Organic, OutageCause::CertExpiry,
                          OutageCause::AsFailure, OutageCause::CertLapseCascade,
                          OutageCause::SharedFate, OutageCause::Churn];
            let mut schedules = Vec::new();
            let mut lifetimes = Vec::new();
            for &(created, retired) in lives.iter().take(n_inst) {
                // values ≥ 10 decode to "never retired"
                let retired = (retired < 10).then(|| Day(created.max(retired)));
                let s = AvailabilitySchedule::new(Day(created), retired);
                lifetimes.push((s.birth_epoch(), s.death_epoch()));
                schedules.push(s);
            }
            let stream: Vec<(u32, Epoch, Epoch, OutageCause)> = stream
                .into_iter()
                .map(|(inst, a, b, c)| {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    (inst % n_inst as u32, Epoch(lo), Epoch(hi), causes[c])
                })
                .collect();
            for &(inst, s, e, c) in &stream {
                schedules[inst as usize].add_outage(s, e, c);
            }
            let sorted_build = OutageArena::from_schedules(&schedules);
            let unsorted_build =
                OutageArena::from_unsorted(&lifetimes, stream.iter().copied());
            prop_assert_eq!(unsorted_build, sorted_build);
        }

        /// down + up epochs == live epochs over any range.
        #[test]
        fn conservation(
            ivs in proptest::collection::vec((0u32..2000, 0u32..2000), 0..20),
            from in 0u32..2000, to in 0u32..2000
        ) {
            let mut s = AvailabilitySchedule::new(Day(0), None);
            for &(a, b) in &ivs {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                s.add_outage(Epoch(lo), Epoch(hi), OutageCause::Organic);
            }
            let (f, t) = if from <= to { (from, to) } else { (to, from) };
            let down = s.down_epochs_in(Epoch(f), Epoch(t));
            let live = s.live_epochs_in(Epoch(f), Epoch(t));
            let up = (f..t).filter(|&e| s.is_up(Epoch(e))).count() as u32;
            prop_assert_eq!(down + up, live);
        }
    }
}
