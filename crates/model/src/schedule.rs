//! Per-instance availability schedules.
//!
//! The mnm.social feed is, per instance, a 15-month boolean time series at
//! 5-minute resolution (≈0.5B points in total). We store the equivalent
//! information sparsely: the instance's lifetime (creation day, optional
//! permanent retirement — the paper observes 21.3% of instances go offline
//! and never return) plus a sorted, non-overlapping list of [`Outage`]
//! intervals. Every derived quantity the paper uses (downtime fraction,
//! per-day downtime, continuous outage durations) is computed from this.
//!
//! Outages carry a ground-truth [`OutageCause`] so integration tests can
//! check that the *monitor* (which never sees causes) attributes failures
//! correctly.

use crate::time::{Day, Epoch, EPOCHS_PER_DAY, WINDOW_EPOCHS};
use serde::{Deserialize, Serialize};

/// Why an outage happened (ground truth; hidden from the measurement side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutageCause {
    /// Operator-level failure: crashed process, botched upgrade, unpaid bill…
    Organic,
    /// TLS certificate expired and nobody renewed it in time (Fig. 9b).
    CertExpiry,
    /// The hosting AS suffered a network-wide failure (Table 1).
    AsFailure,
}

/// A continuous unavailability interval `[start, end)` in epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// First unavailable epoch.
    pub start: Epoch,
    /// First available epoch after the outage.
    pub end: Epoch,
    /// Ground-truth cause.
    pub cause: OutageCause,
}

impl Outage {
    /// Length in epochs.
    pub fn len_epochs(&self) -> u32 {
        self.end.0.saturating_sub(self.start.0)
    }

    /// Length in fractional days.
    pub fn len_days(&self) -> f64 {
        self.len_epochs() as f64 / EPOCHS_PER_DAY as f64
    }
}

/// The availability history of one instance over the measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilitySchedule {
    /// Day the instance first appeared.
    pub created: Day,
    /// Day the instance permanently disappeared, if it did.
    pub retired: Option<Day>,
    outages: Vec<Outage>,
}

impl AvailabilitySchedule {
    /// A schedule for an instance alive (and outage-free) for the whole window.
    pub fn always_up() -> Self {
        Self {
            created: Day(0),
            retired: None,
            outages: Vec::new(),
        }
    }

    /// Create an empty schedule with a lifetime.
    pub fn new(created: Day, retired: Option<Day>) -> Self {
        if let Some(r) = retired {
            assert!(r.0 >= created.0, "retired before created");
        }
        Self {
            created,
            retired,
            outages: Vec::new(),
        }
    }

    /// First epoch of existence.
    pub fn birth_epoch(&self) -> Epoch {
        self.created.start_epoch()
    }

    /// One-past-the-end epoch of existence (window end if not retired).
    pub fn death_epoch(&self) -> Epoch {
        self.retired
            .map(|d| d.start_epoch())
            .unwrap_or(Epoch(WINDOW_EPOCHS))
    }

    /// Lifetime length in epochs.
    pub fn lifetime_epochs(&self) -> u32 {
        self.death_epoch().0.saturating_sub(self.birth_epoch().0)
    }

    /// Add an outage, clipping it to the instance lifetime and merging with
    /// any overlapping/adjacent existing outage. When merged intervals have
    /// different causes the earliest-starting cause wins (a pragmatic rule;
    /// cause mixing is rare in generated schedules).
    pub fn add_outage(&mut self, start: Epoch, end: Epoch, cause: OutageCause) {
        let lo = self.birth_epoch().0.max(start.0);
        let hi = self.death_epoch().0.min(end.0).min(WINDOW_EPOCHS);
        if lo >= hi {
            return; // outside lifetime or empty
        }
        let mut new = Outage {
            start: Epoch(lo),
            end: Epoch(hi),
            cause,
        };
        // Find insertion window of overlapping-or-adjacent outages.
        let mut i = 0;
        let mut j = 0;
        for (k, o) in self.outages.iter().enumerate() {
            if o.end.0 < new.start.0 {
                i = k + 1;
                j = k + 1;
            } else if o.start.0 <= new.end.0 {
                j = k + 1;
            } else {
                break;
            }
        }
        for o in &self.outages[i..j] {
            if o.start.0 < new.start.0 {
                new.cause = o.cause;
                new.start = o.start;
            }
            if o.end.0 > new.end.0 {
                new.end = o.end;
            }
        }
        self.outages.splice(i..j, std::iter::once(new));
    }

    /// The outage list (sorted, non-overlapping, clipped to lifetime).
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Does the instance exist (created, not retired) at `t`?
    pub fn exists_at(&self, t: Epoch) -> bool {
        t >= self.birth_epoch() && t < self.death_epoch()
    }

    /// Is the instance reachable at `t`? (exists and not in an outage)
    pub fn is_up(&self, t: Epoch) -> bool {
        if !self.exists_at(t) {
            return false;
        }
        // binary search: last outage with start <= t
        let idx = self.outages.partition_point(|o| o.start.0 <= t.0);
        if idx == 0 {
            return true;
        }
        let o = &self.outages[idx - 1];
        t.0 >= o.end.0
    }

    /// Number of down epochs within `[from, to)`, counting only epochs where
    /// the instance exists.
    pub fn down_epochs_in(&self, from: Epoch, to: Epoch) -> u32 {
        let lo = from.0.max(self.birth_epoch().0);
        let hi = to.0.min(self.death_epoch().0);
        if lo >= hi {
            return 0;
        }
        let mut down = 0;
        for o in &self.outages {
            if o.end.0 <= lo {
                continue;
            }
            if o.start.0 >= hi {
                break;
            }
            down += o.end.0.min(hi) - o.start.0.max(lo);
        }
        down
    }

    /// Number of existing epochs within `[from, to)`.
    pub fn live_epochs_in(&self, from: Epoch, to: Epoch) -> u32 {
        let lo = from.0.max(self.birth_epoch().0);
        let hi = to.0.min(self.death_epoch().0);
        hi.saturating_sub(lo)
    }

    /// Lifetime downtime fraction (0 for instances with zero lifetime).
    pub fn downtime_fraction(&self) -> f64 {
        let life = self.lifetime_epochs();
        if life == 0 {
            return 0.0;
        }
        self.down_epochs_in(self.birth_epoch(), self.death_epoch()) as f64 / life as f64
    }

    /// Downtime fraction for one day; `None` if the instance does not exist
    /// for any part of that day.
    pub fn daily_downtime(&self, day: Day) -> Option<f64> {
        let live = self.live_epochs_in(day.start_epoch(), day.end_epoch());
        if live == 0 {
            return None;
        }
        let down = self.down_epochs_in(day.start_epoch(), day.end_epoch());
        Some(down as f64 / live as f64)
    }

    /// Whether the instance is down for the entirety of `day`.
    pub fn down_whole_day(&self, day: Day) -> bool {
        self.daily_downtime(day) == Some(1.0)
    }

    /// Total number of distinct outages.
    pub fn outage_count(&self) -> usize {
        self.outages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> AvailabilitySchedule {
        AvailabilitySchedule::new(Day(0), None)
    }

    #[test]
    fn fresh_schedule_is_up_everywhere() {
        let s = sched();
        assert!(s.is_up(Epoch(0)));
        assert!(s.is_up(Epoch(WINDOW_EPOCHS - 1)));
        assert_eq!(s.downtime_fraction(), 0.0);
    }

    #[test]
    fn outage_marks_down() {
        let mut s = sched();
        s.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        assert!(s.is_up(Epoch(99)));
        assert!(!s.is_up(Epoch(100)));
        assert!(!s.is_up(Epoch(199)));
        assert!(s.is_up(Epoch(200)));
        assert_eq!(s.outage_count(), 1);
        assert_eq!(s.down_epochs_in(Epoch(0), Epoch(1000)), 100);
    }

    #[test]
    fn overlapping_outages_merge() {
        let mut s = sched();
        s.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        s.add_outage(Epoch(150), Epoch(250), OutageCause::AsFailure);
        assert_eq!(s.outage_count(), 1);
        let o = s.outages()[0];
        assert_eq!((o.start, o.end), (Epoch(100), Epoch(250)));
        // earliest-start cause wins
        assert_eq!(o.cause, OutageCause::Organic);
    }

    #[test]
    fn touching_outages_merge() {
        let mut s = sched();
        s.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        s.add_outage(Epoch(200), Epoch(300), OutageCause::Organic);
        assert_eq!(s.outage_count(), 1);
        assert_eq!(s.outages()[0].len_epochs(), 200);
    }

    #[test]
    fn disjoint_outages_stay_separate() {
        let mut s = sched();
        s.add_outage(Epoch(300), Epoch(400), OutageCause::Organic);
        s.add_outage(Epoch(100), Epoch(200), OutageCause::CertExpiry);
        assert_eq!(s.outage_count(), 2);
        assert_eq!(s.outages()[0].start, Epoch(100));
        assert_eq!(s.outages()[1].start, Epoch(300));
    }

    #[test]
    fn outage_clipped_to_lifetime() {
        let mut s = AvailabilitySchedule::new(Day(10), Some(Day(20)));
        s.add_outage(Epoch(0), Epoch(WINDOW_EPOCHS), OutageCause::Organic);
        assert_eq!(s.outage_count(), 1);
        let o = s.outages()[0];
        assert_eq!(o.start, Day(10).start_epoch());
        assert_eq!(o.end, Day(20).start_epoch());
        assert_eq!(s.downtime_fraction(), 1.0);
    }

    #[test]
    fn existence_bounds() {
        let s = AvailabilitySchedule::new(Day(10), Some(Day(20)));
        assert!(!s.exists_at(Epoch(0)));
        assert!(!s.is_up(Epoch(0)));
        assert!(s.is_up(Day(10).start_epoch()));
        assert!(s.is_up(Epoch(Day(20).start_epoch().0 - 1)));
        assert!(!s.exists_at(Day(20).start_epoch()));
    }

    #[test]
    fn daily_downtime_accounting() {
        let mut s = sched();
        // Half of day 1 down.
        let d1 = Day(1);
        s.add_outage(
            d1.start_epoch(),
            Epoch(d1.start_epoch().0 + EPOCHS_PER_DAY / 2),
            OutageCause::Organic,
        );
        assert_eq!(s.daily_downtime(Day(0)), Some(0.0));
        assert_eq!(s.daily_downtime(d1), Some(0.5));
        assert!(!s.down_whole_day(d1));
    }

    #[test]
    fn daily_downtime_none_before_creation() {
        let s = AvailabilitySchedule::new(Day(5), None);
        assert_eq!(s.daily_downtime(Day(4)), None);
        assert_eq!(s.daily_downtime(Day(5)), Some(0.0));
    }

    #[test]
    fn whole_day_outage_detected() {
        let mut s = sched();
        s.add_outage(Day(3).start_epoch(), Day(5).start_epoch(), OutageCause::Organic);
        assert!(s.down_whole_day(Day(3)));
        assert!(s.down_whole_day(Day(4)));
        assert!(!s.down_whole_day(Day(5)));
    }

    #[test]
    fn downtime_fraction_matches_hand_count() {
        let mut s = AvailabilitySchedule::new(Day(0), Some(Day(10)));
        s.add_outage(Epoch(0), Epoch(288), OutageCause::Organic); // 1 day of 10
        assert!((s.downtime_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_length_outage_ignored() {
        let mut s = sched();
        s.add_outage(Epoch(5), Epoch(5), OutageCause::Organic);
        assert_eq!(s.outage_count(), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference implementation: dense boolean array.
    fn dense(s: &AvailabilitySchedule, n: u32) -> Vec<bool> {
        (0..n).map(|e| s.is_up(Epoch(e))).collect()
    }

    proptest! {
        /// After arbitrary outage insertion the interval list is sorted,
        /// non-overlapping, non-adjacent, and agrees with a dense rebuild.
        #[test]
        fn interval_invariants(
            ivs in proptest::collection::vec((0u32..2000, 0u32..2000), 0..40)
        ) {
            let mut s = AvailabilitySchedule::new(Day(0), None);
            let mut reference = vec![true; 2048];
            for &(a, b) in &ivs {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                s.add_outage(Epoch(lo), Epoch(hi), OutageCause::Organic);
                for e in lo..hi {
                    reference[e as usize] = false;
                }
            }
            // sorted + gaps between outages
            for w in s.outages().windows(2) {
                prop_assert!(w[0].end.0 < w[1].start.0, "not separated: {w:?}");
            }
            // dense equivalence
            let got = dense(&s, 2048);
            prop_assert_eq!(got, reference);
        }

        /// down + up epochs == live epochs over any range.
        #[test]
        fn conservation(
            ivs in proptest::collection::vec((0u32..2000, 0u32..2000), 0..20),
            from in 0u32..2000, to in 0u32..2000
        ) {
            let mut s = AvailabilitySchedule::new(Day(0), None);
            for &(a, b) in &ivs {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                s.add_outage(Epoch(lo), Epoch(hi), OutageCause::Organic);
            }
            let (f, t) = if from <= to { (from, to) } else { (to, from) };
            let down = s.down_epochs_in(Epoch(f), Epoch(t));
            let live = s.live_epochs_in(Epoch(f), Epoch(t));
            let up = (f..t).filter(|&e| s.is_up(Epoch(e))).count() as u32;
            prop_assert_eq!(down + up, live);
        }
    }
}
