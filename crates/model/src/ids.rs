//! Newtype identifiers.
//!
//! All populations are dense and index-addressed: `InstanceId(7)` is row 7 of
//! `World::instances`. The newtypes prevent the classic bug of indexing the
//! user table with an instance id.

use serde::{Deserialize, Serialize};

/// Identifier of an instance (dense index into the instance table).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct InstanceId(pub u32);

/// Identifier of a user account (dense index into the user table).
///
/// Per the paper, accounts are identified *per instance*: the same human with
/// accounts on two instances appears as two `UserId`s ("it is impossible to
/// infer if such accounts are owned by the same person and therefore we treat
/// them as separate nodes", §3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

/// An Autonomous System number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct AsId(pub u32);

impl InstanceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl UserId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

impl std::fmt::Display for AsId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(InstanceId(3).to_string(), "inst#3");
        assert_eq!(UserId(9).to_string(), "user#9");
        assert_eq!(AsId(9370).to_string(), "AS9370");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(InstanceId(1) < InstanceId(2));
        assert!(UserId(0) < UserId(10));
    }

    #[test]
    fn serde_round_trip() {
        let id = InstanceId(42);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "42");
        let back: InstanceId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
