//! Instance categories (Fig. 3) and activity policies (Fig. 4).
//!
//! Categories come from Mastodon's self-declared controlled taxonomy; the
//! paper identifies 15 of them. Activity policies describe what an instance
//! explicitly allows or prohibits; the paper reports 8 recurring ones.

use serde::{Deserialize, Serialize};

/// The 15 self-declared instance categories of Fig. 3 (ordered as in the
/// figure, by instance share).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Category {
    Tech,
    Games,
    Art,
    Activism,
    Music,
    Anime,
    Books,
    Academia,
    Lgbt,
    Journalism,
    Furry,
    Sports,
    Adult,
    Poc,
    Humor,
}

impl Category {
    /// All categories, in Fig. 3 order.
    pub const ALL: [Category; 15] = [
        Category::Tech,
        Category::Games,
        Category::Art,
        Category::Activism,
        Category::Music,
        Category::Anime,
        Category::Books,
        Category::Academia,
        Category::Lgbt,
        Category::Journalism,
        Category::Furry,
        Category::Sports,
        Category::Adult,
        Category::Poc,
        Category::Humor,
    ];

    /// Lower-case label as used in instance metadata.
    pub fn label(self) -> &'static str {
        match self {
            Category::Tech => "tech",
            Category::Games => "games",
            Category::Art => "art",
            Category::Activism => "activism",
            Category::Music => "music",
            Category::Anime => "anime",
            Category::Books => "books",
            Category::Academia => "academia",
            Category::Lgbt => "lgbt",
            Category::Journalism => "journalism",
            Category::Furry => "furry",
            Category::Sports => "sports",
            Category::Adult => "adult",
            Category::Poc => "poc",
            Category::Humor => "humor",
        }
    }

    /// Parse a label (inverse of [`Category::label`]).
    pub fn from_label(s: &str) -> Option<Category> {
        Category::ALL.iter().copied().find(|c| c.label() == s)
    }
}

/// The 8 activity kinds of Fig. 4 that instances explicitly allow/prohibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Activity {
    /// Nudity, when tagged `#NSFW`.
    NudityWithNsfw,
    /// Pornography, when tagged `#NSFW`.
    PornWithNsfw,
    /// Posting spoilers without a content warning.
    SpoilersWithoutCw,
    Advertising,
    LinksToIllegalContent,
    /// Nudity without the `#NSFW` tag.
    NudityWithoutNsfw,
    /// Pornography without the `#NSFW` tag.
    PornWithoutNsfw,
    Spam,
}

impl Activity {
    /// All activities, in Fig. 4 order (top to bottom).
    pub const ALL: [Activity; 8] = [
        Activity::NudityWithNsfw,
        Activity::PornWithNsfw,
        Activity::SpoilersWithoutCw,
        Activity::Advertising,
        Activity::LinksToIllegalContent,
        Activity::NudityWithoutNsfw,
        Activity::PornWithoutNsfw,
        Activity::Spam,
    ];

    /// Human label as printed in Fig. 4.
    pub fn label(self) -> &'static str {
        match self {
            Activity::NudityWithNsfw => "Nudity with #NSFW",
            Activity::PornWithNsfw => "Porno with #NSFW",
            Activity::SpoilersWithoutCw => "Spoilers w/o CW",
            Activity::Advertising => "Advertising",
            Activity::LinksToIllegalContent => "Links to illegal content",
            Activity::NudityWithoutNsfw => "Nudity w/o #NSFW",
            Activity::PornWithoutNsfw => "Porno w/o #NSFW",
            Activity::Spam => "Spam",
        }
    }
}

/// An instance's explicit policy: which activities it allows and prohibits.
///
/// Modelled as two bitmasks over [`Activity::ALL`]. An activity may be
/// neither allowed nor prohibited (unstated); the paper reports that of the
/// categorised instances, 82% list at least one prohibition and 93% at least
/// one permission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PolicySet {
    allowed: u8,
    prohibited: u8,
}

impl PolicySet {
    /// Policy that allows every activity ("17.5% allow all types").
    pub fn allow_all() -> Self {
        Self {
            allowed: 0xff,
            prohibited: 0,
        }
    }

    /// An empty (unstated) policy.
    pub fn unstated() -> Self {
        Self::default()
    }

    fn bit(a: Activity) -> u8 {
        1 << Activity::ALL.iter().position(|&x| x == a).unwrap()
    }

    /// Mark `a` as explicitly allowed (clears any prohibition of `a`).
    pub fn allow(&mut self, a: Activity) {
        self.allowed |= Self::bit(a);
        self.prohibited &= !Self::bit(a);
    }

    /// Mark `a` as explicitly prohibited (clears any permission of `a`).
    pub fn prohibit(&mut self, a: Activity) {
        self.prohibited |= Self::bit(a);
        self.allowed &= !Self::bit(a);
    }

    /// Is `a` explicitly allowed?
    pub fn allows(&self, a: Activity) -> bool {
        self.allowed & Self::bit(a) != 0
    }

    /// Is `a` explicitly prohibited?
    pub fn prohibits(&self, a: Activity) -> bool {
        self.prohibited & Self::bit(a) != 0
    }

    /// Number of explicitly allowed activities.
    pub fn allowed_count(&self) -> u32 {
        self.allowed.count_ones()
    }

    /// Number of explicitly prohibited activities.
    pub fn prohibited_count(&self) -> u32 {
        self.prohibited.count_ones()
    }

    /// Whether every activity is allowed.
    pub fn allows_everything(&self) -> bool {
        self.allowed == 0xff
    }
}

/// A compact set of categories (an instance may declare several: the Fig. 3
/// shares sum to more than 100%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CategorySet(u16);

impl CategorySet {
    /// The empty set (uncategorised instance).
    pub fn empty() -> Self {
        Self(0)
    }

    fn bit(c: Category) -> u16 {
        1 << Category::ALL.iter().position(|&x| x == c).unwrap()
    }

    /// Insert a category.
    pub fn insert(&mut self, c: Category) {
        self.0 |= Self::bit(c);
    }

    /// Remove a category (no-op if absent).
    pub fn remove(&mut self, c: Category) {
        self.0 &= !Self::bit(c);
    }

    /// Membership test.
    pub fn contains(&self, c: Category) -> bool {
        self.0 & Self::bit(c) != 0
    }

    /// Number of categories declared.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// True when no category is declared.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate over member categories in Fig. 3 order.
    pub fn iter(&self) -> impl Iterator<Item = Category> + '_ {
        Category::ALL.iter().copied().filter(|&c| self.contains(c))
    }
}

impl FromIterator<Category> for CategorySet {
    fn from_iter<T: IntoIterator<Item = Category>>(iter: T) -> Self {
        let mut s = Self::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_labels_round_trip() {
        for c in Category::ALL {
            assert_eq!(Category::from_label(c.label()), Some(c));
        }
        assert_eq!(Category::from_label("nonsense"), None);
    }

    #[test]
    fn fifteen_categories_eight_activities() {
        // The paper: "We identify 15 categories of instances" and Fig. 4
        // lists 8 activity rows.
        assert_eq!(Category::ALL.len(), 15);
        assert_eq!(Activity::ALL.len(), 8);
    }

    #[test]
    fn policy_allow_prohibit_exclusive() {
        let mut p = PolicySet::unstated();
        p.prohibit(Activity::Spam);
        assert!(p.prohibits(Activity::Spam));
        assert!(!p.allows(Activity::Spam));
        p.allow(Activity::Spam);
        assert!(p.allows(Activity::Spam));
        assert!(!p.prohibits(Activity::Spam));
    }

    #[test]
    fn allow_all_policy() {
        let p = PolicySet::allow_all();
        assert!(p.allows_everything());
        for a in Activity::ALL {
            assert!(p.allows(a));
            assert!(!p.prohibits(a));
        }
        assert_eq!(p.allowed_count(), 8);
        assert_eq!(p.prohibited_count(), 0);
    }

    #[test]
    fn category_set_ops() {
        let mut s = CategorySet::empty();
        assert!(s.is_empty());
        s.insert(Category::Tech);
        s.insert(Category::Adult);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Category::Tech));
        assert!(!s.contains(Category::Games));
        let members: Vec<Category> = s.iter().collect();
        assert_eq!(members, vec![Category::Tech, Category::Adult]);
    }

    #[test]
    fn category_set_from_iter_dedupes() {
        let s: CategorySet = [Category::Art, Category::Art, Category::Music]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn unstated_policy_is_silent() {
        let p = PolicySet::unstated();
        for a in Activity::ALL {
            assert!(!p.allows(a));
            assert!(!p.prohibits(a));
        }
    }
}
