//! Toot-traffic arenas: tick-major event columns for the delivery simulator.
//!
//! The federation simulator (`simnet::fedsim`) consumes toot events as a
//! time-sorted columnar arena, the same CSR discipline as
//! [`crate::schedule::OutageArena`]: one `offsets` column indexed by tick and
//! one flat `authors` column. Building it is a counting sort over the
//! (unsorted) event stream, so generators can emit user-major and the arena
//! still comes out tick-major and canonical — two streams with the same
//! multiset of events build bit-identical arenas regardless of arrival
//! order.

/// Tick-major CSR of toot events over a simulation horizon.
///
/// `authors_at(t)` is the ascending-sorted slice of author user ids that
/// toot at tick `t` (a user tooting twice in one tick appears twice). The
/// canonical within-tick order is what makes downstream fan-out
/// deterministic at any shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TootArena {
    horizon: u32,
    /// `horizon + 1` offsets into `authors`; tick `t` owns
    /// `authors[offsets[t]..offsets[t + 1]]`.
    offsets: Vec<u32>,
    /// Author user ids, ascending within each tick.
    authors: Vec<u32>,
}

impl TootArena {
    /// Counting-sort build from an arbitrary `(tick, author)` stream.
    ///
    /// Events at `tick >= horizon` are rejected with a panic (the generator
    /// controls the horizon; silently dropping would break conservation
    /// accounting downstream).
    pub fn from_events(horizon: u32, events: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let events: Vec<(u32, u32)> = events.into_iter().collect();
        let mut counts = vec![0u32; horizon as usize + 1];
        for &(tick, _) in &events {
            assert!(tick < horizon, "toot event at tick {tick} >= horizon {horizon}");
            counts[tick as usize] += 1;
        }
        // Exclusive prefix sums become the offsets column.
        let mut offsets = vec![0u32; horizon as usize + 1];
        let mut acc = 0u32;
        for t in 0..horizon as usize {
            offsets[t] = acc;
            acc += counts[t];
        }
        offsets[horizon as usize] = acc;
        // Scatter, then canonicalise each tick's slice by author id.
        let mut authors = vec![0u32; acc as usize];
        let mut cursor = offsets.clone();
        for &(tick, author) in &events {
            let at = &mut cursor[tick as usize];
            authors[*at as usize] = author;
            *at += 1;
        }
        for t in 0..horizon as usize {
            authors[offsets[t] as usize..offsets[t + 1] as usize].sort_unstable();
        }
        TootArena { horizon, offsets, authors }
    }

    /// The simulation horizon this arena covers (ticks `0..horizon`).
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Total number of toot events.
    pub fn n_toots(&self) -> usize {
        self.authors.len()
    }

    /// Author ids tooting at `tick`, ascending (empty past the horizon).
    pub fn authors_at(&self, tick: u32) -> &[u32] {
        if tick >= self.horizon {
            return &[];
        }
        let lo = self.offsets[tick as usize] as usize;
        let hi = self.offsets[tick as usize + 1] as usize;
        &self.authors[lo..hi]
    }

    /// Busiest tick and its event count (`None` for an empty arena).
    pub fn peak_tick(&self) -> Option<(u32, u32)> {
        (0..self.horizon)
            .map(|t| (t, self.offsets[t as usize + 1] - self.offsets[t as usize]))
            .max_by_key(|&(t, n)| (n, std::cmp::Reverse(t)))
            .filter(|&(_, n)| n > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sort_is_canonical() {
        // user-major arrival, shuffled ticks
        let a = TootArena::from_events(4, [(3, 7), (0, 7), (2, 7), (0, 2), (2, 1), (0, 5)]);
        // tick-major arrival of the same multiset
        let b = TootArena::from_events(4, [(0, 5), (0, 2), (0, 7), (2, 1), (2, 7), (3, 7)]);
        assert_eq!(a, b);
        assert_eq!(a.authors_at(0), &[2, 5, 7]);
        assert_eq!(a.authors_at(1), &[] as &[u32]);
        assert_eq!(a.authors_at(2), &[1, 7]);
        assert_eq!(a.n_toots(), 6);
        assert_eq!(a.peak_tick(), Some((0, 3)));
    }

    #[test]
    fn duplicates_and_bounds() {
        let a = TootArena::from_events(2, [(1, 4), (1, 4)]);
        assert_eq!(a.authors_at(1), &[4, 4]);
        assert_eq!(a.authors_at(99), &[] as &[u32]);
        assert_eq!(TootArena::from_events(3, []).n_toots(), 0);
        assert_eq!(TootArena::from_events(3, []).peak_tick(), None);
    }

    #[test]
    #[should_panic(expected = ">= horizon")]
    fn rejects_past_horizon() {
        let _ = TootArena::from_events(2, [(2, 0)]);
    }
}
