//! Countries, hosting providers (Autonomous Systems) and synthetic IP space.
//!
//! Substitutes for the paper's Maxmind lookups (§3): instead of resolving a
//! live instance's IP, every synthetic instance is allocated an address from
//! its hosting provider's block at creation, so the analysis-side mapping
//! IP → (country, AS) is exact by construction.

use crate::ids::AsId;
use serde::{Deserialize, Serialize};

/// Countries that matter to the study (Fig. 5 top-5 plus a tail bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Country {
    Japan,
    UnitedStates,
    France,
    Germany,
    Netherlands,
    UnitedKingdom,
    Canada,
    Other,
}

impl Country {
    /// All modelled countries.
    pub const ALL: [Country; 8] = [
        Country::Japan,
        Country::UnitedStates,
        Country::France,
        Country::Germany,
        Country::Netherlands,
        Country::UnitedKingdom,
        Country::Canada,
        Country::Other,
    ];

    /// ISO 3166-1 alpha-2 code ("XX" for the tail bucket).
    pub fn code(self) -> &'static str {
        match self {
            Country::Japan => "JP",
            Country::UnitedStates => "US",
            Country::France => "FR",
            Country::Germany => "DE",
            Country::Netherlands => "NL",
            Country::UnitedKingdom => "GB",
            Country::Canada => "CA",
            Country::Other => "XX",
        }
    }

    /// Full English name as used in Fig. 5.
    pub fn name(self) -> &'static str {
        match self {
            Country::Japan => "Japan",
            Country::UnitedStates => "United States",
            Country::France => "France",
            Country::Germany => "Germany",
            Country::Netherlands => "Netherlands",
            Country::UnitedKingdom => "United Kingdom",
            Country::Canada => "Canada",
            Country::Other => "Other",
        }
    }
}

/// Static facts about a hosting provider (one AS).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderInfo {
    /// Autonomous System number.
    pub asn: AsId,
    /// Organisation name.
    pub name: String,
    /// Country the provider's capacity is mapped to.
    pub country: Country,
    /// CAIDA AS rank (lower = larger transit footprint); `0` = unranked.
    pub caida_rank: u32,
    /// Number of peering networks (Table 1's "Peers" column).
    pub peers: u32,
    /// First address of the provider's synthetic IPv4 block.
    pub ip_base: u32,
}

impl ProviderInfo {
    /// Synthesise the IP for the `n`-th instance hosted by this provider.
    pub fn ip_for(&self, n: u32) -> u32 {
        self.ip_base.wrapping_add(n)
    }
}

/// The provider catalog: a fixed set of real-world-named ASes (the ones the
/// paper calls out) plus procedurally added tail ASes so the total reaches
/// the paper's 351.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProviderCatalog {
    providers: Vec<ProviderInfo>,
}

/// Named providers the paper references, with Table 1 rank/peer values where
/// given. `(asn, name, country, caida_rank, peers)`.
const NAMED: &[(u32, &str, Country, u32, u32)] = &[
    // Fig. 5 top-5 by users.
    (16509, "Amazon.com, Inc.", Country::UnitedStates, 18, 432),
    (13335, "Cloudflare, Inc.", Country::UnitedStates, 112, 312),
    (9370, "SAKURA Internet Inc.", Country::Japan, 2000, 10),
    (16276, "OVH SAS", Country::France, 118, 170),
    (14061, "DigitalOcean, LLC", Country::UnitedStates, 79, 120),
    // §5.1 top-5 by instances adds these.
    (12876, "Scaleway (Online SAS)", Country::France, 250, 90),
    (24940, "Hetzner Online GmbH", Country::Germany, 140, 200),
    (7506, "GMO Internet, Inc.", Country::Japan, 600, 40),
    // Table 1 additions.
    (20473, "Choopa (Vultr)", Country::UnitedStates, 143, 150),
    (8075, "Microsoft Corporation", Country::UnitedStates, 2100, 257),
    (12322, "Free SAS", Country::France, 3200, 63),
    (2516, "KDDI Corporation", Country::Japan, 70, 123),
    (9371, "SAKURA Internet Inc. (2)", Country::Japan, 2400, 3),
    // Table 2 additions.
    (15169, "Google LLC", Country::UnitedStates, 3, 500),
    // A few well-known extras for breadth.
    (63949, "Linode, LLC", Country::UnitedStates, 210, 100),
    (51167, "Contabo GmbH", Country::Germany, 1800, 20),
    (197540, "netcup GmbH", Country::Germany, 2500, 15),
    (2519, "ARTERIA Networks", Country::Japan, 900, 30),
    (49981, "WorldStream B.V.", Country::Netherlands, 1300, 45),
    (60781, "LeaseWeb Netherlands", Country::Netherlands, 220, 150),
];

impl ProviderCatalog {
    /// Catalog containing only the named providers.
    pub fn named_only() -> Self {
        let providers = NAMED
            .iter()
            .enumerate()
            .map(|(i, &(asn, name, country, rank, peers))| ProviderInfo {
                asn: AsId(asn),
                name: name.to_string(),
                country,
                caida_rank: rank,
                peers,
                // Give each provider a disjoint /16: 10.0.0.0 + i << 16.
                ip_base: 0x0a00_0000 + ((i as u32) << 16),
            })
            .collect();
        Self { providers }
    }

    /// Catalog with `total` providers: the named ones plus procedurally
    /// generated tail ASes spread over countries round-robin. The paper
    /// observes 351 ASes hosting instances.
    pub fn with_tail(total: usize) -> Self {
        let mut cat = Self::named_only();
        let tail_countries = [
            Country::Japan,
            Country::UnitedStates,
            Country::France,
            Country::Germany,
            Country::Netherlands,
            Country::UnitedKingdom,
            Country::Canada,
            Country::Other,
        ];
        let mut i = 0usize;
        while cat.providers.len() < total {
            let asn = 64_512 + i as u32; // private-use ASN range
            let country = tail_countries[i % tail_countries.len()];
            let idx = cat.providers.len() as u32;
            cat.providers.push(ProviderInfo {
                asn: AsId(asn),
                name: format!("Tail Hosting {asn}"),
                country,
                caida_rank: 5_000 + i as u32,
                peers: 2 + (i % 13) as u32,
                ip_base: 0x0a00_0000 + (idx << 16),
            });
            i += 1;
        }
        cat
    }

    /// All providers, index-addressable.
    pub fn providers(&self) -> &[ProviderInfo] {
        &self.providers
    }

    /// Number of providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// Look up by ASN.
    pub fn by_asn(&self, asn: AsId) -> Option<&ProviderInfo> {
        self.providers.iter().find(|p| p.asn == asn)
    }

    /// Provider by dense index.
    pub fn get(&self, idx: usize) -> &ProviderInfo {
        &self.providers[idx]
    }

    /// Dense index of a named provider (for calibration code).
    pub fn index_of_name(&self, name_prefix: &str) -> Option<usize> {
        self.providers
            .iter()
            .position(|p| p.name.starts_with(name_prefix))
    }
}

/// Render a synthetic IPv4 address as dotted-quad.
pub fn ipv4_to_string(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (ip >> 24) & 0xff,
        (ip >> 16) & 0xff,
        (ip >> 8) & 0xff,
        ip & 0xff
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_catalog_contains_paper_ases() {
        let cat = ProviderCatalog::named_only();
        for asn in [9370, 20473, 8075, 12322, 2516, 9371] {
            assert!(
                cat.by_asn(AsId(asn)).is_some(),
                "Table 1 AS{asn} missing from catalog"
            );
        }
        // Fig. 5 names.
        assert!(cat.index_of_name("Amazon").is_some());
        assert!(cat.index_of_name("Cloudflare").is_some());
        assert!(cat.index_of_name("OVH").is_some());
        assert!(cat.index_of_name("DigitalOcean").is_some());
        assert!(cat.index_of_name("SAKURA").is_some());
    }

    #[test]
    fn tail_reaches_requested_total() {
        let cat = ProviderCatalog::with_tail(351);
        assert_eq!(cat.len(), 351);
        // All ASNs unique.
        let mut asns: Vec<u32> = cat.providers().iter().map(|p| p.asn.0).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), 351);
    }

    #[test]
    fn ip_blocks_disjoint() {
        let cat = ProviderCatalog::with_tail(100);
        let mut bases: Vec<u32> = cat.providers().iter().map(|p| p.ip_base).collect();
        bases.sort_unstable();
        for w in bases.windows(2) {
            assert!(w[1] - w[0] >= 1 << 16, "blocks overlap");
        }
    }

    #[test]
    fn ip_rendering() {
        assert_eq!(ipv4_to_string(0x0a00_0001), "10.0.0.1");
        assert_eq!(ipv4_to_string(0xc0a8_0101), "192.168.1.1");
    }

    #[test]
    fn provider_ip_for_offsets_within_block() {
        let cat = ProviderCatalog::named_only();
        let p = cat.get(0);
        assert_eq!(p.ip_for(0), p.ip_base);
        assert_eq!(p.ip_for(7), p.ip_base + 7);
    }

    #[test]
    fn country_codes_and_names() {
        assert_eq!(Country::Japan.code(), "JP");
        assert_eq!(Country::Netherlands.name(), "Netherlands");
        assert_eq!(Country::ALL.len(), 8);
    }

    #[test]
    fn with_tail_smaller_than_named_keeps_named() {
        let cat = ProviderCatalog::with_tail(3);
        // never truncates the named set
        assert!(cat.len() >= NAMED.len());
    }
}
