//! TLS certificates and certificate authorities (Fig. 9).
//!
//! Mastodon uses HTTPS by default; the paper finds Let's Encrypt behind more
//! than 85% of instances and attributes 6.3% of observed outages to expired
//! certificates — most dramatically a bulk expiry taking 105 instances down
//! on the same day (23 July 2018, the 90-day Let's Encrypt policy expiring a
//! cohort simultaneously).

use crate::time::Day;
use serde::{Deserialize, Serialize};

/// Certificate authorities observed in Fig. 9(a), plus a tail bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CertificateAuthority {
    LetsEncrypt,
    Comodo,
    Amazon,
    Cloudflare,
    DigiCert,
    Other,
}

impl CertificateAuthority {
    /// All CAs in Fig. 9(a) order.
    pub const ALL: [CertificateAuthority; 6] = [
        CertificateAuthority::LetsEncrypt,
        CertificateAuthority::Comodo,
        CertificateAuthority::Amazon,
        CertificateAuthority::Cloudflare,
        CertificateAuthority::DigiCert,
        CertificateAuthority::Other,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CertificateAuthority::LetsEncrypt => "Let's Encrypt",
            CertificateAuthority::Comodo => "COMODO",
            CertificateAuthority::Amazon => "Amazon",
            CertificateAuthority::Cloudflare => "CloudFlare",
            CertificateAuthority::DigiCert => "DigiCert",
            CertificateAuthority::Other => "Other",
        }
    }

    /// Certificate validity period issued by this CA, in days.
    ///
    /// Let's Encrypt certificates live 90 days ("the Let's Encrypt CA short
    /// expiry policy (90 days)"); commercial CAs of the era issued 1-year
    /// (and longer) certificates.
    pub fn validity_days(self) -> u32 {
        match self {
            CertificateAuthority::LetsEncrypt => 90,
            _ => 365,
        }
    }
}

/// A certificate installed on an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Issuing CA.
    pub ca: CertificateAuthority,
    /// Day (window-relative; may notionally pre-date the window as day 0) the
    /// current certificate chain started.
    pub issued: Day,
    /// Whether the administrator configured automated renewal. Instances
    /// without it go down when the certificate expires, until a human
    /// notices.
    pub auto_renew: bool,
}

impl Certificate {
    /// Expiry day of the certificate issued on `issued`.
    pub fn expires(&self) -> Day {
        Day(self.issued.0 + self.ca.validity_days())
    }

    /// Days in the window on which this certificate chain *lapses*, assuming
    /// the admin manually renews `lapse_fix_days` after each expiry-outage
    /// begins. With `auto_renew` the list is empty.
    ///
    /// `horizon` bounds the simulation (typically [`crate::time::WINDOW_DAYS`]).
    pub fn lapse_days(&self, lapse_fix_days: u32, horizon: u32) -> Vec<Day> {
        if self.auto_renew {
            return Vec::new();
        }
        let mut out = Vec::new();
        let period = self.ca.validity_days() + lapse_fix_days;
        let mut expiry = self.expires().0;
        while expiry < horizon {
            out.push(Day(expiry));
            expiry += period;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lets_encrypt_is_90_days() {
        assert_eq!(CertificateAuthority::LetsEncrypt.validity_days(), 90);
        assert_eq!(CertificateAuthority::DigiCert.validity_days(), 365);
    }

    #[test]
    fn expiry_day_offsets_by_validity() {
        let c = Certificate {
            ca: CertificateAuthority::LetsEncrypt,
            issued: Day(10),
            auto_renew: true,
        };
        assert_eq!(c.expires(), Day(100));
    }

    #[test]
    fn auto_renew_never_lapses() {
        let c = Certificate {
            ca: CertificateAuthority::LetsEncrypt,
            issued: Day(0),
            auto_renew: true,
        };
        assert!(c.lapse_days(3, 472).is_empty());
    }

    #[test]
    fn manual_renewal_lapses_periodically() {
        let c = Certificate {
            ca: CertificateAuthority::LetsEncrypt,
            issued: Day(0),
            auto_renew: false,
        };
        // expiry at 90, fixed after 3 days -> next issue at 93, expiry 183...
        let lapses = c.lapse_days(3, 472);
        assert_eq!(lapses, vec![Day(90), Day(183), Day(276), Day(369), Day(462)]);
    }

    #[test]
    fn lapses_respect_horizon() {
        let c = Certificate {
            ca: CertificateAuthority::Comodo,
            issued: Day(0),
            auto_renew: false,
        };
        let lapses = c.lapse_days(5, 400);
        assert_eq!(lapses, vec![Day(365)]);
        assert!(c.lapse_days(5, 300).is_empty());
    }

    #[test]
    fn ca_names() {
        assert_eq!(CertificateAuthority::LetsEncrypt.name(), "Let's Encrypt");
        assert_eq!(CertificateAuthority::ALL.len(), 6);
    }
}
