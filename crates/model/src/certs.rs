//! TLS certificates and certificate authorities (Fig. 9).
//!
//! Mastodon uses HTTPS by default; the paper finds Let's Encrypt behind more
//! than 85% of instances and attributes 6.3% of observed outages to expired
//! certificates — most dramatically a bulk expiry taking 105 instances down
//! on the same day (23 July 2018, the 90-day Let's Encrypt policy expiring a
//! cohort simultaneously).

use crate::time::Day;
use serde::{Deserialize, Serialize};

/// Certificate authorities observed in Fig. 9(a), plus a tail bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CertificateAuthority {
    LetsEncrypt,
    Comodo,
    Amazon,
    Cloudflare,
    DigiCert,
    Other,
}

impl CertificateAuthority {
    /// All CAs in Fig. 9(a) order.
    pub const ALL: [CertificateAuthority; 6] = [
        CertificateAuthority::LetsEncrypt,
        CertificateAuthority::Comodo,
        CertificateAuthority::Amazon,
        CertificateAuthority::Cloudflare,
        CertificateAuthority::DigiCert,
        CertificateAuthority::Other,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CertificateAuthority::LetsEncrypt => "Let's Encrypt",
            CertificateAuthority::Comodo => "COMODO",
            CertificateAuthority::Amazon => "Amazon",
            CertificateAuthority::Cloudflare => "CloudFlare",
            CertificateAuthority::DigiCert => "DigiCert",
            CertificateAuthority::Other => "Other",
        }
    }

    /// Certificate validity period issued by this CA, in days.
    ///
    /// Let's Encrypt certificates live 90 days ("the Let's Encrypt CA short
    /// expiry policy (90 days)"); commercial CAs of the era issued 1-year
    /// (and longer) certificates.
    pub fn validity_days(self) -> u32 {
        match self {
            CertificateAuthority::LetsEncrypt => 90,
            _ => 365,
        }
    }
}

/// A certificate installed on an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Issuing CA.
    pub ca: CertificateAuthority,
    /// Day (window-relative; may notionally pre-date the window as day 0) the
    /// current certificate chain started.
    pub issued: Day,
    /// Whether the administrator configured automated renewal. Instances
    /// without it go down when the certificate expires, until a human
    /// notices.
    pub auto_renew: bool,
}

impl Certificate {
    /// Expiry day of the certificate issued on `issued`.
    pub fn expires(&self) -> Day {
        Day(self.issued.0 + self.ca.validity_days())
    }

    /// Days in the window on which this certificate chain *lapses*, assuming
    /// the admin manually renews `lapse_fix_days` after each expiry-outage
    /// begins. With `auto_renew` the list is empty.
    ///
    /// `horizon` bounds the simulation (typically [`crate::time::WINDOW_DAYS`]).
    pub fn lapse_days(&self, lapse_fix_days: u32, horizon: u32) -> Vec<Day> {
        if self.auto_renew {
            return Vec::new();
        }
        let mut out = Vec::new();
        let period = self.ca.validity_days() + lapse_fix_days;
        let mut expiry = self.expires().0;
        while expiry < horizon {
            out.push(Day(expiry));
            expiry += period;
        }
        out
    }

    /// The same lapse calendar as [`Certificate::lapse_days`], indexed as a
    /// day [`LapseBitset`] — the Fig. 9b representation the scenario engine
    /// uses as its cascade trigger: "which instances lapse in day range
    /// `[a, b)`" becomes a word-wise scan instead of a per-instance `Vec`
    /// walk.
    pub fn lapse_bitset(&self, lapse_fix_days: u32, horizon: u32) -> LapseBitset {
        let mut bits = LapseBitset::empty(horizon);
        for d in self.lapse_days(lapse_fix_days, horizon) {
            bits.set(d);
        }
        bits
    }
}

/// A bitset over window days — one bit per [`Day`] below the horizon.
///
/// Used to index certificate-lapse calendars (Fig. 9b): bit `d` set means
/// "the certificate chain lapses on day `d`". Queries are word-wise, so
/// range scans over a 472-day window touch at most 8 words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LapseBitset {
    /// Number of days covered (bits beyond `horizon` are always zero).
    pub horizon: u32,
    /// Little-endian 64-day words, length `ceil(horizon / 64)`.
    pub words: Vec<u64>,
}

impl LapseBitset {
    /// An all-zero bitset covering `horizon` days.
    pub fn empty(horizon: u32) -> Self {
        Self {
            horizon,
            words: vec![0u64; horizon.div_ceil(64) as usize],
        }
    }

    /// Set the bit for `day` (ignored beyond the horizon).
    pub fn set(&mut self, day: Day) {
        if day.0 < self.horizon {
            self.words[(day.0 / 64) as usize] |= 1u64 << (day.0 % 64);
        }
    }

    /// Is the bit for `day` set?
    pub fn contains(&self, day: Day) -> bool {
        day.0 < self.horizon && self.words[(day.0 / 64) as usize] >> (day.0 % 64) & 1 == 1
    }

    /// Number of set days.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// True when no day is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// First set day in `[from, horizon)`, scanning whole words.
    pub fn first_set_at_or_after(&self, from: Day) -> Option<Day> {
        if from.0 >= self.horizon {
            return None;
        }
        let mut wi = (from.0 / 64) as usize;
        let mut word = self.words[wi] & (u64::MAX << (from.0 % 64));
        loop {
            if word != 0 {
                let day = wi as u32 * 64 + word.trailing_zeros();
                return (day < self.horizon).then_some(Day(day));
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Iterate all set days in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Day> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros();
                word &= word - 1;
                Some(Day(wi as u32 * 64 + bit))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lets_encrypt_is_90_days() {
        assert_eq!(CertificateAuthority::LetsEncrypt.validity_days(), 90);
        assert_eq!(CertificateAuthority::DigiCert.validity_days(), 365);
    }

    #[test]
    fn expiry_day_offsets_by_validity() {
        let c = Certificate {
            ca: CertificateAuthority::LetsEncrypt,
            issued: Day(10),
            auto_renew: true,
        };
        assert_eq!(c.expires(), Day(100));
    }

    #[test]
    fn auto_renew_never_lapses() {
        let c = Certificate {
            ca: CertificateAuthority::LetsEncrypt,
            issued: Day(0),
            auto_renew: true,
        };
        assert!(c.lapse_days(3, 472).is_empty());
    }

    #[test]
    fn manual_renewal_lapses_periodically() {
        let c = Certificate {
            ca: CertificateAuthority::LetsEncrypt,
            issued: Day(0),
            auto_renew: false,
        };
        // expiry at 90, fixed after 3 days -> next issue at 93, expiry 183...
        let lapses = c.lapse_days(3, 472);
        assert_eq!(lapses, vec![Day(90), Day(183), Day(276), Day(369), Day(462)]);
    }

    #[test]
    fn lapses_respect_horizon() {
        let c = Certificate {
            ca: CertificateAuthority::Comodo,
            issued: Day(0),
            auto_renew: false,
        };
        let lapses = c.lapse_days(5, 400);
        assert_eq!(lapses, vec![Day(365)]);
        assert!(c.lapse_days(5, 300).is_empty());
    }

    #[test]
    fn lapse_bitset_matches_lapse_days() {
        for (ca, auto_renew, issued) in [
            (CertificateAuthority::LetsEncrypt, false, 0u32),
            (CertificateAuthority::LetsEncrypt, true, 0),
            (CertificateAuthority::Comodo, false, 30),
            (CertificateAuthority::Other, false, 460),
        ] {
            let c = Certificate {
                ca,
                issued: Day(issued),
                auto_renew,
            };
            let days = c.lapse_days(3, 472);
            let bits = c.lapse_bitset(3, 472);
            assert_eq!(bits.iter().collect::<Vec<_>>(), days);
            assert_eq!(bits.count() as usize, days.len());
            assert_eq!(bits.is_empty(), days.is_empty());
            for d in 0..472 {
                assert_eq!(bits.contains(Day(d)), days.contains(&Day(d)), "day {d}");
            }
        }
    }

    #[test]
    fn lapse_bitset_first_set_scans_words() {
        let c = Certificate {
            ca: CertificateAuthority::LetsEncrypt,
            issued: Day(0),
            auto_renew: false,
        };
        // lapses at 90, 183, 276, 369, 462
        let bits = c.lapse_bitset(3, 472);
        assert_eq!(bits.first_set_at_or_after(Day(0)), Some(Day(90)));
        assert_eq!(bits.first_set_at_or_after(Day(90)), Some(Day(90)));
        assert_eq!(bits.first_set_at_or_after(Day(91)), Some(Day(183)));
        assert_eq!(bits.first_set_at_or_after(Day(463)), None);
        assert_eq!(bits.first_set_at_or_after(Day(9999)), None);
        assert_eq!(LapseBitset::empty(472).first_set_at_or_after(Day(0)), None);
    }

    #[test]
    fn lapse_bitset_horizon_edges() {
        let mut b = LapseBitset::empty(65);
        b.set(Day(0));
        b.set(Day(64));
        b.set(Day(65)); // beyond horizon: ignored
        assert_eq!(b.count(), 2);
        assert!(b.contains(Day(64)));
        assert!(!b.contains(Day(65)));
        assert_eq!(b.first_set_at_or_after(Day(1)), Some(Day(64)));
    }

    #[test]
    fn ca_names() {
        assert_eq!(CertificateAuthority::LetsEncrypt.name(), "Let's Encrypt");
        assert_eq!(CertificateAuthority::ALL.len(), 6);
    }
}
