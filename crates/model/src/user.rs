//! User accounts.
//!
//! Accounts are per-instance (the paper treats same-named accounts on
//! different instances as distinct nodes). Only a subset of accounts ever
//! toot: the study crawled 239K tooting users but induced a follower graph
//! of 853K accounts.

use crate::ids::{InstanceId, UserId};
use serde::{Deserialize, Serialize};

/// One user account.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Dense identifier.
    pub id: UserId,
    /// The instance the account is registered on.
    pub instance: InstanceId,
    /// Lifetime toot count (0 for the silent majority).
    pub toot_count: u32,
    /// Probability the user logs in during a given week (drives Fig. 2c).
    pub weekly_login_prob: f32,
}

impl UserProfile {
    /// Has this account ever posted? (the toot-crawl only discovers these)
    pub fn has_tooted(&self) -> bool {
        self.toot_count > 0
    }

    /// Account handle, unique per instance.
    pub fn handle(&self) -> String {
        format!("u{}", self.id.0)
    }

    /// Fully qualified `user@domain`-style address given the domain.
    pub fn address(&self, domain: &str) -> String {
        format!("{}@{}", self.handle(), domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tooting_detection() {
        let mut u = UserProfile {
            id: UserId(1),
            instance: InstanceId(0),
            toot_count: 0,
            weekly_login_prob: 0.5,
        };
        assert!(!u.has_tooted());
        u.toot_count = 3;
        assert!(u.has_tooted());
    }

    #[test]
    fn addressing() {
        let u = UserProfile {
            id: UserId(7),
            instance: InstanceId(2),
            toot_count: 1,
            weekly_login_prob: 0.1,
        };
        assert_eq!(u.handle(), "u7");
        assert_eq!(u.address("mstdn.example"), "u7@mstdn.example");
    }
}
