//! The ground-truth world: everything the synthetic fediverse "is",
//! independent of what a crawler later observes.

use crate::geo::ProviderCatalog;
use crate::ids::{InstanceId, UserId};
use crate::instance::Instance;
use crate::schedule::AvailabilitySchedule;
use crate::user::UserProfile;
use serde::{Deserialize, Serialize};

/// One point of the daily growth series (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GrowthPoint {
    /// Instances online that day.
    pub instances: u32,
    /// Registered users that day.
    pub users: u32,
    /// Cumulative toots that day.
    pub toots: u64,
}

/// The Twitter comparison baselines (§3 "Twitter" dataset).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TwitterBaseline {
    /// Per-day downtime fraction, Feb–Dec 2007 (pingdom-style probe data).
    pub daily_downtime: Vec<f64>,
    /// Follower edges `(follower, followee)` of the 2011-era social graph
    /// sample, over a dense node space `0..n_users`.
    pub follows: Vec<(u32, u32)>,
    /// Node count of the Twitter graph sample.
    pub n_users: u32,
}

/// The fully generated fediverse plus its comparison baselines.
///
/// Invariants (checked by [`World::validate`]):
/// - `users[i].id == UserId(i)` and `instances[j].id == InstanceId(j)`,
/// - every user's instance exists,
/// - `schedules.len() == instances.len()`,
/// - follower edges reference valid users and contain no self-loops.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct World {
    /// Seed the world was generated from (for provenance).
    pub seed: u64,
    /// Instance table (dense by `InstanceId`).
    pub instances: Vec<Instance>,
    /// User table (dense by `UserId`).
    pub users: Vec<UserProfile>,
    /// Follower edges: `(a, b)` means *a follows b*.
    pub follows: Vec<(UserId, UserId)>,
    /// Availability schedule per instance (same indexing as `instances`).
    pub schedules: Vec<AvailabilitySchedule>,
    /// Hosting provider catalog.
    pub providers: ProviderCatalog,
    /// Daily growth series over the measurement window.
    pub growth: Vec<GrowthPoint>,
    /// Twitter baselines for Figs. 8, 11, 12.
    pub twitter: TwitterBaseline,
}

impl World {
    /// Panic (with a useful message) if any structural invariant is broken.
    /// Generators call this before returning a world.
    pub fn validate(&self) {
        assert_eq!(
            self.instances.len(),
            self.schedules.len(),
            "instances/schedules length mismatch"
        );
        for (i, inst) in self.instances.iter().enumerate() {
            assert_eq!(inst.id.index(), i, "instance id not dense at {i}");
        }
        for (i, u) in self.users.iter().enumerate() {
            assert_eq!(u.id.index(), i, "user id not dense at {i}");
            assert!(
                u.instance.index() < self.instances.len(),
                "user {i} on unknown instance"
            );
        }
        for &(a, b) in &self.follows {
            assert!(a != b, "self-loop follow {a}");
            assert!(
                a.index() < self.users.len() && b.index() < self.users.len(),
                "follow edge out of range"
            );
        }
    }

    /// Users grouped by instance (index = instance id).
    pub fn users_by_instance(&self) -> Vec<Vec<UserId>> {
        let mut out = vec![Vec::new(); self.instances.len()];
        for u in &self.users {
            out[u.instance.index()].push(u.id);
        }
        out
    }

    /// Per-instance user counts derived from the user table.
    pub fn user_counts(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.instances.len()];
        for u in &self.users {
            out[u.instance.index()] += 1;
        }
        out
    }

    /// Per-instance total toot counts derived from the user table.
    pub fn toot_counts(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.instances.len()];
        for u in &self.users {
            out[u.instance.index()] += u.toot_count as u64;
        }
        out
    }

    /// Total toots across the world.
    pub fn total_toots(&self) -> u64 {
        self.users.iter().map(|u| u.toot_count as u64).sum()
    }

    /// Instance of a user.
    pub fn instance_of(&self, u: UserId) -> InstanceId {
        self.users[u.index()].instance
    }

    /// The federation edges induced by the follower graph: a directed edge
    /// `(Ia, Ib)` exists if at least one user on `Ia` follows a user on `Ib`
    /// (deduplicated; intra-instance follows do not federate).
    pub fn federation_edges(&self) -> Vec<(InstanceId, InstanceId)> {
        let mut set = std::collections::HashSet::new();
        for &(a, b) in &self.follows {
            let ia = self.instance_of(a);
            let ib = self.instance_of(b);
            if ia != ib {
                set.insert((ia, ib));
            }
        }
        let mut v: Vec<_> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Instances grouped by AS: `(provider_index, member instance ids)`.
    pub fn instances_by_provider(&self) -> Vec<Vec<InstanceId>> {
        let mut out = vec![Vec::new(); self.providers.len()];
        for inst in &self.instances {
            out[inst.provider_index as usize].push(inst.id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::{Certificate, CertificateAuthority};
    use crate::geo::Country;
    use crate::ids::AsId;
    use crate::instance::{OperatorKind, Registration, Software};
    use crate::taxonomy::{CategorySet, PolicySet};
    use crate::time::Day;

    fn mk_instance(i: u32) -> Instance {
        Instance {
            id: InstanceId(i),
            domain: format!("i{i}.example"),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: false,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(64512),
            provider_index: 0,
            ip: i,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: 0,
            toot_count: 0,
            boosted_toots: 0,
            active_user_pct: 50.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        }
    }

    fn mk_user(i: u32, inst: u32, toots: u32) -> UserProfile {
        UserProfile {
            id: UserId(i),
            instance: InstanceId(inst),
            toot_count: toots,
            weekly_login_prob: 0.5,
        }
    }

    fn small_world() -> World {
        World {
            seed: 1,
            instances: vec![mk_instance(0), mk_instance(1)],
            users: vec![mk_user(0, 0, 5), mk_user(1, 0, 0), mk_user(2, 1, 7)],
            follows: vec![
                (UserId(0), UserId(2)),
                (UserId(2), UserId(0)),
                (UserId(1), UserId(0)),
            ],
            schedules: vec![
                AvailabilitySchedule::always_up(),
                AvailabilitySchedule::always_up(),
            ],
            providers: ProviderCatalog::with_tail(5),
            growth: vec![],
            twitter: TwitterBaseline::default(),
        }
    }

    #[test]
    fn validate_accepts_consistent_world() {
        small_world().validate();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn validate_rejects_self_loop() {
        let mut w = small_world();
        w.follows.push((UserId(1), UserId(1)));
        w.validate();
    }

    #[test]
    fn per_instance_aggregates() {
        let w = small_world();
        assert_eq!(w.user_counts(), vec![2, 1]);
        assert_eq!(w.toot_counts(), vec![5, 7]);
        assert_eq!(w.total_toots(), 12);
        let ubi = w.users_by_instance();
        assert_eq!(ubi[0], vec![UserId(0), UserId(1)]);
        assert_eq!(ubi[1], vec![UserId(2)]);
    }

    #[test]
    fn federation_edges_deduplicate_and_skip_local() {
        let w = small_world();
        // user1 -> user0 is intra-instance: no federation edge.
        let fed = w.federation_edges();
        assert_eq!(
            fed,
            vec![
                (InstanceId(0), InstanceId(1)),
                (InstanceId(1), InstanceId(0))
            ]
        );
    }

    #[test]
    fn provider_grouping() {
        let w = small_world();
        let groups = w.instances_by_provider();
        assert_eq!(groups[0].len(), 2);
        assert!(groups[1..].iter().all(|g| g.is_empty()));
    }
}
