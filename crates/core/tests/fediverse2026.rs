//! Smoke coverage for the `fediverse2026` tier: every `*_tier` analysis
//! entry point runs with [`ScaleTier::Fediverse2026`] knobs against a
//! quick-scale (tiny) world.
//!
//! The tier tables only parameterise sweep *depths* and simulator knobs —
//! they must clamp gracefully when the observatory is smaller than the
//! tier's nominal population, because that is exactly how CI exercises
//! the 10M-account configuration without generating 10M accounts. A panic
//! or empty result here means a tier knob leaked an unclamped index.

use fediscope_core::availability::{
    fig07_downtime_tier, fig08_daily_downtime_tier, fig10_outages_tier, section4_tier,
    table1_as_failures_tier,
};
use fediscope_core::content::{fig15_replication_tier, fig16_random_replication_tier};
use fediscope_core::delivery::section3_live_tier;
use fediscope_core::graphs::{
    fig12_random_baseline_tier, fig12_user_removal_tier, fig13_federation_removal_tier,
};
use fediscope_core::scenarios::section5_scenarios_tier;
use fediscope_core::Observatory;
use fediscope_model::scale::ScaleTier;
use fediscope_worldgen::{toots, Generator, WorldConfig};

const TIER: ScaleTier = ScaleTier::Fediverse2026;

fn observatory() -> Observatory {
    Observatory::new(Generator::generate_world(WorldConfig::tiny(2026)))
}

#[test]
fn tier_tables_are_sane() {
    // The 2026 projection is strictly the largest tier on every population
    // axis, and parses back from its CLI spellings.
    assert_eq!(TIER.n_users(), 10_000_000);
    assert!(TIER.n_instances() > ScaleTier::Modern.n_instances());
    assert!(TIER.n_providers() > ScaleTier::Modern.n_providers());
    assert_eq!(ScaleTier::parse("fediverse2026"), Some(TIER));
    assert_eq!(ScaleTier::parse("fediverse-2026"), Some(TIER));
    assert_eq!(ScaleTier::parse("2026"), Some(TIER));
    assert_eq!(ScaleTier::ALL.last(), Some(&TIER));
}

#[test]
fn section4_entry_points_run() {
    let obs = observatory();
    let s4 = section4_tier(&obs, TIER);
    assert!(!s4.fig07.downtime_cdf.is_empty());
    assert!(!s4.fig08.bins.is_empty());
    assert!(s4.fig10.any_outage_frac > 0.0);
    // The amortised single-figure wrappers agree with the one-pass sweep.
    assert_eq!(
        fig07_downtime_tier(&obs, TIER).downtime_cdf.len(),
        s4.fig07.downtime_cdf.len()
    );
    assert_eq!(
        fig08_daily_downtime_tier(&obs, TIER).bins.len(),
        s4.fig08.bins.len()
    );
    assert_eq!(fig10_outages_tier(&obs, TIER).worst_day, s4.fig10.worst_day);
    assert_eq!(table1_as_failures_tier(&obs, TIER).len(), s4.table1.len());
}

#[test]
fn graph_entry_points_run() {
    let obs = observatory();
    let fig12 = fig12_user_removal_tier(&obs, TIER);
    // 100 rounds of 1% exhaust a tiny graph early; the sweep still reports
    // an intact round 0 and a connected starting graph.
    assert!(!fig12.mastodon.is_empty());
    assert!(fig12.mastodon_initial_lcc > 0.9);

    let fig13 = fig13_federation_removal_tier(&obs, TIER);
    let n_inst = obs.world.instances.len();
    // Depth clamps to the world: the tier asks for 25K instance removals.
    assert_eq!(
        fig13.by_instance_users.len(),
        n_inst.min(TIER.fig13_max_instances()) + 1
    );
    assert!(!fig13.by_as_instances.is_empty());

    let base = fig12_random_baseline_tier(&obs, TIER, 7);
    assert_eq!(base.trials.len(), TIER.baseline_trials());
    assert!(!base.mean_lcc_frac.is_empty());
}

#[test]
fn content_entry_points_run() {
    let obs = observatory();
    let n_inst = obs.world.instances.len();
    let fig15 = fig15_replication_tier(&obs, TIER);
    assert_eq!(
        fig15.none_by_instance.len(),
        n_inst.min(TIER.fig15_max_instances()) + 1
    );
    assert_eq!(fig15.sub_by_instance.len(), fig15.none_by_instance.len());

    let fig16 = fig16_random_replication_tier(&obs, TIER);
    assert_eq!(fig16.none.len(), n_inst.min(TIER.fig16_max_instances()) + 1);
    assert!(!fig16.random.is_empty());
}

#[test]
fn delivery_entry_point_runs() {
    let cfg = WorldConfig::tiny(2026);
    let world = Generator::generate_world(cfg.clone());
    // The tier's one-day horizon and lifetime-spread rates on a tiny
    // population produce a small but non-empty event stream.
    let arena = toots::generate_for_tier(&cfg, &world.users, TIER);
    assert!(arena.n_toots() > 0);
    let obs = Observatory::new(world);
    let live = section3_live_tier(&obs, &arena, TIER, 11);
    assert!(live.clean.fanned_out > 0);
    assert!(live.clean.drained, "clean tier run must drain");
    assert!(live.degradation.amplification_ratio >= 1.0);
}

#[test]
fn scenario_entry_point_runs() {
    let obs = observatory();
    let s5 = section5_scenarios_tier(&obs, TIER, 13, None);
    assert!(!s5.grid.rows.is_empty());
    assert!(!s5.grid.cols.is_empty());
    assert_eq!(s5.grid.cells.len(), s5.grid.rows.len() * s5.grid.cols.len());
}
