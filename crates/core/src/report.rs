//! Plain-text rendering of figures, tables and verdicts — the output format
//! of the `repro` binary and the examples.

use crate::availability::{Fig07Downtime, Fig08DailyDowntime, Fig09Certificates, Fig10Outages};
use crate::content::{Fig14RemoteRatio, Fig15Replication, Fig16RandomReplication};
use crate::delivery::Section3Live;
use crate::graphs::{Fig11Degrees, Fig12UserRemoval, Fig13FederationRemoval, Table2Row};
use crate::population::{
    Fig01Growth, Fig02OpenClosed, Fig03Categories, Fig04Policies, Fig05Hosting, Fig06CountryLinks,
};
use crate::scenarios::Section5Scenarios;
use crate::verdicts::Verdict;
use fediscope_monitor::asn::AsFailureRow;
use std::fmt::Write as _;

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "{cell:<w$}  ");
        }
        out.push('\n');
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    render_row(&headers_owned, &widths, &mut out);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render_row(&rule, &widths, &mut out);
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

/// Render Fig. 1.
pub fn render_fig01(f: &Fig01Growth) -> String {
    let rows: Vec<Vec<String>> = f
        .samples
        .iter()
        .map(|(d, p)| {
            vec![
                fediscope_model::time::Day(*d).iso(),
                p.instances.to_string(),
                p.users.to_string(),
                p.toots.to_string(),
            ]
        })
        .collect();
    format!(
        "Figure 1 — growth over time\n{}\nplateau: instances {} vs users {}; H1-2018 instance growth {}\n",
        table(&["date", "instances up", "users", "toots"], &rows),
        pct(f.plateau_instance_growth),
        pct(f.plateau_user_growth),
        pct(f.h1_2018_instance_growth),
    )
}

/// Render Fig. 2.
pub fn render_fig02(f: &Fig02OpenClosed) -> String {
    format!(
        "Figure 2 — open vs closed registrations\n\
         instances open {} | users on open {} | toots on open {}\n\
         mean users: open {:.1} vs closed {:.1}\n\
         toots per capita: open {:.1} vs closed {:.1}\n\
         top-5% instances hold {} of users, {} of toots\n\
         median weekly activity: open {} vs closed {}\n",
        pct(f.open_instance_share),
        pct(f.open_user_share),
        pct(f.open_toot_share),
        f.mean_users.0,
        f.mean_users.1,
        f.toots_per_capita.0,
        f.toots_per_capita.1,
        pct(f.top5_user_share),
        pct(f.top5_toot_share),
        f.activity_open
            .median()
            .map(|m| format!("{m:.0}%"))
            .unwrap_or_default(),
        f.activity_closed
            .median()
            .map(|m| format!("{m:.0}%"))
            .unwrap_or_default(),
    )
}

/// Render Fig. 3.
pub fn render_fig03(f: &Fig03Categories) -> String {
    let rows: Vec<Vec<String>> = f
        .rows
        .iter()
        .map(|r| {
            vec![
                r.category.label().to_string(),
                pct(r.instance_share),
                pct(r.toot_share),
                pct(r.user_share),
            ]
        })
        .collect();
    format!(
        "Figure 3 — categories ({} declaring instances; {} of users, {} of toots)\n{}",
        f.declaring_instances,
        pct(f.declared_user_share),
        pct(f.declared_toot_share),
        table(&["category", "instances", "toots", "users"], &rows),
    )
}

/// Render Fig. 4.
pub fn render_fig04(f: &Fig04Policies) -> String {
    let rows: Vec<Vec<String>> = f
        .rows
        .iter()
        .map(|r| {
            vec![
                r.activity.label().to_string(),
                pct(r.prohibited_share),
                pct(r.allowed_share),
                pct(r.allowing_user_share),
                pct(r.allowing_toot_share),
            ]
        })
        .collect();
    format!(
        "Figure 4 — activity policies (allow-all {}, ≥1 prohibition {}, ≥1 permission {})\n{}",
        pct(f.allow_all_share),
        pct(f.some_prohibition_share),
        pct(f.some_permission_share),
        table(
            &["activity", "prohibited", "allowed", "users@allowed", "toots@allowed"],
            &rows
        ),
    )
}

/// Render Fig. 5.
pub fn render_fig05(f: &Fig05Hosting) -> String {
    let mk = |rows: &[crate::population::HostingRow]| -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    pct(r.instance_share),
                    pct(r.user_share),
                    pct(r.toot_share),
                ]
            })
            .collect()
    };
    format!(
        "Figure 5 — hosting ({} distinct ASes; top-3 ASes hold {} of users)\nTop countries:\n{}Top ASes (by users):\n{}",
        f.distinct_ases,
        pct(f.top3_as_user_share),
        table(&["country", "instances", "users", "toots"], &mk(&f.countries)),
        table(&["AS", "instances", "users", "toots"], &mk(&f.ases)),
    )
}

/// Render Fig. 6.
pub fn render_fig06(f: &Fig06CountryLinks) -> String {
    use fediscope_model::geo::Country;
    let mut rows = Vec::new();
    for (a, row) in f.matrix.iter().enumerate() {
        let total: f64 = row.iter().sum();
        if total < 1e-12 {
            continue;
        }
        let mut cells = vec![Country::ALL[a].code().to_string()];
        cells.extend(row.iter().map(|&v| pct(v)));
        rows.push(cells);
    }
    let mut headers = vec!["from\\to"];
    headers.extend(Country::ALL.iter().map(|c| c.code()));
    format!(
        "Figure 6 — federation links between countries (same-country {}, top-5 destinations {})\n{}",
        pct(f.same_country_share),
        pct(f.top5_destination_share),
        table(&headers, &rows),
    )
}

/// Render Fig. 7.
pub fn render_fig07(f: &Fig07Downtime) -> String {
    format!(
        "Figure 7 — instance downtime\n\
         <5% downtime: {} of instances | >50%: {} | ≥99.5% uptime: {} | mean {}\n\
         exposure when failing (median): {:.0} users, {:.0} toots, {:.0} boosts\n",
        pct(f.headlines.below_5pct),
        pct(f.headlines.above_50pct),
        pct(f.headlines.high_avail),
        pct(f.headlines.mean),
        f.users_exposure.median().unwrap_or(0.0),
        f.toots_exposure.median().unwrap_or(0.0),
        f.boosts_exposure.median().unwrap_or(0.0),
    )
}

/// Render Fig. 8.
pub fn render_fig08(f: &Fig08DailyDowntime) -> String {
    let rows: Vec<Vec<String>> = f
        .bins
        .iter()
        .map(|(bin, stats)| match stats {
            Some(s) => vec![
                bin.label().to_string(),
                pct(s.median),
                pct(s.q1),
                pct(s.q3),
            ],
            None => vec![bin.label().to_string(), "-".into(), "-".into(), "-".into()],
        })
        .collect();
    format!(
        "Figure 8 — per-day downtime by size (Mastodon mean {}, Twitter 2007 mean {}; size correlation {:.3})\n{}",
        pct(f.mastodon_mean),
        pct(f.twitter_mean),
        f.size_correlation.unwrap_or(0.0),
        table(&["toot bin", "median", "q1", "q3"], &rows),
    )
}

/// Render Fig. 9.
pub fn render_fig09(f: &Fig09Certificates) -> String {
    let rows: Vec<Vec<String>> = f
        .footprint
        .iter()
        .map(|(ca, share)| vec![ca.name().to_string(), pct(*share)])
        .collect();
    format!(
        "Figure 9 — certificates\n{}\
         expiry outages: {} of {} outages attributed ({}); worst day {} with {} instances down ({} toots)\n",
        table(&["CA", "instances"], &rows),
        f.outages.attributed,
        f.outages.total_outages,
        pct(f.outages.attributed_fraction()),
        f.outages.worst_day,
        f.outages.worst_day_count(),
        f.outages.worst_day_toots,
    )
}

/// Render Table 1.
pub fn render_table1(rows: &[AsFailureRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.asn.to_string(),
                r.instances.to_string(),
                r.failures.to_string(),
                r.ips.to_string(),
                r.users.to_string(),
                r.toots.to_string(),
                r.org.clone(),
                r.rank.to_string(),
                r.peers.to_string(),
            ]
        })
        .collect();
    format!(
        "Table 1 — AS failures\n{}",
        table(
            &["ASN", "Instances", "Failures", "IPs", "Users", "Toots", "Org.", "Rank", "Peers"],
            &body
        ),
    )
}

/// Render the live §3 delivery-simulator result: load concentration on
/// the clean run, then the outage overlay's degradation and recovery.
pub fn render_section3_live(s: &Section3Live) -> String {
    let top5: Vec<Vec<String>> = s
        .load
        .top5
        .iter()
        .map(|&(inst, d)| {
            vec![
                inst.to_string(),
                d.to_string(),
                pct(if s.load.delivered_total > 0 {
                    d as f64 / s.load.delivered_total as f64
                } else {
                    0.0
                }),
            ]
        })
        .collect();
    format!(
        "Section 3 (live) — federation delivery under load\n\
         clean run : {} fanned out, {} delivered ({} prompt), amplification {:.3}\n\
         load share: top 1% of instances take {}, top 10% take {}\n\
         {}\
         outage run: {} refused while dark, {} extra redeliveries, {} deliveries delayed\n\
         amplification ×{:.2}, peak backlog {}, suspensions {} ({} recovered)\n\
         {}\n",
        s.clean.fanned_out,
        s.clean.delivered(),
        s.clean.delivered_prompt,
        s.clean.amplification,
        pct(s.load.top1pct_share),
        pct(s.load.top10pct_share),
        table(&["Instance", "Delivered", "Share"], &top5),
        s.degradation.rejected_down,
        s.degradation.extra_redeliveries,
        s.degradation.extra_delayed,
        s.degradation.amplification_ratio,
        s.degradation.peak_backlog,
        s.degradation.suspensions,
        s.degradation.recovered_suspensions,
        if s.degradation.healed {
            format!(
                "healed: every queue drained {} ticks past the horizon",
                s.degradation.time_to_drain
            )
        } else {
            format!(
                "did NOT heal: {} messages still stranded when the drain budget expired",
                s.outage.undeliverable
            )
        },
    )
}

/// Render Fig. 10.
pub fn render_fig10(f: &Fig10Outages) -> String {
    format!(
        "Figure 10 — continuous outages\n\
         ≥1 outage: {} | ≥1 day: {} | >1 month: {}\n\
         day-plus outages strand {} users and {} toots\n\
         worst whole-day blackout: {} with {} of global toots dark\n",
        pct(f.any_outage_frac),
        pct(f.day_plus_frac),
        pct(f.month_plus_frac),
        f.users_affected,
        f.toots_affected,
        f.worst_day.0,
        pct(f.worst_day.1),
    )
}

/// Render Fig. 11.
pub fn render_fig11(f: &Fig11Degrees) -> String {
    let q = |e: &fediscope_stats::Ecdf, q: f64| e.quantile(q).unwrap_or(0.0);
    format!(
        "Figure 11 — out-degree distributions (median / p90 / p99 / max)\n\
         social     : {:.0} / {:.0} / {:.0} / {:.0}  (alpha {})\n\
         federation : {:.0} / {:.0} / {:.0} / {:.0}\n\
         twitter    : {:.0} / {:.0} / {:.0} / {:.0}  (alpha {})\n",
        q(&f.social, 0.5),
        q(&f.social, 0.9),
        q(&f.social, 0.99),
        f.social.max().unwrap_or(0.0),
        f.social_fit
            .map(|p| format!("{:.2}", p.alpha))
            .unwrap_or_default(),
        q(&f.federation, 0.5),
        q(&f.federation, 0.9),
        q(&f.federation, 0.99),
        f.federation.max().unwrap_or(0.0),
        q(&f.twitter, 0.5),
        q(&f.twitter, 0.9),
        q(&f.twitter, 0.99),
        f.twitter.max().unwrap_or(0.0),
        f.twitter_fit
            .map(|p| format!("{:.2}", p.alpha))
            .unwrap_or_default(),
    )
}

/// Render Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.domain.clone(),
                r.home_toots.to_string(),
                r.users.to_string(),
                r.fed_out_degree.to_string(),
                r.fed_in_degree.to_string(),
                format!("{:?}", r.operator),
                format!("{} ({})", r.as_org, r.country),
            ]
        })
        .collect();
    format!(
        "Table 2 — top 10 instances by home toots\n{}",
        table(
            &["Domain", "Toots", "Users", "OD", "ID", "Run by", "AS (Country)"],
            &body
        ),
    )
}

/// Render Fig. 12.
pub fn render_fig12(f: &Fig12UserRemoval) -> String {
    let mut rows = Vec::new();
    for (m, t) in f.mastodon.iter().zip(&f.twitter) {
        rows.push(vec![
            m.removed.to_string(),
            pct(m.lcc_node_frac),
            m.wcc_count.to_string(),
            pct(t.lcc_node_frac),
            t.wcc_count.to_string(),
        ]);
    }
    format!(
        "Figure 12 — iterative top-1% user removal (Mastodon vs Twitter)\n{}\
         headline: intact {} → after 1% {} (Twitter after 10%: {})\n",
        table(
            &["removed", "mastodon LCC", "components", "twitter LCC", "components"],
            &rows
        ),
        pct(f.mastodon_initial_lcc),
        pct(f.mastodon_after_1pct),
        pct(f.twitter_after_10pct),
    )
}

/// Render Fig. 13 (sampled rows to keep output readable).
pub fn render_fig13(f: &Fig13FederationRemoval) -> String {
    let sample = |points: &[fediscope_graph::SweepPoint]| -> Vec<Vec<String>> {
        let stride = (points.len() / 10).max(1);
        points
            .iter()
            .step_by(stride)
            .map(|p| {
                vec![
                    if p.groups_removed > 0 {
                        p.groups_removed.to_string()
                    } else {
                        p.removed.to_string()
                    },
                    pct(p.lcc_node_frac),
                    pct(p.lcc_weight_frac),
                    p.wcc_count.to_string(),
                ]
            })
            .collect()
    };
    format!(
        "Figure 13 — federation-graph resilience (intact LCC: {} of instances, {} of users)\n\
         (a) top-N instance removal by users:\n{}\
         (b) AS removal by instances hosted:\n{}\
         (b') AS removal by users hosted:\n{}",
        pct(f.initial_lcc_instances),
        pct(f.initial_lcc_users),
        table(&["removed", "LCC inst", "LCC users", "components"], &sample(&f.by_instance_users)),
        table(&["ASes", "LCC inst", "LCC users", "components"], &sample(&f.by_as_instances)),
        table(&["ASes", "LCC inst", "LCC users", "components"], &sample(&f.by_as_users)),
    )
}

/// Render Fig. 14.
pub fn render_fig14(f: &Fig14RemoteRatio) -> String {
    format!(
        "Figure 14 — home vs remote toots on federated timelines\n\
         instances producing <10% of their own timeline: {}\n\
         fully remote timelines: {}\n\
         production↔replication correlation: {:.3}\n",
        pct(f.below_10pct_frac),
        pct(f.fully_remote_frac),
        f.production_replication_corr.unwrap_or(0.0),
    )
}

/// Render Fig. 15.
pub fn render_fig15(f: &Fig15Replication) -> String {
    format!(
        "Figure 15 — toot availability under failures\n\
         no replication   : top-10 instances remove {} | top-10 ASes remove {}\n\
         subscription rep.: top-10 instances remove {} | top-10 ASes remove {}\n",
        pct(f.none_top10_instance_loss),
        pct(f.none_top10_as_loss),
        pct(f.sub_top10_instance_loss),
        pct(f.sub_top10_as_loss),
    )
}

/// Render Fig. 16.
pub fn render_fig16(f: &Fig16RandomReplication) -> String {
    let k = f.none.len() - 1;
    let mut rows = vec![
        vec!["No-Rep".to_string(), pct(f.none[k].availability)],
        vec!["S-Rep".to_string(), pct(f.subscription[k].availability)],
    ];
    for (n, curve) in &f.random {
        rows.push(vec![format!("n = {n}"), pct(curve[k].availability)]);
    }
    format!(
        "Figure 16 — random replication (availability after {} removals)\n{}\
         unreplicated toots (no followers): {} | >10 replicas: {}\n",
        k,
        table(&["strategy", "availability"], &rows),
        pct(f.unreplicated_frac),
        pct(f.over10_frac),
    )
}

/// Render the replication strategy frontier: per scenario (row) and
/// strategy (column), final availability at the cell's storage cost
/// (`avail @ cost× copies per toot`).
pub fn render_section5_scenarios(s: &Section5Scenarios) -> String {
    let mut headers = vec!["scenario"];
    for c in &s.grid.cols {
        headers.push(c.as_str());
    }
    let rows: Vec<Vec<String>> = s
        .grid
        .rows
        .iter()
        .enumerate()
        .map(|(r, label)| {
            let mut row = vec![label.clone()];
            for c in 0..s.grid.cols.len() {
                let cell = s.grid.get(r, c);
                row.push(format!(
                    "{} @ {:.2}x",
                    pct(cell.availability),
                    cell.storage_cost
                ));
            }
            row
        })
        .collect();
    format!(
        "Section 5 (scenarios) — replication strategy frontier\n\
         (availability after the scenario's final step @ stored copies per toot; seed {})\n{}",
        s.seed,
        table(&headers, &rows),
    )
}

/// Render the verdict table.
pub fn render_verdicts(verdicts: &[Verdict]) -> String {
    let rows: Vec<Vec<String>> = verdicts
        .iter()
        .map(|v| {
            vec![
                if v.pass { "PASS" } else { "FAIL" }.to_string(),
                v.id.to_string(),
                format!("{:.3}", v.paper),
                format!("{:.3}", v.measured),
                v.claim.to_string(),
            ]
        })
        .collect();
    table(&["", "check", "paper", "measured", "claim"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.062), "6.2%");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "bbbb"],
            &[
                vec!["xxxxx".into(), "y".into()],
                vec!["z".into(), "w".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows equal width up to trailing spaces
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn render_smoke() {
        use fediscope_worldgen::{Generator, WorldConfig};
        let obs = crate::Observatory::new(Generator::generate_world(WorldConfig::tiny(99)));
        // every renderer must produce non-empty output without panicking
        assert!(!render_fig01(&crate::population::fig01_growth(&obs, 60)).is_empty());
        assert!(!render_fig02(&crate::population::fig02_open_closed(&obs)).is_empty());
        assert!(!render_fig03(&crate::population::fig03_categories(&obs)).is_empty());
        assert!(!render_fig04(&crate::population::fig04_policies(&obs)).is_empty());
        assert!(!render_fig05(&crate::population::fig05_hosting(&obs)).is_empty());
        assert!(!render_fig06(&crate::population::fig06_country_links(&obs)).is_empty());
        assert!(!render_fig07(&crate::availability::fig07_downtime(&obs)).is_empty());
        assert!(!render_fig08(&crate::availability::fig08_daily_downtime(&obs, 30)).is_empty());
        assert!(!render_fig09(&crate::availability::fig09_certificates(&obs)).is_empty());
        assert!(!render_table1(&crate::availability::table1_as_failures(&obs, 2)).is_empty());
        assert!(!render_fig10(&crate::availability::fig10_outages(&obs)).is_empty());
        assert!(!render_fig11(&crate::graphs::fig11_degrees(&obs)).is_empty());
        assert!(!render_table2(&crate::graphs::table2_top_instances(&obs)).is_empty());
        assert!(!render_fig12(&crate::graphs::fig12_user_removal(&obs, 3)).is_empty());
        assert!(!render_fig13(&crate::graphs::fig13_federation_removal(&obs, 10, 5)).is_empty());
        assert!(!render_fig14(&crate::content::fig14_remote_ratio(&obs)).is_empty());
        assert!(!render_fig15(&crate::content::fig15_replication(&obs, 10, 5)).is_empty());
        assert!(!render_fig16(&crate::content::fig16_random_replication(&obs, 10)).is_empty());
        let s5 = crate::scenarios::section5_scenarios(
            &obs,
            &[
                fediscope_replication::scenario::ScenarioSpec::AsSharedFate(3),
                fediscope_replication::scenario::ScenarioSpec::CertCascade(4),
            ],
            &crate::scenarios::frontier_strategies(),
            7,
            None,
        );
        let text = render_section5_scenarios(&s5);
        assert!(text.contains("replication strategy frontier"));
        assert!(text.contains("as-fate(3)"));
        assert!(text.contains("k-of-n(2/4)"));
        assert!(text.contains("@"));
    }

    #[test]
    fn render_section3_live_smoke() {
        use fediscope_simnet::fedsim::OverlaySpec;
        use fediscope_simnet::FedSimConfig;
        use fediscope_worldgen::{toots, Generator, WorldConfig};
        let wcfg = WorldConfig::tiny(99);
        let world = Generator::generate_world(wcfg.clone());
        let arena = toots::generate(&wcfg, &world.users, 32, 8.0);
        let obs = crate::Observatory::new(world);
        let mut clean = FedSimConfig::new(5);
        clean.drain_epochs = 64;
        let mut outage = clean.clone();
        outage.overlay = OverlaySpec::TopAsOutage(2, 4, 16);
        let s3 = crate::delivery::section3_live(&obs, &arena, clean, outage);
        let text = render_section3_live(&s3);
        assert!(text.contains("Section 3 (live)"));
        assert!(text.contains("load share"));
        assert!(text.contains("outage run"));
    }
}
