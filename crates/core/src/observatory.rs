//! The observatory: a world plus lazily derived analysis artefacts.

use fediscope_graph::{DiGraph, GraphBuilder};
use fediscope_model::schedule::OutageArena;
use fediscope_model::world::World;
use fediscope_replication::ContentView;
use std::sync::OnceLock;

/// Ranking metrics used throughout §5 ("ranked by number of users", "by
/// toots posted", "by instances hosted", "by connections").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Users hosted.
    Users,
    /// Toots posted.
    Toots,
    /// Instances hosted (AS ranking only; per-instance it's a constant 1).
    Instances,
    /// Federation-graph connections (instance degree).
    Connections,
}

/// A world plus caches for everything the figures need repeatedly.
pub struct Observatory {
    /// The ground-truth world under analysis.
    pub world: World,
    /// Users per instance.
    pub users_per_instance: Vec<u32>,
    /// Toots per instance.
    pub toots_per_instance: Vec<u64>,
    user_graph: OnceLock<DiGraph>,
    federation_graph: OnceLock<DiGraph>,
    twitter_graph: OnceLock<DiGraph>,
    content_view: OnceLock<ContentView>,
    remote_toots: OnceLock<Vec<u64>>,
    outage_arena: OnceLock<OutageArena>,
}

impl Observatory {
    /// Wrap a world.
    pub fn new(world: World) -> Self {
        let users_per_instance = world.user_counts();
        let toots_per_instance = world.toot_counts();
        Self {
            world,
            users_per_instance,
            toots_per_instance,
            user_graph: OnceLock::new(),
            federation_graph: OnceLock::new(),
            twitter_graph: OnceLock::new(),
            content_view: OnceLock::new(),
            remote_toots: OnceLock::new(),
            outage_arena: OnceLock::new(),
        }
    }

    /// The social follower graph `G(V, E)`.
    pub fn user_graph(&self) -> &DiGraph {
        self.user_graph.get_or_init(|| {
            let mut b = GraphBuilder::new(self.world.users.len() as u32);
            b.extend(self.world.follows.iter().map(|&(a, b)| (a.0, b.0)));
            b.build()
        })
    }

    /// The instance federation graph `GF(I, E)` induced by the follower
    /// graph (§3).
    pub fn federation_graph(&self) -> &DiGraph {
        self.federation_graph.get_or_init(|| {
            DiGraph::from_edges(
                self.world.instances.len() as u32,
                self.world
                    .federation_edges()
                    .into_iter()
                    .map(|(a, b)| (a.0, b.0)),
            )
        })
    }

    /// The Twitter baseline follower graph.
    pub fn twitter_graph(&self) -> &DiGraph {
        self.twitter_graph.get_or_init(|| {
            DiGraph::from_edges(
                self.world.twitter.n_users,
                self.world.twitter.follows.iter().copied(),
            )
        })
    }

    /// The replication content view.
    pub fn content_view(&self) -> &ContentView {
        self.content_view
            .get_or_init(|| ContentView::from_world(&self.world))
    }

    /// The columnar outage arena backing the §4 telemetry sweep (built
    /// once from the ground-truth schedules).
    pub fn outage_arena(&self) -> &OutageArena {
        self.outage_arena
            .get_or_init(|| OutageArena::from_schedules(&self.world.schedules))
    }

    /// Remote (replicated-in) toot volume per instance: public toots of
    /// remote accounts that local users follow (Fig. 14's federated-timeline
    /// composition).
    pub fn remote_toots_per_instance(&self) -> &Vec<u64> {
        self.remote_toots.get_or_init(|| {
            let view = self.content_view();
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for u in 0..view.n_users() {
                for &inst in view.follower_instances(u) {
                    if inst != view.home[u] {
                        pairs.push((inst, u as u32));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            let mut out = vec![0u64; self.world.instances.len()];
            for (inst, user) in pairs {
                out[inst as usize] += view.toots[user as usize];
            }
            out
        })
    }

    /// Value of a per-instance metric.
    pub fn instance_metric(&self, metric: Metric, instance: usize) -> f64 {
        match metric {
            Metric::Users => self.users_per_instance[instance] as f64,
            Metric::Toots => self.toots_per_instance[instance] as f64,
            Metric::Instances => 1.0,
            Metric::Connections => self.federation_graph().degree(instance as u32) as f64,
        }
    }

    /// Instances ordered by a metric, descending (ties by id for
    /// determinism).
    pub fn instance_order(&self, metric: Metric) -> Vec<u32> {
        let n = self.world.instances.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            self.instance_metric(metric, b as usize)
                .partial_cmp(&self.instance_metric(metric, a as usize))
                .unwrap()
                .then(a.cmp(&b))
        });
        order
    }

    /// AS groups (provider index → member instances), ordered by an
    /// aggregate metric descending; empty groups are dropped.
    pub fn as_groups(&self, metric: Metric) -> Vec<Vec<u32>> {
        let by_provider = self.world.instances_by_provider();
        let mut groups: Vec<(f64, Vec<u32>)> = by_provider
            .into_iter()
            .filter(|members| !members.is_empty())
            .map(|members| {
                let score: f64 = members
                    .iter()
                    .map(|id| self.instance_metric(metric, id.index()))
                    .sum();
                (score, members.iter().map(|id| id.0).collect())
            })
            .collect();
        groups.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        groups.into_iter().map(|(_, m)| m).collect()
    }

    /// Per-instance user weights as f64 (for weighted-LCC sweeps).
    pub fn user_weights(&self) -> Vec<f64> {
        self.users_per_instance.iter().map(|&u| u as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn obs() -> Observatory {
        Observatory::new(Generator::generate_world(WorldConfig::tiny(61)))
    }

    #[test]
    fn caches_are_consistent() {
        let o = obs();
        assert_eq!(o.user_graph().node_count(), o.world.users.len());
        assert_eq!(
            o.user_graph().edge_count(),
            {
                let mut e: Vec<_> = o.world.follows.clone();
                e.sort_unstable();
                e.dedup();
                e.len()
            }
        );
        assert_eq!(
            o.federation_graph().edge_count(),
            o.world.federation_edges().len()
        );
    }

    #[test]
    fn instance_order_is_descending() {
        let o = obs();
        for metric in [Metric::Users, Metric::Toots, Metric::Connections] {
            let order = o.instance_order(metric);
            for w in order.windows(2) {
                assert!(
                    o.instance_metric(metric, w[0] as usize)
                        >= o.instance_metric(metric, w[1] as usize)
                );
            }
        }
    }

    #[test]
    fn as_groups_cover_all_instances() {
        let o = obs();
        let groups = o.as_groups(Metric::Instances);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, o.world.instances.len());
        // ordered by member count descending when metric is Instances
        for w in groups.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn remote_toots_zero_when_no_federation() {
        let o = obs();
        let remote = o.remote_toots_per_instance();
        assert_eq!(remote.len(), o.world.instances.len());
        // total remote volume is positive in any federated world
        assert!(remote.iter().sum::<u64>() > 0);
    }
}
