//! §5.2 analyses: content federation and replication (Figs. 14–16).

use crate::observatory::{Metric, Observatory};
use fediscope_model::scale::ScaleTier;
use fediscope_replication::eval::{
    evaluate_plans_fused, AvailabilityPoint, AvailabilitySweep, RemovalPlan,
};
use fediscope_stats::spearman;

/// Fig. 14: home vs remote toots on federated timelines.
#[derive(Debug, Clone)]
pub struct Fig14RemoteRatio {
    /// Per instance (sorted ascending by home share): fraction of the
    /// federated timeline that is locally authored.
    pub home_share_sorted: Vec<f64>,
    /// Fraction of instances producing <10% of their own timeline
    /// (paper: 78%).
    pub below_10pct_frac: f64,
    /// Fraction of instances with *zero* home toots on their timeline
    /// (paper: 5%).
    pub fully_remote_frac: f64,
    /// Correlation between toots produced and volume replicated outward
    /// (paper: 0.97).
    pub production_replication_corr: Option<f64>,
}

/// Compute Fig. 14.
pub fn fig14_remote_ratio(obs: &Observatory) -> Fig14RemoteRatio {
    let remote = obs.remote_toots_per_instance();
    let mut home_share = Vec::new();
    for (i, &rem) in remote.iter().enumerate().take(obs.world.instances.len()) {
        let home = obs.toots_per_instance[i] as f64;
        let rem = rem as f64;
        let total = home + rem;
        if total > 0.0 {
            home_share.push(home / total);
        }
    }
    home_share.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = home_share.len().max(1) as f64;
    let below_10 = home_share.iter().filter(|&&s| s < 0.10).count() as f64 / n;
    let zero = home_share.iter().filter(|&&s| s == 0.0).count() as f64 / n;

    // replication volume: how many remote timelines a given instance's
    // content lands on, weighted by its toots
    let view = obs.content_view();
    let mut replicated_out = vec![0f64; obs.world.instances.len()];
    for u in 0..view.n_users() {
        let remote_holders = view
            .follower_instances(u)
            .iter()
            .filter(|&&i| i != view.home[u])
            .count() as f64;
        replicated_out[view.home[u] as usize] += view.toots[u] as f64 * remote_holders;
    }
    let produced: Vec<f64> = obs.toots_per_instance.iter().map(|&t| t as f64).collect();
    Fig14RemoteRatio {
        home_share_sorted: home_share,
        below_10pct_frac: below_10,
        fully_remote_frac: zero,
        // Rank correlation: per-instance toot counts span decades, and at
        // test scale raw Pearson is decided by whichever single instance
        // hosts the biggest account rather than by the relationship.
        production_replication_corr: spearman(&produced, &replicated_out),
    }
}

/// Fig. 15: toot availability without replication and with subscription
/// replication, under instance and AS removal.
#[derive(Debug, Clone)]
pub struct Fig15Replication {
    /// No replication, removing top instances (by toots).
    pub none_by_instance: Vec<AvailabilityPoint>,
    /// No replication, removing top ASes (by toots).
    pub none_by_as: Vec<AvailabilityPoint>,
    /// Subscription replication, removing top instances.
    pub sub_by_instance: Vec<AvailabilityPoint>,
    /// Subscription replication, removing top ASes.
    pub sub_by_as: Vec<AvailabilityPoint>,
    /// Toots lost after removing the top-10 instances without replication
    /// (paper: 62.69%).
    pub none_top10_instance_loss: f64,
    /// Toots lost after removing the top-10 ASes without replication
    /// (paper: 90.1%).
    pub none_top10_as_loss: f64,
    /// Same with subscription replication (paper: 2.1% / 18.66%).
    pub sub_top10_instance_loss: f64,
    /// AS variant (paper: 18.66%).
    pub sub_top10_as_loss: f64,
}

/// Compute Fig. 15 with sweeps of `max_instances` and `max_ases` removals.
///
/// Both removal orders are compiled into [`RemovalPlan`]s up front and
/// evaluated out of **one** fused walk over the union of their removed
/// instances' resident segments ([`evaluate_plans_fused`]): the heavily
/// overlapping instance/AS orders share most of their segments, so the
/// fused walk streams each shared segment once instead of twice —
/// bit-identical curves to two independent sweeps.
pub fn fig15_replication(
    obs: &Observatory,
    max_instances: usize,
    max_ases: usize,
) -> Fig15Replication {
    let view = obs.content_view();
    let mut inst_order = obs.instance_order(Metric::Toots);
    inst_order.truncate(max_instances);
    let mut as_groups = obs.as_groups(Metric::Toots);
    as_groups.truncate(max_ases);

    let inst_plan = RemovalPlan::from_order(view.n_instances, &inst_order);
    let as_plan = RemovalPlan::from_groups(view.n_instances, &as_groups);
    let (by_instance, by_as) = evaluate_plans_fused(view, &inst_plan, &as_plan, &[]);

    let loss_at = |curve: &[AvailabilityPoint], k: usize| {
        1.0 - curve[k.min(curve.len() - 1)].availability
    };
    Fig15Replication {
        none_top10_instance_loss: loss_at(&by_instance.none, 10),
        none_top10_as_loss: loss_at(&by_as.none, 10),
        sub_top10_instance_loss: loss_at(&by_instance.subscription, 10),
        sub_top10_as_loss: loss_at(&by_as.subscription, 10),
        none_by_instance: by_instance.none,
        none_by_as: by_as.none,
        sub_by_instance: by_instance.subscription,
        sub_by_as: by_as.subscription,
    }
}

/// Fig. 16: random replication for n ∈ {1, 2, 3, 4, 7, 9} vs S-Rep vs
/// No-Rep, under instance removal ranked by toots.
#[derive(Debug, Clone)]
pub struct Fig16RandomReplication {
    /// `(n, curve)` for each replica count.
    pub random: Vec<(usize, Vec<AvailabilityPoint>)>,
    /// Subscription-replication curve.
    pub subscription: Vec<AvailabilityPoint>,
    /// No-replication curve.
    pub none: Vec<AvailabilityPoint>,
    /// Fraction of toots with no subscription replicas (paper: 9.7%).
    pub unreplicated_frac: f64,
    /// Fraction with >10 subscription replicas (paper: 23%).
    pub over10_frac: f64,
}

/// Replica counts evaluated by the paper.
pub const FIG16_NS: [usize; 6] = [1, 2, 3, 4, 7, 9];

/// Compute Fig. 16 with a sweep of `max_instances` removals.
///
/// All eight curves (No-Rep, S-Rep, and every `Random{n}`) come out of a
/// single batched [`AvailabilitySweep`] pass over the flat removal order —
/// no per-strategy rescans, no singleton-group materialisation.
pub fn fig16_random_replication(obs: &Observatory, max_instances: usize) -> Fig16RandomReplication {
    let view = obs.content_view();
    let mut order = obs.instance_order(Metric::Toots);
    order.truncate(max_instances);
    let batch = AvailabilitySweep::singletons(view, &order).evaluate(&FIG16_NS);
    Fig16RandomReplication {
        random: batch.random,
        subscription: batch.subscription,
        none: batch.none,
        unreplicated_frac: view.unreplicated_toot_fraction(),
        over10_frac: view.over_replicated_fraction(10),
    }
}

/// Compute Fig. 15 at a named scale tier: sweep depths follow the tier
/// tables, so per-tier results are comparable across worlds of that tier.
pub fn fig15_replication_tier(obs: &Observatory, tier: ScaleTier) -> Fig15Replication {
    fig15_replication(obs, tier.fig15_max_instances(), tier.fig15_max_ases())
}

/// Compute Fig. 16 at a named scale tier.
pub fn fig16_random_replication_tier(
    obs: &Observatory,
    tier: ScaleTier,
) -> Fig16RandomReplication {
    fig16_random_replication(obs, tier.fig16_max_instances())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn obs() -> Observatory {
        Observatory::new(Generator::generate_world(WorldConfig::small(95)))
    }

    #[test]
    fn fig14_feeders_exist() {
        let o = obs();
        let f = fig14_remote_ratio(&o);
        // most instances' timelines are dominated by remote toots
        assert!(
            f.below_10pct_frac > 0.3,
            "below-10% share {}",
            f.below_10pct_frac
        );
        // production strongly correlates with outward replication
        let c = f.production_replication_corr.expect("correlation");
        assert!(c > 0.5, "correlation {c}");
        // shares are sorted and in range
        for w in f.home_share_sorted.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn fig15_replication_rescues_availability() {
        let o = obs();
        let f = fig15_replication(&o, 30, 10);
        // the paper's core contrast: massive loss without replication,
        // small loss with subscription replication
        assert!(
            f.none_top10_instance_loss > 0.3,
            "no-rep loss {}",
            f.none_top10_instance_loss
        );
        // At paper scale the rescue factor is ~30x (62.69% -> 2.1%); at
        // test scale the follower pool spans far fewer instances, so the
        // factor compresses. Demand a solid improvement, not the full 30x.
        assert!(
            f.sub_top10_instance_loss < f.none_top10_instance_loss * 0.75,
            "sub loss {} vs none {}",
            f.sub_top10_instance_loss,
            f.none_top10_instance_loss
        );
        // AS removal is worse than instance removal
        assert!(f.none_top10_as_loss >= f.none_top10_instance_loss - 0.05);
        assert!(f.sub_top10_as_loss >= f.sub_top10_instance_loss - 0.02);
    }

    #[test]
    fn fig16_random_beats_subscription_for_small_n() {
        let o = obs();
        let f = fig16_random_replication(&o, 25);
        let n1 = &f.random.iter().find(|(n, _)| *n == 1).unwrap().1;
        let k = n1.len() - 1;
        // paper: after 25 removals S-Rep ~95% vs random n=1 ~99.2%
        assert!(
            n1[k].availability >= f.subscription[k].availability - 0.02,
            "random n=1 {} vs subscription {}",
            n1[k].availability,
            f.subscription[k].availability
        );
        // n ≥ 4 keeps availability very high
        let n4 = &f.random.iter().find(|(n, _)| *n == 4).unwrap().1;
        assert!(n4[k].availability > 0.95, "n=4 availability {}", n4[k].availability);
        // replication-skew facts
        assert!(f.unreplicated_frac > 0.0);
        assert!(f.over10_frac > 0.0);
    }

    #[test]
    fn fig15_fused_walk_equals_two_independent_passes() {
        // Real Observatory orders: the fused two-plan walk must be
        // bit-identical to evaluating each removal order on its own.
        let o = obs();
        let view = o.content_view();
        let mut inst_order = o.instance_order(Metric::Toots);
        inst_order.truncate(30);
        let mut as_groups = o.as_groups(Metric::Toots);
        as_groups.truncate(10);
        let by_instance = AvailabilitySweep::singletons(view, &inst_order).evaluate(&[]);
        let by_as = AvailabilitySweep::grouped(view, &as_groups).evaluate(&[]);
        let f = fig15_replication(&o, 30, 10);
        assert_eq!(f.none_by_instance, by_instance.none);
        assert_eq!(f.sub_by_instance, by_instance.subscription);
        assert_eq!(f.none_by_as, by_as.none);
        assert_eq!(f.sub_by_as, by_as.subscription);
    }

    #[test]
    fn fig15_tier_entry_points_follow_tier_tables() {
        // A tiny world exercises the plumbing; sweep depths clamp to the
        // world where the tier tables exceed it.
        let o = Observatory::new(Generator::generate_world(WorldConfig::tiny(5)));
        let tier = ScaleTier::Paper2019;
        let f15 = fig15_replication_tier(&o, tier);
        assert_eq!(
            f15.none_by_instance.len(),
            o.world.instances.len().min(tier.fig15_max_instances()) + 1
        );
        assert!(f15.none_by_as.len() <= tier.fig15_max_ases() + 1);
        let f16 = fig16_random_replication_tier(&o, tier);
        assert_eq!(
            f16.none.len(),
            o.world.instances.len().min(tier.fig16_max_instances()) + 1
        );
        assert_eq!(f16.random.len(), FIG16_NS.len());
    }

    #[test]
    fn fig16_monotone_in_n() {
        let o = obs();
        let f = fig16_random_replication(&o, 15);
        for pair in f.random.windows(2) {
            let (na, ca) = &pair[0];
            let (nb, cb) = &pair[1];
            assert!(na < nb);
            for k in 0..ca.len() {
                assert!(cb[k].availability >= ca[k].availability - 1e-12);
            }
        }
    }
}
