//! §3's load concentration, brought alive: the federation delivery
//! simulator run over an observatory's world.
//!
//! The static §3 analyses rank instances by stock (users, toots hosted);
//! this module measures *flow* — where delivery traffic actually lands
//! when the tier's toot streams are pushed through ActivityPub fan-out —
//! and then overlays the §4 headline failure (the top user-hosting ASes
//! going dark) on the live system to answer the robustness question:
//! does the federation melt, or merely delay and heal?
//!
//! Entry points mirror the §4/§5 convention: [`section3_live`] takes
//! explicit configs, [`section3_live_tier`] applies the tier's knobs
//! ([`FedSimConfig::for_tier`] clean + [`FedSimConfig::with_top_as_outage`]
//! for the degradation run). Rendering lives in
//! [`crate::report::render_section3_live`].

use crate::observatory::Observatory;
use fediscope_model::scale::ScaleTier;
use fediscope_model::TootArena;
use fediscope_simnet::fedsim::{overlay, FanoutArena, FedSim, FedSimConfig, SimRun};
use fediscope_simnet::DeliveryReport;

/// How concentrated delivered load is across instances (the dynamic
/// analogue of the paper's "top instances hold most of the content").
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConcentration {
    /// Total messages delivered across all instances.
    pub delivered_total: u64,
    /// Share of delivered load landing on the top 1% of instances
    /// (by delivered load, at least one instance).
    pub top1pct_share: f64,
    /// Share landing on the top 10%.
    pub top10pct_share: f64,
    /// The five busiest instances: `(instance id, delivered)`.
    pub top5: Vec<(u32, u64)>,
}

/// Compute concentration from per-instance delivered counts.
pub fn load_concentration(delivered: &[u64]) -> LoadConcentration {
    let total: u64 = delivered.iter().sum();
    let mut ranked: Vec<(u32, u64)> = delivered
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as u32, d))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let share = |top_n: usize| -> f64 {
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = ranked.iter().take(top_n).map(|&(_, d)| d).sum();
        sum as f64 / total as f64
    };
    let n = delivered.len();
    LoadConcentration {
        delivered_total: total,
        top1pct_share: share((n / 100).max(1)),
        top10pct_share: share((n / 10).max(1)),
        top5: ranked.into_iter().take(5).collect(),
    }
}

/// Clean run vs outage run, side by side: how much the failure hurt and
/// whether the federation healed.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationSummary {
    /// Attempts refused because the destination was dark.
    pub rejected_down: u64,
    /// Redelivery attempts the outage forced (clean baseline subtracted).
    pub extra_redeliveries: u64,
    /// Deliveries pushed from prompt to delayed by the outage.
    pub extra_delayed: u64,
    /// Amplification under outage ÷ amplification clean.
    pub amplification_ratio: f64,
    /// Deepest total backlog the outage run ever carried.
    pub peak_backlog: u64,
    /// Suspensions entered / lifted again by probes.
    pub suspensions: u64,
    /// Suspensions recovered by a successful probe.
    pub recovered_suspensions: u64,
    /// Ticks past the horizon the outage run needed to empty every queue
    /// (-1: the drain budget expired first).
    pub time_to_drain: i64,
    /// The outage run emptied every queue within the drain budget.
    pub healed: bool,
}

/// The §3 live-system result: both runs, where the load concentrates,
/// and how gracefully the overlay degraded it.
#[derive(Debug, Clone, PartialEq)]
pub struct Section3Live {
    /// The clean (baseline-overlay) run's report.
    pub clean: DeliveryReport,
    /// The degraded (outage-overlay) run's report.
    pub outage: DeliveryReport,
    /// Load concentration measured on the clean run.
    pub load: LoadConcentration,
    /// Load concentration measured under the outage.
    pub outage_load: LoadConcentration,
    /// Clean-vs-outage degradation summary.
    pub degradation: DegradationSummary,
}

/// Run one simulation over the observatory's world under `cfg`'s overlay.
pub fn run_delivery(obs: &Observatory, toots: &TootArena, cfg: FedSimConfig) -> SimRun {
    let fanout = FanoutArena::from_world(&obs.world);
    run_with_fanout(obs, &fanout, toots, cfg)
}

fn run_with_fanout(
    obs: &Observatory,
    fanout: &FanoutArena,
    toots: &TootArena,
    cfg: FedSimConfig,
) -> SimRun {
    let total_ticks = toots.horizon() + cfg.drain_epochs;
    let arena = overlay::build(&cfg.overlay, &obs.world.instances, total_ticks);
    FedSim::new(cfg, fanout, toots, &obs.users_per_instance, arena).run()
}

/// Run the live §3 analysis: `clean_cfg` (expected overlay: baseline)
/// against `outage_cfg`, sharing one fan-out build.
pub fn section3_live(
    obs: &Observatory,
    toots: &TootArena,
    clean_cfg: FedSimConfig,
    outage_cfg: FedSimConfig,
) -> Section3Live {
    let fanout = FanoutArena::from_world(&obs.world);
    let clean = run_with_fanout(obs, &fanout, toots, clean_cfg);
    let outage = run_with_fanout(obs, &fanout, toots, outage_cfg);
    let load = load_concentration(&clean.delivered_per_instance);
    let outage_load = load_concentration(&outage.delivered_per_instance);
    let degradation = DegradationSummary {
        rejected_down: outage.report.rejected_down,
        extra_redeliveries: outage
            .report
            .redelivery_attempts
            .saturating_sub(clean.report.redelivery_attempts),
        extra_delayed: outage
            .report
            .delivered_delayed
            .saturating_sub(clean.report.delivered_delayed),
        amplification_ratio: if clean.report.amplification > 0.0 {
            outage.report.amplification / clean.report.amplification
        } else {
            0.0
        },
        peak_backlog: outage.series.iter().map(|s| s.backlog).max().unwrap_or(0),
        suspensions: outage.report.suspensions,
        recovered_suspensions: outage.report.recovered_suspensions,
        time_to_drain: outage.report.time_to_drain,
        healed: outage.report.drained,
    };
    Section3Live {
        clean: clean.report,
        outage: outage.report,
        load,
        outage_load,
        degradation,
    }
}

/// [`section3_live`] with the tier's knobs: a clean
/// [`FedSimConfig::for_tier`] run against the tier's headline scenario
/// ([`FedSimConfig::with_top_as_outage`] — the top
/// `fedsim_outage_ases` user-hosting ASes dark for the tier's window).
pub fn section3_live_tier(
    obs: &Observatory,
    toots: &TootArena,
    tier: ScaleTier,
    seed: u64,
) -> Section3Live {
    let clean_cfg = FedSimConfig::for_tier(tier, seed);
    let outage_cfg = clean_cfg.clone().with_top_as_outage(tier);
    section3_live(obs, toots, clean_cfg, outage_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_simnet::fedsim::OverlaySpec;
    use fediscope_worldgen::{toots, Generator, WorldConfig};

    const HORIZON: u32 = 48;

    fn fixture() -> (Observatory, TootArena) {
        let cfg = WorldConfig::tiny(61);
        let world = Generator::generate_world(cfg.clone());
        let arena = toots::generate(&cfg, &world.users, HORIZON, 8.0);
        (Observatory::new(world), arena)
    }

    fn configs(seed: u64) -> (FedSimConfig, FedSimConfig) {
        let mut clean = FedSimConfig::new(seed);
        clean.drain_epochs = 96;
        clean.suspend_after = 3;
        clean.probe_interval = 5;
        let mut outage = clean.clone();
        outage.overlay = OverlaySpec::TopAsOutage(3, 8, 28);
        (clean, outage)
    }

    #[test]
    fn load_concentration_math() {
        let delivered = vec![0, 50, 10, 30, 5, 5];
        let lc = load_concentration(&delivered);
        assert_eq!(lc.delivered_total, 100);
        // n=6 → top 1% and top 10% both round up to 1 instance
        assert_eq!(lc.top1pct_share, 0.5);
        assert_eq!(lc.top10pct_share, 0.5);
        assert_eq!(lc.top5[0], (1, 50));
        assert_eq!(lc.top5[1], (3, 30));
        assert_eq!(lc.top5.len(), 5);
        // empty load degrades to zero shares
        let zero = load_concentration(&[0, 0]);
        assert_eq!(zero.delivered_total, 0);
        assert_eq!(zero.top1pct_share, 0.0);
    }

    #[test]
    fn live_run_degrades_then_heals() {
        let (obs, arena) = fixture();
        let (clean_cfg, outage_cfg) = configs(11);
        let s3 = section3_live(&obs, &arena, clean_cfg, outage_cfg);
        assert!(s3.clean.conserved() && s3.outage.conserved());
        assert!(s3.clean.fanned_out > 0, "fixture must generate traffic");
        assert_eq!(s3.clean.rejected_down, 0);
        assert!(s3.degradation.rejected_down > 0, "outage must refuse mail");
        assert!(s3.degradation.amplification_ratio > 1.0);
        assert!(s3.degradation.healed, "bounded outage must drain");
        // authors on dark instances post nothing, so the outage run fans
        // out no more than the clean one — and loses nothing silently
        assert!(s3.outage.fanned_out <= s3.clean.fanned_out);
        // load concentrates: the top decile carries more than its share
        assert_eq!(s3.load.delivered_total, s3.clean.delivered());
        assert!(s3.load.top10pct_share > 0.1);
        assert!(s3.load.top1pct_share <= s3.load.top10pct_share);
        assert!(!s3.load.top5.is_empty());
    }

    #[test]
    fn tier_entry_point_is_deterministic() {
        let (obs, arena) = fixture();
        let tier = ScaleTier::Paper2019;
        let a = section3_live_tier(&obs, &arena, tier, 7);
        let b = section3_live_tier(&obs, &arena, tier, 7);
        assert_eq!(a, b);
        assert_eq!(
            a.outage.overlay,
            OverlaySpec::TopAsOutage(
                tier.fedsim_outage_ases() as u32,
                tier.fedsim_outage_window().0,
                tier.fedsim_outage_window().1
            )
        );
    }
}
