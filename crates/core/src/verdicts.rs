//! Automated paper-vs-measured shape checks.
//!
//! Each verdict encodes one quantitative claim from the paper, the value we
//! measure on the synthetic world, and whether the *qualitative* claim
//! (ordering, factor, threshold) holds. Absolute agreement is not expected —
//! the substrate is synthetic — but every headline narrative of the paper
//! must replicate in direction and rough magnitude.

use crate::availability::{fig07_downtime, fig08_daily_downtime, fig10_outages};
use crate::content::{fig14_remote_ratio, fig15_replication, fig16_random_replication};
use crate::graphs::fig12_user_removal;
use crate::observatory::Observatory;
use crate::population::{fig02_open_closed, fig03_categories, fig05_hosting, fig06_country_links};
use fediscope_model::taxonomy::Category;

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Short identifier (`fig02.top5_users`, …).
    pub id: &'static str,
    /// The paper's claim, verbatim-ish.
    pub claim: &'static str,
    /// The paper's number.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Whether the qualitative claim holds.
    pub pass: bool,
}

/// Evaluate the full verdict suite. `fast` skips the heavier sweeps
/// (Figs. 12, 15, 16) for quick smoke runs.
pub fn evaluate(obs: &Observatory, fast: bool) -> Vec<Verdict> {
    let mut out = Vec::new();
    let mut check = |id, claim, paper: f64, measured: f64, pass: bool| {
        out.push(Verdict {
            id,
            claim,
            paper,
            measured,
            pass,
        });
    };

    // --- §4.1 ---------------------------------------------------------------
    let f2 = fig02_open_closed(obs);
    check(
        "fig02.top5_users",
        "top 5% of instances hold 90.6% of users",
        0.906,
        f2.top5_user_share,
        f2.top5_user_share > 0.6,
    );
    check(
        "fig02.top5_toots",
        "top 5% of instances hold 94.8% of toots",
        0.948,
        f2.top5_toot_share,
        f2.top5_toot_share > 0.6,
    );
    check(
        "fig02.open_mean_users",
        "open instances average 613 users vs 87 for closed",
        613.0 / 87.0,
        f2.mean_users.0 / f2.mean_users.1.max(1e-9),
        f2.mean_users.0 > 2.0 * f2.mean_users.1,
    );
    check(
        "fig02.closed_toots_per_capita",
        "closed-instance users toot more (186.65 vs 94.8)",
        186.65 / 94.8,
        f2.toots_per_capita.1 / f2.toots_per_capita.0.max(1e-9),
        f2.toots_per_capita.1 > f2.toots_per_capita.0,
    );
    check(
        "fig02.activity_medians",
        "median weekly activity: 75% closed vs 50% open",
        75.0 / 50.0,
        f2.activity_closed.median().unwrap_or(0.0)
            / f2.activity_open.median().unwrap_or(1.0).max(1e-9),
        f2.activity_closed.median() > f2.activity_open.median(),
    );

    // --- §4.2 ---------------------------------------------------------------
    // The categorised population is a ~16% subset; below ~30 declaring
    // instances the shares are dominated by one or two servers and the
    // checks become vacuous (0/0 ratios), so they auto-pass on micro worlds.
    let f3 = fig03_categories(obs);
    let cat = |c: Category| f3.rows.iter().find(|r| r.category == c).unwrap();
    let fig03_meaningful = f3.declaring_instances >= 30;
    check(
        "fig03.adult_users",
        "adult: 12.3% of instances but 61% of users",
        61.03 / 12.3,
        cat(Category::Adult).user_share / cat(Category::Adult).instance_share.max(1e-9),
        !fig03_meaningful
            || cat(Category::Adult).user_share > 2.0 * cat(Category::Adult).instance_share,
    );
    check(
        "fig03.tech_under_toots",
        "tech: 55.2% of instances but only 24.5% of toots",
        24.5 / 55.2,
        cat(Category::Tech).toot_share / cat(Category::Tech).instance_share.max(1e-9),
        !fig03_meaningful
            || cat(Category::Tech).toot_share < cat(Category::Tech).instance_share,
    );

    // --- §4.3 ---------------------------------------------------------------
    let f5 = fig05_hosting(obs);
    check(
        "fig05.top3_as_users",
        "top 3 ASes host ~62% of users",
        0.62,
        f5.top3_as_user_share,
        f5.top3_as_user_share > 0.35,
    );
    let jp = f5
        .countries
        .iter()
        .find(|c| c.name == "Japan")
        .map(|c| c.user_share)
        .unwrap_or(0.0);
    check(
        "fig05.japan_users",
        "Japan hosts a quarter of instances but 41% of users",
        0.41,
        jp,
        jp > 0.2,
    );
    let f6 = fig06_country_links(obs);
    check(
        "fig06.same_country",
        "32% of federation links are same-country",
        0.32,
        f6.same_country_share,
        (0.1..0.7).contains(&f6.same_country_share),
    );

    // --- §4.4 ---------------------------------------------------------------
    let f7 = fig07_downtime(obs);
    check(
        "fig07.below_5pct",
        "about half the instances have <5% downtime",
        0.5,
        f7.headlines.below_5pct,
        (0.3..0.75).contains(&f7.headlines.below_5pct),
    );
    check(
        "fig07.above_50pct",
        "11% of instances are down more than half the time",
        0.11,
        f7.headlines.above_50pct,
        (0.02..0.3).contains(&f7.headlines.above_50pct),
    );
    let f8 = fig08_daily_downtime(obs, 7);
    check(
        "fig08.twitter_contrast",
        "Twitter 2007 downtime 1.25% vs Mastodon 10.95%",
        10.95 / 1.25,
        f8.mastodon_mean / f8.twitter_mean.max(1e-9),
        f8.mastodon_mean > 2.0 * f8.twitter_mean,
    );
    check(
        "fig08.size_correlation",
        "toots-vs-downtime correlation is −0.04 (no predictive power)",
        -0.04,
        f8.size_correlation.unwrap_or(0.0),
        f8.size_correlation.unwrap_or(0.0).abs() < 0.4,
    );
    let f10 = fig10_outages(obs);
    check(
        "fig10.any_outage",
        "98% of instances go down at least once",
        0.98,
        f10.any_outage_frac,
        f10.any_outage_frac > 0.85,
    );
    check(
        "fig10.day_plus",
        "a quarter of instances have a ≥1-day outage",
        0.25,
        f10.day_plus_frac,
        (0.05..0.5).contains(&f10.day_plus_frac),
    );
    check(
        "fig10.month_plus",
        "7% of instances have a >1-month outage",
        0.07,
        f10.month_plus_frac,
        f10.month_plus_frac > 0.005 && f10.month_plus_frac < f10.day_plus_frac,
    );

    // --- §5.2 (cheap parts) --------------------------------------------------
    let f14 = fig14_remote_ratio(obs);
    check(
        "fig14.feeder_dependence",
        "78% of instances produce <10% of their own federated timeline",
        0.78,
        f14.below_10pct_frac,
        f14.below_10pct_frac > 0.3,
    );
    check(
        "fig14.production_corr",
        "toot production correlates 0.97 with replication volume",
        0.97,
        f14.production_replication_corr.unwrap_or(0.0),
        f14.production_replication_corr.unwrap_or(0.0) > 0.5,
    );

    if fast {
        return out;
    }

    // --- §5.1 (sweeps) -------------------------------------------------------
    let f12 = fig12_user_removal(obs, 12);
    check(
        "fig12.initial_lcc",
        "99.95% of users sit in the LCC",
        0.9995,
        f12.mastodon_initial_lcc,
        f12.mastodon_initial_lcc > 0.98,
    );
    check(
        "fig12.shatter",
        "removing the top 1% of users shrinks the LCC to 26.38%",
        0.2638,
        f12.mastodon_after_1pct,
        f12.mastodon_after_1pct < 0.65,
    );
    check(
        "fig12.twitter_robust",
        "Twitter keeps 80% of its LCC after removing the top 10%",
        0.80,
        f12.twitter_after_10pct,
        f12.twitter_after_10pct > 0.55 && f12.twitter_after_10pct > f12.mastodon_after_1pct,
    );

    // --- §5.2 (availability sweeps) -------------------------------------------
    let f15 = fig15_replication(obs, 30, 10);
    check(
        "fig15.none_top10_instances",
        "removing the top 10 instances deletes 62.69% of toots",
        0.6269,
        f15.none_top10_instance_loss,
        f15.none_top10_instance_loss > 0.3,
    );
    check(
        "fig15.sub_rescue",
        "with subscription replication only 2.1% of toots are lost",
        0.021,
        f15.sub_top10_instance_loss,
        f15.sub_top10_instance_loss < f15.none_top10_instance_loss * 0.75,
    );
    check(
        "fig15.as_worse",
        "removing the top 10 ASes deletes 90.1% of toots (no replication)",
        0.901,
        f15.none_top10_as_loss,
        f15.none_top10_as_loss >= f15.none_top10_instance_loss - 0.05,
    );
    let f16 = fig16_random_replication(obs, 25);
    let n1_final = f16
        .random
        .iter()
        .find(|(n, _)| *n == 1)
        .map(|(_, c)| c.last().unwrap().availability)
        .unwrap_or(0.0);
    let sub_final = f16.subscription.last().unwrap().availability;
    check(
        "fig16.random_beats_sub",
        "after 25 removals: random n=1 99.2% vs subscription 95%",
        0.992 / 0.95,
        n1_final / sub_final.max(1e-9),
        n1_final >= sub_final - 0.02,
    );
    check(
        "fig16.unreplicated",
        "9.7% of toots have no subscription replicas",
        0.097,
        f16.unreplicated_frac,
        f16.unreplicated_frac > 0.0 && f16.unreplicated_frac < 0.6,
    );

    out
}

/// Count failures.
pub fn failed(verdicts: &[Verdict]) -> usize {
    verdicts.iter().filter(|v| !v.pass).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    #[test]
    fn fast_suite_passes_on_default_world() {
        let obs = Observatory::new(Generator::generate_world(WorldConfig::small(42)));
        let verdicts = evaluate(&obs, true);
        assert!(verdicts.len() >= 15);
        let failures: Vec<&Verdict> = verdicts.iter().filter(|v| !v.pass).collect();
        assert!(
            failures.is_empty(),
            "failed verdicts: {:?}",
            failures.iter().map(|v| v.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn full_suite_passes_on_default_world() {
        let obs = Observatory::new(Generator::generate_world(WorldConfig::small(42)));
        let verdicts = evaluate(&obs, false);
        assert!(verdicts.len() >= 22);
        let failures: Vec<&str> = verdicts.iter().filter(|v| !v.pass).map(|v| v.id).collect();
        assert!(failures.is_empty(), "failed verdicts: {failures:?}");
    }

    #[test]
    fn verdicts_stable_across_seeds() {
        for seed in [7u64, 1234] {
            let obs = Observatory::new(Generator::generate_world(WorldConfig::small(seed)));
            let verdicts = evaluate(&obs, true);
            let failures: Vec<&str> =
                verdicts.iter().filter(|v| !v.pass).map(|v| v.id).collect();
            assert!(failures.is_empty(), "seed {seed}: failed {failures:?}");
        }
    }
}
