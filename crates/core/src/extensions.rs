//! Extensions beyond the paper's evaluation, implementing its stated future
//! work (§7): "our future work will investigate the impact that instance
//! blocking has on the social graph and how it can be used to filter
//! malicious content" — motivated by Gab's fork of Mastodon.
//!
//! Instance blocking ("defederation") removes an instance from everyone
//! else's federation without taking it offline: its users keep their local
//! graph, but all cross-instance subscriptions involving it disappear.

use crate::observatory::{Metric, Observatory};
use fediscope_graph::weakly_connected;

/// Impact assessment of blocking a set of instances.
#[derive(Debug, Clone, PartialEq)]
pub struct DefederationReport {
    /// The blocked instance ids.
    pub blocked: Vec<u32>,
    /// Federation-graph LCC (fraction of instances) before blocking.
    pub lcc_instances_before: f64,
    /// … and after.
    pub lcc_instances_after: f64,
    /// User coverage of the federation LCC before blocking.
    pub lcc_users_before: f64,
    /// … and after (blocked instances' users no longer count as reachable).
    pub lcc_users_after: f64,
    /// User-level follow edges severed (either endpoint on a blocked
    /// instance, endpoints on different instances).
    pub follows_severed: usize,
    /// Users on *remaining* instances who lose at least one followee.
    pub users_losing_followees: usize,
    /// Remote-toot volume that vanishes from the remaining instances'
    /// federated timelines (the content-filtering effect).
    pub timeline_toots_lost: u64,
}

/// Assess the impact of blocking `blocked` (instance ids) everywhere.
pub fn defederation_impact(obs: &Observatory, blocked: &[u32]) -> DefederationReport {
    let fed = obs.federation_graph();
    let n = fed.node_count();
    let blocked_set: std::collections::HashSet<u32> = blocked.iter().copied().collect();
    let weights = obs.user_weights();
    let total_users: f64 = weights.iter().sum();

    let before = weakly_connected(fed, None);
    // Blocking an instance isolates it: equivalent to removing its node
    // from the federation graph (its *local* community survives but cannot
    // federate).
    let alive: Vec<bool> = (0..n as u32).map(|i| !blocked_set.contains(&i)).collect();
    let after = weakly_connected(fed, Some(&alive));

    // User-level effects.
    let view = obs.content_view();
    let mut severed = 0usize;
    let mut losing: std::collections::HashSet<u32> = Default::default();
    for &(a, b) in &obs.world.follows {
        let ia = view.home[a.index()];
        let ib = view.home[b.index()];
        if ia == ib {
            continue;
        }
        let a_blocked = blocked_set.contains(&ia);
        let b_blocked = blocked_set.contains(&ib);
        if a_blocked != b_blocked {
            severed += 1;
            if !a_blocked {
                losing.insert(a.0);
            }
        } else if a_blocked && b_blocked {
            // both blocked: federation between two blocked instances also
            // stops, but affects no remaining instance
            severed += 1;
        }
    }

    // Timeline content lost by the remaining instances: deduplicated
    // (instance, blocked followee) pairs weighted by the followee's toots.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for u in 0..view.n_users() {
        if !blocked_set.contains(&view.home[u]) {
            continue;
        }
        for &inst in view.follower_instances(u) {
            if inst != view.home[u] && !blocked_set.contains(&inst) {
                pairs.push((inst, u as u32));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let timeline_toots_lost: u64 = pairs
        .iter()
        .map(|&(_, u)| view.toots[u as usize])
        .sum();

    DefederationReport {
        blocked: blocked.to_vec(),
        lcc_instances_before: before.largest() as f64 / n.max(1) as f64,
        lcc_instances_after: after.largest() as f64 / n.max(1) as f64,
        lcc_users_before: if total_users > 0.0 {
            before.largest_weight(&weights) / total_users
        } else {
            0.0
        },
        lcc_users_after: if total_users > 0.0 {
            after.largest_weight(&weights) / total_users
        } else {
            0.0
        },
        follows_severed: severed,
        users_losing_followees: losing.len(),
        timeline_toots_lost,
    }
}

/// Scenario helper: the `k` largest instances by a metric (the "what if
/// everyone blocked the giants?" experiment).
pub fn largest_instances(obs: &Observatory, metric: Metric, k: usize) -> Vec<u32> {
    let mut order = obs.instance_order(metric);
    order.truncate(k);
    order
}

/// Scenario helper: a "rogue fork" — the single instance whose blocking
/// severs the most cross-instance follows (the Gab scenario: one large,
/// widely-connected instance).
pub fn most_connected_instance(obs: &Observatory) -> Option<u32> {
    let fed = obs.federation_graph();
    (0..fed.node_count() as u32).max_by_key(|&i| fed.degree(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn obs() -> Observatory {
        Observatory::new(Generator::generate_world(WorldConfig::tiny(404)))
    }

    #[test]
    fn blocking_nothing_changes_nothing() {
        let o = obs();
        let r = defederation_impact(&o, &[]);
        assert_eq!(r.lcc_instances_before, r.lcc_instances_after);
        assert_eq!(r.lcc_users_before, r.lcc_users_after);
        assert_eq!(r.follows_severed, 0);
        assert_eq!(r.users_losing_followees, 0);
        assert_eq!(r.timeline_toots_lost, 0);
    }

    #[test]
    fn blocking_the_giants_hurts_user_coverage_most() {
        let o = obs();
        let giants = largest_instances(&o, Metric::Users, 3);
        let r = defederation_impact(&o, &giants);
        // instance-level LCC barely moves (3 nodes gone) but the user
        // coverage collapses — the paper's centralisation point restated
        assert!(r.lcc_instances_after <= r.lcc_instances_before);
        assert!(
            r.lcc_users_after < r.lcc_users_before * 0.8,
            "user coverage {} -> {}",
            r.lcc_users_before,
            r.lcc_users_after
        );
        assert!(r.follows_severed > 0);
        assert!(r.users_losing_followees > 0);
    }

    #[test]
    fn blocking_tail_instance_is_cheap() {
        let o = obs();
        // least-connected populated instance
        let order = o.instance_order(Metric::Users);
        let tail = *order.last().unwrap();
        let r = defederation_impact(&o, &[tail]);
        assert!(
            r.lcc_users_after >= r.lcc_users_before - 0.05,
            "blocking a tail instance should barely matter"
        );
    }

    #[test]
    fn timeline_loss_bounded_by_blocked_production() {
        let o = obs();
        let giants = largest_instances(&o, Metric::Toots, 2);
        let r = defederation_impact(&o, &giants);
        // lost remote volume cannot exceed (replicas per user) × production,
        // and with deduplicated (instance, followee) pairs it is at most
        // production × number of remaining instances
        let produced: u64 = giants
            .iter()
            .map(|&i| o.toots_per_instance[i as usize])
            .sum();
        let remaining = o.world.instances.len() as u64;
        assert!(r.timeline_toots_lost <= produced * remaining);
        assert!(r.timeline_toots_lost > 0, "giants feed many timelines");
    }

    #[test]
    fn most_connected_is_a_giant() {
        let o = obs();
        let hub = most_connected_instance(&o).unwrap();
        let fed = o.federation_graph();
        let median_degree = {
            let mut d: Vec<u32> = (0..fed.node_count() as u32).map(|i| fed.degree(i)).collect();
            d.sort_unstable();
            d[d.len() / 2]
        };
        assert!(fed.degree(hub) > median_degree);
    }

    #[test]
    fn severed_counts_are_symmetric_in_blocking_direction() {
        // blocking A from B's view also stops B→A: every cross edge with
        // exactly one blocked endpoint is severed exactly once.
        let o = obs();
        let giants = largest_instances(&o, Metric::Users, 1);
        let r = defederation_impact(&o, &giants);
        let view = o.content_view();
        let hand: usize = o
            .world
            .follows
            .iter()
            .filter(|&&(a, b)| {
                let ia = view.home[a.index()];
                let ib = view.home[b.index()];
                ia != ib && (giants.contains(&ia) || giants.contains(&ib))
            })
            .count();
        assert_eq!(r.follows_severed, hand);
    }
}
