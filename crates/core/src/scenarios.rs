//! §5 extension: the correlated-failure scenario grid.
//!
//! The paper's §5.2 sweeps (Figs. 15/16) remove instances one at a time;
//! this analysis runs the repo's correlated-failure engine
//! (`fediscope_replication::scenario`) over an observatory world: every
//! [`ScenarioSpec`] (AS/hoster shared fate, cert-lapse cascades, region
//! waves, churn with rebirth) × every [`ScenarioStrategy`] (the paper's
//! No-Rep/S-Rep/Random plus k-of-n erasure, popularity-weighted, and
//! follower-locality placement), evaluated in one sharded pass and
//! reported as the replication strategy frontier: availability vs
//! storage cost per scenario.

use crate::observatory::Observatory;
use fediscope_model::scale::ScaleTier;
use fediscope_model::time::Day;
use fediscope_replication::scenario::{
    compile, evaluate_grid, FrontierCell, Grid, ScenarioSpec, ScenarioStrategy, ScenarioWorld,
};

/// The scenario-grid analysis output.
#[derive(Debug, Clone)]
pub struct Section5Scenarios {
    /// Placement seed the randomized strategies drew from.
    pub seed: u64,
    /// The frontier: rows = scenarios, columns = strategies.
    pub grid: Grid<FrontierCell>,
}

/// The default scenario set at a tier: both shared-fate axes at the
/// tier's depth, a four-country region wave, and the tier's cascade and
/// churn resolutions.
pub fn tier_specs(tier: ScaleTier) -> Vec<ScenarioSpec> {
    let fate = tier.scenario_shared_fate_groups() as u32;
    vec![
        ScenarioSpec::AsSharedFate(fate),
        ScenarioSpec::HosterSharedFate(fate),
        ScenarioSpec::RegionWave(4),
        ScenarioSpec::CertCascade(tier.scenario_cascade_buckets() as u32),
        ScenarioSpec::ChurnRebirth(tier.scenario_churn_steps() as u32),
    ]
}

/// The default strategy frontier: the paper's three schemes plus the
/// three extended placements.
pub fn frontier_strategies() -> Vec<ScenarioStrategy> {
    vec![
        ScenarioStrategy::NoRep,
        ScenarioStrategy::SRep,
        ScenarioStrategy::Random(2),
        ScenarioStrategy::KOfN(2, 4),
        ScenarioStrategy::PopWeighted(1, 4),
        ScenarioStrategy::FollowerLocal(3),
    ]
}

/// Evaluate an explicit scenario × strategy grid over the observatory's
/// world. `rebirth` is an optional per-instance rebirth stream (e.g.
/// `fediscope_worldgen::streams::rebirth_days`); without one, churn
/// scenarios treat every retirement as permanent.
pub fn section5_scenarios(
    obs: &Observatory,
    specs: &[ScenarioSpec],
    strategies: &[ScenarioStrategy],
    seed: u64,
    rebirth: Option<Vec<Option<Day>>>,
) -> Section5Scenarios {
    let mut sw = ScenarioWorld::from_world(&obs.world);
    if let Some(rebirth) = rebirth {
        sw = sw.with_rebirth(rebirth);
    }
    let compiled: Vec<_> = specs.iter().map(|s| compile(s, &sw)).collect();
    let grid = evaluate_grid(obs.content_view(), &sw, &compiled, strategies, seed);
    Section5Scenarios { seed, grid }
}

/// [`section5_scenarios`] with the tier's default specs and the default
/// strategy frontier.
pub fn section5_scenarios_tier(
    obs: &Observatory,
    tier: ScaleTier,
    seed: u64,
    rebirth: Option<Vec<Option<Day>>>,
) -> Section5Scenarios {
    section5_scenarios(obs, &tier_specs(tier), &frontier_strategies(), seed, rebirth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{streams, Generator, WorldConfig};

    fn tiny_obs(seed: u64) -> Observatory {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 30;
        cfg.n_users = 400;
        Observatory::new(Generator::generate_world(cfg))
    }

    #[test]
    fn tier_defaults_shape_the_grid() {
        let obs = tiny_obs(3);
        let s = section5_scenarios_tier(&obs, ScaleTier::Paper2019, 7, None);
        assert_eq!(s.grid.rows.len(), 5);
        assert_eq!(s.grid.cols.len(), 6);
        assert_eq!(s.grid.cells.len(), 30);
        for cell in &s.grid.cells {
            assert!((0.0..=1.0).contains(&cell.availability));
            assert!(cell.storage_cost >= 1.0 || cell.storage_cost > 0.0);
            assert_eq!(cell.curve[0], 1.0);
        }
        // no-rep stores exactly one copy per toot
        for r in 0..s.grid.rows.len() {
            assert_eq!(s.grid.get(r, 0).storage_cost, 1.0);
        }
    }

    #[test]
    fn rebirth_stream_softens_churn() {
        let obs = tiny_obs(5);
        let churn = [ScenarioSpec::ChurnRebirth(6)];
        let strategies = [ScenarioStrategy::NoRep];
        let gone = section5_scenarios(&obs, &churn, &strategies, 11, None);
        let rebirth = streams::rebirth_days(&obs.world.schedules, 11, 1.0);
        let reborn = section5_scenarios(&obs, &churn, &strategies, 11, Some(rebirth));
        // reviving every eligible instance can only help availability
        assert!(
            reborn.grid.get(0, 0).availability >= gone.grid.get(0, 0).availability,
            "rebirth spares content"
        );
    }
}
