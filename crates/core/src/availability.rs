//! §4.4 analyses: availability, outages, certificates, AS failures
//! (Figs. 7–10, Table 1).

use crate::observatory::Observatory;
use fediscope_model::certs::CertificateAuthority;
use fediscope_monitor::asn::{as_failure_table, AsFailureRow};
use fediscope_monitor::certs::{attribute_cert_outages, ca_footprint, CertOutageReport};
use fediscope_monitor::daily::{daily_downtime, size_downtime_correlation, SizeBin};
use fediscope_monitor::downtime::{downtime_report, failure_exposure, headlines, DowntimeHeadlines};
use fediscope_monitor::outages::{outage_durations, worst_day_blackout};
use fediscope_stats::{BoxStats, Ecdf};

/// Fig. 7: downtime CDF + exposure.
#[derive(Debug, Clone)]
pub struct Fig07Downtime {
    /// CDF of lifetime downtime fractions.
    pub downtime_cdf: Ecdf,
    /// Headline §4.4 statistics.
    pub headlines: DowntimeHeadlines,
    /// Users unavailable when a failing instance goes down.
    pub users_exposure: Ecdf,
    /// Toots unavailable.
    pub toots_exposure: Ecdf,
    /// Boosted toots unavailable.
    pub boosts_exposure: Ecdf,
}

/// Compute Fig. 7.
pub fn fig07_downtime(obs: &Observatory) -> Fig07Downtime {
    let report = downtime_report(&obs.world.schedules);
    let exposure = failure_exposure(&obs.world.instances, &obs.world.schedules);
    Fig07Downtime {
        headlines: headlines(&report),
        downtime_cdf: report.cdf,
        users_exposure: exposure.users,
        toots_exposure: exposure.toots,
        boosts_exposure: exposure.boosts,
    }
}

/// Fig. 8: per-day downtime by size bin vs Twitter.
#[derive(Debug, Clone)]
pub struct Fig08DailyDowntime {
    /// Box stats per size bin (Fig. 8 order).
    pub bins: Vec<(SizeBin, Option<BoxStats>)>,
    /// Mean Mastodon per-day downtime (paper: 10.95%).
    pub mastodon_mean: f64,
    /// Mean Twitter 2007 per-day downtime (paper: 1.25%).
    pub twitter_mean: f64,
    /// Twitter box stats.
    pub twitter_box: Option<BoxStats>,
    /// Correlation between toot count and downtime (paper: −0.04).
    pub size_correlation: Option<f64>,
}

/// Compute Fig. 8. `day_stride` subsamples days to bound cost.
pub fn fig08_daily_downtime(obs: &Observatory, day_stride: u32) -> Fig08DailyDowntime {
    let dd = daily_downtime(&obs.world.instances, &obs.world.schedules, day_stride);
    let t = &obs.world.twitter.daily_downtime;
    Fig08DailyDowntime {
        bins: dd.box_stats(),
        mastodon_mean: dd.mean(),
        twitter_mean: t.iter().sum::<f64>() / t.len().max(1) as f64,
        twitter_box: BoxStats::of(t),
        size_correlation: size_downtime_correlation(&obs.world.instances, &obs.world.schedules),
    }
}

/// Fig. 9: certificates.
#[derive(Debug, Clone)]
pub struct Fig09Certificates {
    /// CA market share (Fig. 9a).
    pub footprint: Vec<(CertificateAuthority, f64)>,
    /// Expiry attribution (Fig. 9b).
    pub outages: CertOutageReport,
}

/// Compute Fig. 9.
pub fn fig09_certificates(obs: &Observatory) -> Fig09Certificates {
    Fig09Certificates {
        footprint: ca_footprint(&obs.world.instances),
        outages: attribute_cert_outages(&obs.world.instances, &obs.world.schedules),
    }
}

/// Table 1: AS-wide failures. `min_instances` is the membership threshold
/// (paper: 8; scale it down for small worlds).
pub fn table1_as_failures(obs: &Observatory, min_instances: usize) -> Vec<AsFailureRow> {
    as_failure_table(
        &obs.world.instances,
        &obs.world.schedules,
        &obs.world.providers,
        min_instances,
    )
}

/// Fig. 10: continuous outages.
#[derive(Debug, Clone)]
pub struct Fig10Outages {
    /// Duration CDF (days).
    pub durations: Ecdf,
    /// Fraction of instances failing at least once (paper: 98%).
    pub any_outage_frac: f64,
    /// Fraction with a ≥1-day outage (paper: 25%).
    pub day_plus_frac: f64,
    /// Fraction with a >1-month outage (paper: 7%).
    pub month_plus_frac: f64,
    /// Users on day-plus-outage instances.
    pub users_affected: u64,
    /// Toots on day-plus-outage instances.
    pub toots_affected: u64,
    /// Worst whole-day blackout: `(day, fraction of global toots)`.
    pub worst_day: (fediscope_model::time::Day, f64),
}

/// Compute Fig. 10.
pub fn fig10_outages(obs: &Observatory) -> Fig10Outages {
    let d = outage_durations(&obs.world.instances, &obs.world.schedules);
    Fig10Outages {
        durations: d.durations_days,
        any_outage_frac: d.any_outage_frac,
        day_plus_frac: d.day_plus_frac,
        month_plus_frac: d.month_plus_frac,
        users_affected: d.users_affected,
        toots_affected: d.toots_affected,
        worst_day: worst_day_blackout(&obs.world.instances, &obs.world.schedules),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn obs() -> Observatory {
        Observatory::new(Generator::generate_world(WorldConfig::small(81)))
    }

    #[test]
    fn fig07_headline_bands() {
        let o = obs();
        let f = fig07_downtime(&o);
        // paper: ~50% below 5% downtime; ~11% above 50%
        assert!((0.30..=0.72).contains(&f.headlines.below_5pct));
        assert!((0.02..=0.25).contains(&f.headlines.above_50pct));
        assert!(f.headlines.mean > 0.02 && f.headlines.mean < 0.30);
        assert!(!f.users_exposure.is_empty());
    }

    #[test]
    fn fig08_twitter_beats_mastodon() {
        let o = obs();
        let f = fig08_daily_downtime(&o, 7);
        assert!(
            f.mastodon_mean > 2.0 * f.twitter_mean,
            "mastodon {} vs twitter {}",
            f.mastodon_mean,
            f.twitter_mean
        );
        // size is a poor predictor of availability
        if let Some(c) = f.size_correlation {
            assert!(c.abs() < 0.4, "correlation {c}");
        }
        // the mid-size bin is the most reliable (non-monotonic pattern)
        let median_of = |bin: SizeBin| {
            f.bins
                .iter()
                .find(|(b, _)| *b == bin)
                .and_then(|(_, s)| s.as_ref())
                .map(|s| s.median)
        };
        if let (Some(small), Some(large)) = (median_of(SizeBin::Small), median_of(SizeBin::Large))
        {
            assert!(small >= large);
        }
    }

    #[test]
    fn fig09_lets_encrypt_and_cohort() {
        let o = obs();
        let f = fig09_certificates(&o);
        let le = f
            .footprint
            .iter()
            .find(|(ca, _)| *ca == CertificateAuthority::LetsEncrypt)
            .unwrap()
            .1;
        assert!(le > 0.8);
        // synchronized expiry cohort peaks well above background
        assert!(f.outages.worst_day_count() >= 3);
    }

    #[test]
    fn table1_detects_planned_failures() {
        let o = obs();
        let rows = table1_as_failures(&o, 3);
        assert!(!rows.is_empty());
        let total_failures: usize = rows.iter().map(|r| r.failures).sum();
        assert!(total_failures >= 3);
    }

    #[test]
    fn fig10_shape() {
        let o = obs();
        let f = fig10_outages(&o);
        assert!(f.any_outage_frac > 0.85, "{}", f.any_outage_frac);
        assert!((0.05..=0.5).contains(&f.day_plus_frac), "{}", f.day_plus_frac);
        assert!(f.month_plus_frac < f.day_plus_frac);
        assert!(f.worst_day.1 > 0.0, "some day must lose toots");
        assert!(f.users_affected > 0);
    }
}
