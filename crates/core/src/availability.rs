//! §4.4 analyses: availability, outages, certificates, AS failures
//! (Figs. 7–10, Table 1).
//!
//! Two routes produce the same figures:
//!
//! - the kept per-figure functions ([`fig07_downtime`],
//!   [`fig08_daily_downtime`], [`fig10_outages`], [`table1_as_failures`])
//!   walk the schedule list once per figure — the naive reference;
//! - [`section4_sweep`] / [`section4_tier`] fold **all** of Figs. 7, 8, 10,
//!   the worst-day blackout, and Table 1 out of one sharded
//!   [`MonitorSweep`] pass over the observatory's columnar
//!   [`fediscope_model::schedule::OutageArena`] — bit-identical output at
//!   any thread count, and the only route that should run at tier scale.

use crate::observatory::Observatory;
use fediscope_model::certs::CertificateAuthority;
use fediscope_model::scale::ScaleTier;
use fediscope_monitor::asn::{as_failure_table, AsFailureRow};
use fediscope_monitor::certs::{attribute_cert_outages, ca_footprint, CertOutageReport};
use fediscope_monitor::daily::{daily_downtime, size_downtime_correlation, SizeBin};
use fediscope_monitor::downtime::{downtime_report, failure_exposure, headlines, DowntimeHeadlines};
use fediscope_monitor::outages::{outage_durations, worst_day_blackout};
use fediscope_monitor::{MonitorSweep, SweepConfig, SweepOutput};
use fediscope_stats::{BoxStats, Ecdf};

/// Fig. 7: downtime CDF + exposure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07Downtime {
    /// CDF of lifetime downtime fractions.
    pub downtime_cdf: Ecdf,
    /// Headline §4.4 statistics.
    pub headlines: DowntimeHeadlines,
    /// Users unavailable when a failing instance goes down.
    pub users_exposure: Ecdf,
    /// Toots unavailable.
    pub toots_exposure: Ecdf,
    /// Boosted toots unavailable.
    pub boosts_exposure: Ecdf,
}

/// Compute Fig. 7.
pub fn fig07_downtime(obs: &Observatory) -> Fig07Downtime {
    let report = downtime_report(&obs.world.schedules);
    let exposure = failure_exposure(&obs.world.instances, &obs.world.schedules);
    Fig07Downtime {
        headlines: headlines(&report),
        downtime_cdf: report.cdf,
        users_exposure: exposure.users,
        toots_exposure: exposure.toots,
        boosts_exposure: exposure.boosts,
    }
}

/// Fig. 8: per-day downtime by size bin vs Twitter.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08DailyDowntime {
    /// Box stats per size bin (Fig. 8 order).
    pub bins: Vec<(SizeBin, Option<BoxStats>)>,
    /// Mean Mastodon per-day downtime (paper: 10.95%).
    pub mastodon_mean: f64,
    /// Mean Twitter 2007 per-day downtime (paper: 1.25%).
    pub twitter_mean: f64,
    /// Twitter box stats.
    pub twitter_box: Option<BoxStats>,
    /// Correlation between toot count and downtime (paper: −0.04).
    pub size_correlation: Option<f64>,
}

/// Compute Fig. 8. `day_stride` subsamples days to bound cost.
pub fn fig08_daily_downtime(obs: &Observatory, day_stride: u32) -> Fig08DailyDowntime {
    let dd = daily_downtime(&obs.world.instances, &obs.world.schedules, day_stride);
    let t = &obs.world.twitter.daily_downtime;
    Fig08DailyDowntime {
        bins: dd.box_stats(),
        mastodon_mean: dd.mean(),
        twitter_mean: t.iter().sum::<f64>() / t.len().max(1) as f64,
        twitter_box: BoxStats::of(t),
        size_correlation: size_downtime_correlation(&obs.world.instances, &obs.world.schedules),
    }
}

/// Fig. 9: certificates.
#[derive(Debug, Clone)]
pub struct Fig09Certificates {
    /// CA market share (Fig. 9a).
    pub footprint: Vec<(CertificateAuthority, f64)>,
    /// Expiry attribution (Fig. 9b).
    pub outages: CertOutageReport,
}

/// Compute Fig. 9.
pub fn fig09_certificates(obs: &Observatory) -> Fig09Certificates {
    Fig09Certificates {
        footprint: ca_footprint(&obs.world.instances),
        outages: attribute_cert_outages(&obs.world.instances, &obs.world.schedules),
    }
}

/// Table 1: AS-wide failures. `min_instances` is the membership threshold
/// (paper: 8; scale it down for small worlds).
pub fn table1_as_failures(obs: &Observatory, min_instances: usize) -> Vec<AsFailureRow> {
    as_failure_table(
        &obs.world.instances,
        &obs.world.schedules,
        &obs.world.providers,
        min_instances,
    )
}

/// Fig. 10: continuous outages.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Outages {
    /// Duration CDF (days).
    pub durations: Ecdf,
    /// Fraction of instances failing at least once (paper: 98%).
    pub any_outage_frac: f64,
    /// Fraction with a ≥1-day outage (paper: 25%).
    pub day_plus_frac: f64,
    /// Fraction with a >1-month outage (paper: 7%).
    pub month_plus_frac: f64,
    /// Users on day-plus-outage instances.
    pub users_affected: u64,
    /// Toots on day-plus-outage instances.
    pub toots_affected: u64,
    /// Worst whole-day blackout: `(day, fraction of global toots)`.
    pub worst_day: (fediscope_model::time::Day, f64),
}

/// Compute Fig. 10.
pub fn fig10_outages(obs: &Observatory) -> Fig10Outages {
    let d = outage_durations(&obs.world.instances, &obs.world.schedules);
    Fig10Outages {
        durations: d.durations_days,
        any_outage_frac: d.any_outage_frac,
        day_plus_frac: d.day_plus_frac,
        month_plus_frac: d.month_plus_frac,
        users_affected: d.users_affected,
        toots_affected: d.toots_affected,
        worst_day: worst_day_blackout(&obs.world.instances, &obs.world.schedules),
    }
}

/// All of §4's availability output (Figs. 7, 8, 10 + Table 1), produced
/// by one [`MonitorSweep`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Section4 {
    /// Fig. 7: downtime CDF + exposure.
    pub fig07: Fig07Downtime,
    /// Fig. 8: daily downtime by size bin vs Twitter.
    pub fig08: Fig08DailyDowntime,
    /// Fig. 10: continuous outages + the worst blackout day.
    pub fig10: Fig10Outages,
    /// Table 1: AS-wide failures.
    pub table1: Vec<AsFailureRow>,
}

/// Shape a [`SweepOutput`] into the per-figure §4 structs, pulling the
/// Twitter baseline from the world like the naive figure functions do.
fn section4_from_sweep(obs: &Observatory, out: SweepOutput) -> Section4 {
    let t = &obs.world.twitter.daily_downtime;
    Section4 {
        fig07: Fig07Downtime {
            headlines: headlines(&out.downtime),
            downtime_cdf: out.downtime.cdf,
            users_exposure: out.exposure.users,
            toots_exposure: out.exposure.toots,
            boosts_exposure: out.exposure.boosts,
        },
        fig08: Fig08DailyDowntime {
            bins: out.daily.box_stats(),
            mastodon_mean: out.daily.mean(),
            twitter_mean: t.iter().sum::<f64>() / t.len().max(1) as f64,
            twitter_box: BoxStats::of(t),
            size_correlation: out.size_correlation,
        },
        fig10: Fig10Outages {
            durations: out.outages.durations_days,
            any_outage_frac: out.outages.any_outage_frac,
            day_plus_frac: out.outages.day_plus_frac,
            month_plus_frac: out.outages.month_plus_frac,
            users_affected: out.outages.users_affected,
            toots_affected: out.outages.toots_affected,
            worst_day: out.worst_day,
        },
        table1: out.as_table,
    }
}

/// Compute all of §4 in one sharded pass over the observatory's columnar
/// arena. Every figure equals its naive counterpart bit-for-bit
/// (`min_as_instances` plays [`table1_as_failures`]' `min_instances` role;
/// `day_stride` plays [`fig08_daily_downtime`]'s).
pub fn section4_sweep(obs: &Observatory, min_as_instances: usize, day_stride: u32) -> Section4 {
    let cfg = SweepConfig {
        day_stride,
        min_as_instances,
    };
    let out = MonitorSweep::new(obs.outage_arena(), &obs.world.instances)
        .run(&obs.world.providers, &cfg);
    section4_from_sweep(obs, out)
}

/// [`section4_sweep`] with the tier's knobs (paper Table 1 threshold,
/// full-resolution Fig. 8, via [`SweepConfig::for_tier`]) — the §4 entry
/// point for tier-scaled worlds.
pub fn section4_tier(obs: &Observatory, tier: ScaleTier) -> Section4 {
    let cfg = SweepConfig::for_tier(tier);
    section4_sweep(obs, cfg.min_as_instances, cfg.day_stride)
}

/// Fig. 7 at tier scale, through the sweep. When more than one §4 figure
/// is needed, call [`section4_tier`] once instead — the sweep computes
/// them all in the same pass.
pub fn fig07_downtime_tier(obs: &Observatory, tier: ScaleTier) -> Fig07Downtime {
    section4_tier(obs, tier).fig07
}

/// Fig. 8 at tier scale, through the sweep (see [`fig07_downtime_tier`]'s
/// amortisation note).
pub fn fig08_daily_downtime_tier(obs: &Observatory, tier: ScaleTier) -> Fig08DailyDowntime {
    section4_tier(obs, tier).fig08
}

/// Fig. 10 at tier scale, through the sweep (see [`fig07_downtime_tier`]'s
/// amortisation note).
pub fn fig10_outages_tier(obs: &Observatory, tier: ScaleTier) -> Fig10Outages {
    section4_tier(obs, tier).fig10
}

/// Table 1 at tier scale, through the sweep (see [`fig07_downtime_tier`]'s
/// amortisation note).
pub fn table1_as_failures_tier(obs: &Observatory, tier: ScaleTier) -> Vec<AsFailureRow> {
    section4_tier(obs, tier).table1
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn obs() -> Observatory {
        Observatory::new(Generator::generate_world(WorldConfig::small(81)))
    }

    #[test]
    fn fig07_headline_bands() {
        let o = obs();
        let f = fig07_downtime(&o);
        // paper: ~50% below 5% downtime; ~11% above 50%
        assert!((0.30..=0.72).contains(&f.headlines.below_5pct));
        assert!((0.02..=0.25).contains(&f.headlines.above_50pct));
        assert!(f.headlines.mean > 0.02 && f.headlines.mean < 0.30);
        assert!(!f.users_exposure.is_empty());
    }

    #[test]
    fn fig08_twitter_beats_mastodon() {
        let o = obs();
        let f = fig08_daily_downtime(&o, 7);
        assert!(
            f.mastodon_mean > 2.0 * f.twitter_mean,
            "mastodon {} vs twitter {}",
            f.mastodon_mean,
            f.twitter_mean
        );
        // size is a poor predictor of availability
        if let Some(c) = f.size_correlation {
            assert!(c.abs() < 0.4, "correlation {c}");
        }
        // the mid-size bin is the most reliable (non-monotonic pattern)
        let median_of = |bin: SizeBin| {
            f.bins
                .iter()
                .find(|(b, _)| *b == bin)
                .and_then(|(_, s)| s.as_ref())
                .map(|s| s.median)
        };
        if let (Some(small), Some(large)) = (median_of(SizeBin::Small), median_of(SizeBin::Large))
        {
            assert!(small >= large);
        }
    }

    #[test]
    fn fig09_lets_encrypt_and_cohort() {
        let o = obs();
        let f = fig09_certificates(&o);
        let le = f
            .footprint
            .iter()
            .find(|(ca, _)| *ca == CertificateAuthority::LetsEncrypt)
            .unwrap()
            .1;
        assert!(le > 0.8);
        // synchronized expiry cohort peaks well above background
        assert!(f.outages.worst_day_count() >= 3);
    }

    #[test]
    fn table1_detects_planned_failures() {
        let o = obs();
        let rows = table1_as_failures(&o, 3);
        assert!(!rows.is_empty());
        let total_failures: usize = rows.iter().map(|r| r.failures).sum();
        assert!(total_failures >= 3);
    }

    #[test]
    fn fig10_shape() {
        let o = obs();
        let f = fig10_outages(&o);
        assert!(f.any_outage_frac > 0.85, "{}", f.any_outage_frac);
        assert!((0.05..=0.5).contains(&f.day_plus_frac), "{}", f.day_plus_frac);
        assert!(f.month_plus_frac < f.day_plus_frac);
        assert!(f.worst_day.1 > 0.0, "some day must lose toots");
        assert!(f.users_affected > 0);
    }

    #[test]
    fn section4_sweep_equals_naive_figures() {
        let o = obs();
        let s4 = section4_sweep(&o, 3, 1);
        assert!(s4.fig07 == fig07_downtime(&o), "fig07 diverged");
        assert!(s4.fig08 == fig08_daily_downtime(&o, 1), "fig08 diverged");
        assert!(s4.fig10 == fig10_outages(&o), "fig10 diverged");
        assert!(s4.table1 == table1_as_failures(&o, 3), "table1 diverged");
        // stride plumbs through identically too
        let strided = section4_sweep(&o, 3, 7);
        assert!(strided.fig08 == fig08_daily_downtime(&o, 7));
    }

    #[test]
    fn tier_entry_points_follow_tier_tables() {
        // Tier worlds are too big for unit tests; run the tier *knobs* on a
        // small world and check the wrappers agree with the direct sweep.
        let o = obs();
        let tier = ScaleTier::Paper2019;
        let s4 = section4_tier(&o, tier);
        let direct = section4_sweep(&o, tier.table1_min_instances(), tier.fig08_day_stride());
        assert!(s4 == direct);
        assert!(fig07_downtime_tier(&o, tier) == direct.fig07);
        assert!(fig08_daily_downtime_tier(&o, tier) == direct.fig08);
        assert!(fig10_outages_tier(&o, tier) == direct.fig10);
        assert!(table1_as_failures_tier(&o, tier) == direct.table1);
        // the paper threshold prunes small-world ASes: every surviving row
        // respects it
        for row in &s4.table1 {
            assert!(row.instances >= tier.table1_min_instances());
        }
    }
}
