//! §4 analyses: instance population, categories, policies, hosting
//! (Figs. 1–6).

use crate::observatory::Observatory;
use fediscope_model::geo::Country;
use fediscope_model::instance::Registration;
use fediscope_model::taxonomy::{Activity, Category};
use fediscope_model::world::GrowthPoint;
use fediscope_stats::{top_share, Ecdf};

/// Fig. 1: the daily growth series (downsampled for printing).
#[derive(Debug, Clone)]
pub struct Fig01Growth {
    /// `(day, point)` samples every `stride` days.
    pub samples: Vec<(u32, GrowthPoint)>,
    /// Relative instance growth across the Jul–Dec 2017 plateau.
    pub plateau_instance_growth: f64,
    /// Relative user growth across the same period (paper: ≈22%).
    pub plateau_user_growth: f64,
    /// Relative instance growth over H1 2018 (paper: ≈43%).
    pub h1_2018_instance_growth: f64,
}

/// Compute Fig. 1.
pub fn fig01_growth(obs: &Observatory, stride: u32) -> Fig01Growth {
    let g = &obs.world.growth;
    let samples = (0..g.len() as u32)
        .step_by(stride.max(1) as usize)
        .map(|d| (d, g[d as usize]))
        .collect();
    let ratio = |a: usize, b: usize, f: fn(&GrowthPoint) -> f64| -> f64 {
        let (va, vb) = (f(&g[a]), f(&g[b]));
        if va == 0.0 {
            0.0
        } else {
            vb / va - 1.0
        }
    };
    Fig01Growth {
        samples,
        plateau_instance_growth: ratio(81, 264, |p| p.instances as f64),
        plateau_user_growth: ratio(81, 264, |p| p.users as f64),
        h1_2018_instance_growth: ratio(264, 471, |p| p.instances as f64),
    }
}

/// Fig. 2: open vs closed registrations.
#[derive(Debug, Clone)]
pub struct Fig02OpenClosed {
    /// CDF of users per open instance.
    pub users_open: Ecdf,
    /// CDF of users per closed instance.
    pub users_closed: Ecdf,
    /// CDF of toots per open instance.
    pub toots_open: Ecdf,
    /// CDF of toots per closed instance.
    pub toots_closed: Ecdf,
    /// Share of instances that are open.
    pub open_instance_share: f64,
    /// Share of users on open instances.
    pub open_user_share: f64,
    /// Share of toots on open instances.
    pub open_toot_share: f64,
    /// Mean users per open / closed instance (paper: 613 vs 87).
    pub mean_users: (f64, f64),
    /// Toots per capita on open / closed instances (paper: 94.8 vs 186.65).
    pub toots_per_capita: (f64, f64),
    /// Top-5% instance share of users and toots (paper: 90.6% / 94.8%).
    pub top5_user_share: f64,
    /// Top-5% share of toots.
    pub top5_toot_share: f64,
    /// CDF of active-user percentage, open instances (Fig. 2c).
    pub activity_open: Ecdf,
    /// CDF of active-user percentage, closed instances.
    pub activity_closed: Ecdf,
}

/// Compute Fig. 2.
pub fn fig02_open_closed(obs: &Observatory) -> Fig02OpenClosed {
    let mut users_open = Vec::new();
    let mut users_closed = Vec::new();
    let mut toots_open = Vec::new();
    let mut toots_closed = Vec::new();
    let mut activity_open = Vec::new();
    let mut activity_closed = Vec::new();
    let mut open_users = 0u64;
    let mut open_toots = 0u64;
    let mut open_count = 0usize;
    for (i, inst) in obs.world.instances.iter().enumerate() {
        let users = obs.users_per_instance[i] as f64;
        let toots = obs.toots_per_instance[i] as f64;
        if inst.registration == Registration::Open {
            users_open.push(users);
            toots_open.push(toots);
            open_users += obs.users_per_instance[i] as u64;
            open_toots += obs.toots_per_instance[i];
            open_count += 1;
            if inst.user_count > 0 {
                activity_open.push(inst.active_user_pct);
            }
        } else {
            users_closed.push(users);
            toots_closed.push(toots);
            if inst.user_count > 0 {
                activity_closed.push(inst.active_user_pct);
            }
        }
    }
    let total_users: u64 = obs.users_per_instance.iter().map(|&u| u as u64).sum();
    let total_toots: u64 = obs.toots_per_instance.iter().sum();
    let all_users: Vec<f64> = obs.users_per_instance.iter().map(|&u| u as f64).collect();
    let all_toots: Vec<f64> = obs.toots_per_instance.iter().map(|&t| t as f64).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let closed_users = total_users - open_users;
    let closed_toots = total_toots - open_toots;
    Fig02OpenClosed {
        open_instance_share: open_count as f64 / obs.world.instances.len().max(1) as f64,
        open_user_share: open_users as f64 / total_users.max(1) as f64,
        open_toot_share: open_toots as f64 / total_toots.max(1) as f64,
        mean_users: (mean(&users_open), mean(&users_closed)),
        toots_per_capita: (
            open_toots as f64 / open_users.max(1) as f64,
            closed_toots as f64 / closed_users.max(1) as f64,
        ),
        top5_user_share: top_share(&all_users, 0.05).unwrap_or(0.0),
        top5_toot_share: top_share(&all_toots, 0.05).unwrap_or(0.0),
        users_open: Ecdf::new(users_open),
        users_closed: Ecdf::new(users_closed),
        toots_open: Ecdf::new(toots_open),
        toots_closed: Ecdf::new(toots_closed),
        activity_open: Ecdf::new(activity_open),
        activity_closed: Ecdf::new(activity_closed),
    }
}

/// One Fig. 3 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryRow {
    /// The category.
    pub category: Category,
    /// Share of categorised instances carrying the tag.
    pub instance_share: f64,
    /// Share of categorised-instance toots.
    pub toot_share: f64,
    /// Share of categorised-instance users.
    pub user_share: f64,
}

/// Fig. 3: category shares over the categorised subset.
#[derive(Debug, Clone)]
pub struct Fig03Categories {
    /// One row per category, Fig. 3 order.
    pub rows: Vec<CategoryRow>,
    /// Number of declaring instances (paper: 697).
    pub declaring_instances: usize,
    /// Share of all users on declaring instances (paper: 13.6%).
    pub declared_user_share: f64,
    /// Share of all toots on declaring instances (paper: 14.4%).
    pub declared_toot_share: f64,
}

/// Compute Fig. 3.
pub fn fig03_categories(obs: &Observatory) -> Fig03Categories {
    let mut declaring = 0usize;
    let mut declared_users = 0u64;
    let mut declared_toots = 0u64;
    // denominators: non-generic categorised instances
    let mut cat_instances = 0u64;
    let mut cat_users = 0u64;
    let mut cat_toots = 0u64;
    let mut per_cat = vec![(0u64, 0u64, 0u64); Category::ALL.len()];
    for (i, inst) in obs.world.instances.iter().enumerate() {
        if !inst.declares_categories {
            continue;
        }
        declaring += 1;
        declared_users += obs.users_per_instance[i] as u64;
        declared_toots += obs.toots_per_instance[i];
        if inst.categories.is_empty() {
            continue; // generic
        }
        cat_instances += 1;
        cat_users += obs.users_per_instance[i] as u64;
        cat_toots += obs.toots_per_instance[i];
        for (ci, &c) in Category::ALL.iter().enumerate() {
            if inst.categories.contains(c) {
                per_cat[ci].0 += 1;
                per_cat[ci].1 += obs.users_per_instance[i] as u64;
                per_cat[ci].2 += obs.toots_per_instance[i];
            }
        }
    }
    let total_users: u64 = obs.users_per_instance.iter().map(|&u| u as u64).sum();
    let total_toots: u64 = obs.toots_per_instance.iter().sum();
    let rows = Category::ALL
        .iter()
        .enumerate()
        .map(|(ci, &category)| CategoryRow {
            category,
            instance_share: per_cat[ci].0 as f64 / cat_instances.max(1) as f64,
            user_share: per_cat[ci].1 as f64 / cat_users.max(1) as f64,
            toot_share: per_cat[ci].2 as f64 / cat_toots.max(1) as f64,
        })
        .collect();
    Fig03Categories {
        rows,
        declaring_instances: declaring,
        declared_user_share: declared_users as f64 / total_users.max(1) as f64,
        declared_toot_share: declared_toots as f64 / total_toots.max(1) as f64,
    }
}

/// One Fig. 4 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityRow {
    /// The activity.
    pub activity: Activity,
    /// Share of declaring instances prohibiting it.
    pub prohibited_share: f64,
    /// Share of declaring instances explicitly allowing it.
    pub allowed_share: f64,
    /// Share of declaring-subset users on allowing instances.
    pub allowing_user_share: f64,
    /// Share of declaring-subset toots on allowing instances.
    pub allowing_toot_share: f64,
}

/// Fig. 4: activity policies.
#[derive(Debug, Clone)]
pub struct Fig04Policies {
    /// One row per activity (Fig. 4 order).
    pub rows: Vec<ActivityRow>,
    /// Share of declaring instances allowing everything (paper: 17.5%).
    pub allow_all_share: f64,
    /// Share listing at least one prohibition (paper: 82%).
    pub some_prohibition_share: f64,
    /// Share listing at least one permission (paper: 93%).
    pub some_permission_share: f64,
}

/// Compute Fig. 4.
pub fn fig04_policies(obs: &Observatory) -> Fig04Policies {
    let declaring: Vec<usize> = obs
        .world
        .instances
        .iter()
        .enumerate()
        .filter(|(_, i)| i.declares_categories)
        .map(|(idx, _)| idx)
        .collect();
    let n = declaring.len().max(1) as f64;
    let subset_users: u64 = declaring
        .iter()
        .map(|&i| obs.users_per_instance[i] as u64)
        .sum();
    let subset_toots: u64 = declaring.iter().map(|&i| obs.toots_per_instance[i]).sum();
    let rows = Activity::ALL
        .iter()
        .map(|&activity| {
            let mut prohibited = 0usize;
            let mut allowed = 0usize;
            let mut allow_users = 0u64;
            let mut allow_toots = 0u64;
            for &i in &declaring {
                let p = &obs.world.instances[i].policies;
                if p.prohibits(activity) {
                    prohibited += 1;
                } else if p.allows(activity) {
                    allowed += 1;
                    allow_users += obs.users_per_instance[i] as u64;
                    allow_toots += obs.toots_per_instance[i];
                }
            }
            ActivityRow {
                activity,
                prohibited_share: prohibited as f64 / n,
                allowed_share: allowed as f64 / n,
                allowing_user_share: allow_users as f64 / subset_users.max(1) as f64,
                allowing_toot_share: allow_toots as f64 / subset_toots.max(1) as f64,
            }
        })
        .collect();
    let allow_all = declaring
        .iter()
        .filter(|&&i| obs.world.instances[i].policies.allows_everything())
        .count();
    let some_prohibition = declaring
        .iter()
        .filter(|&&i| obs.world.instances[i].policies.prohibited_count() > 0)
        .count();
    let some_permission = declaring
        .iter()
        .filter(|&&i| obs.world.instances[i].policies.allowed_count() > 0)
        .count();
    Fig04Policies {
        rows,
        allow_all_share: allow_all as f64 / n,
        some_prohibition_share: some_prohibition as f64 / n,
        some_permission_share: some_permission as f64 / n,
    }
}

/// One Fig. 5 share row (for a country or an AS).
#[derive(Debug, Clone, PartialEq)]
pub struct HostingRow {
    /// Display name.
    pub name: String,
    /// Share of instances hosted.
    pub instance_share: f64,
    /// Share of users hosted.
    pub user_share: f64,
    /// Share of toots hosted.
    pub toot_share: f64,
}

/// Fig. 5: hosting concentration.
#[derive(Debug, Clone)]
pub struct Fig05Hosting {
    /// Top-5 countries by instances.
    pub countries: Vec<HostingRow>,
    /// Top-5 ASes by users.
    pub ases: Vec<HostingRow>,
    /// Number of distinct ASes hosting ≥1 instance (paper: 351).
    pub distinct_ases: usize,
    /// User share of the top-3 ASes (paper: ≈62%).
    pub top3_as_user_share: f64,
}

/// Compute Fig. 5.
pub fn fig05_hosting(obs: &Observatory) -> Fig05Hosting {
    let total_inst = obs.world.instances.len().max(1) as f64;
    let total_users: u64 = obs.users_per_instance.iter().map(|&u| u as u64).sum();
    let total_toots: u64 = obs.toots_per_instance.iter().sum();

    // countries
    let mut per_country = std::collections::HashMap::<Country, (u64, u64, u64)>::new();
    for (i, inst) in obs.world.instances.iter().enumerate() {
        let e = per_country.entry(inst.country).or_default();
        e.0 += 1;
        e.1 += obs.users_per_instance[i] as u64;
        e.2 += obs.toots_per_instance[i];
    }
    let mut countries: Vec<HostingRow> = per_country
        .iter()
        .map(|(c, &(i, u, t))| HostingRow {
            name: c.name().to_string(),
            instance_share: i as f64 / total_inst,
            user_share: u as f64 / total_users.max(1) as f64,
            toot_share: t as f64 / total_toots.max(1) as f64,
        })
        .collect();
    countries.sort_by(|a, b| b.instance_share.partial_cmp(&a.instance_share).unwrap());
    countries.truncate(5);

    // ASes
    let mut per_as = std::collections::HashMap::<u32, (u64, u64, u64)>::new();
    for (i, inst) in obs.world.instances.iter().enumerate() {
        let e = per_as.entry(inst.provider_index).or_default();
        e.0 += 1;
        e.1 += obs.users_per_instance[i] as u64;
        e.2 += obs.toots_per_instance[i];
    }
    let distinct_ases = per_as.len();
    let mut ases: Vec<HostingRow> = per_as
        .iter()
        .map(|(&p, &(i, u, t))| HostingRow {
            name: obs.world.providers.get(p as usize).name.clone(),
            instance_share: i as f64 / total_inst,
            user_share: u as f64 / total_users.max(1) as f64,
            toot_share: t as f64 / total_toots.max(1) as f64,
        })
        .collect();
    ases.sort_by(|a, b| b.user_share.partial_cmp(&a.user_share).unwrap());
    let top3_as_user_share = ases.iter().take(3).map(|r| r.user_share).sum();
    ases.truncate(5);

    Fig05Hosting {
        countries,
        ases,
        distinct_ases,
        top3_as_user_share,
    }
}

/// Fig. 6: country-to-country federation links.
#[derive(Debug, Clone)]
pub struct Fig06CountryLinks {
    /// Row-major matrix over [`Country::ALL`]: `matrix[a][b]` = fraction of
    /// all instance-level federation links from country `a` to `b`.
    pub matrix: Vec<Vec<f64>>,
    /// Fraction of links whose endpoints share a country (paper: 32%).
    pub same_country_share: f64,
    /// Fraction of links attracted by the top-5 destination countries
    /// (paper: 93.66%).
    pub top5_destination_share: f64,
}

/// Compute Fig. 6 from the federation graph.
pub fn fig06_country_links(obs: &Observatory) -> Fig06CountryLinks {
    let fed = obs.federation_graph();
    let country_of: Vec<u32> = obs
        .world
        .instances
        .iter()
        .map(|i| Country::ALL.iter().position(|&c| c == i.country).unwrap() as u32)
        .collect();
    let counts = fediscope_graph::projection::projection_weights(
        fed,
        &country_of,
        Country::ALL.len() as u32,
    );
    let total: u64 = counts.iter().flatten().sum();
    let totalf = total.max(1) as f64;
    let matrix: Vec<Vec<f64>> = counts
        .iter()
        .map(|row| row.iter().map(|&c| c as f64 / totalf).collect())
        .collect();
    let same: u64 = (0..Country::ALL.len()).map(|i| counts[i][i]).sum();
    // destination totals
    let mut dest: Vec<u64> = (0..Country::ALL.len())
        .map(|b| (0..Country::ALL.len()).map(|a| counts[a][b]).sum())
        .collect();
    dest.sort_unstable_by(|a, b| b.cmp(a));
    let top5: u64 = dest.iter().take(5).sum();
    Fig06CountryLinks {
        matrix,
        same_country_share: same as f64 / totalf,
        top5_destination_share: top5 as f64 / totalf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn obs() -> Observatory {
        Observatory::new(Generator::generate_world(WorldConfig::small(71)))
    }

    #[test]
    fn fig01_growth_shape() {
        let o = obs();
        let f = fig01_growth(&o, 30);
        assert!(!f.samples.is_empty());
        // users grow through the plateau, instances barely
        assert!(f.plateau_user_growth > f.plateau_instance_growth);
        // H1-2018 re-acceleration
        assert!(f.h1_2018_instance_growth > 0.2, "{}", f.h1_2018_instance_growth);
    }

    #[test]
    fn fig02_shares_and_skew() {
        let o = obs();
        let f = fig02_open_closed(&o);
        assert!((f.open_instance_share - 0.478).abs() < 0.06);
        // open instances hold the majority of users
        assert!(f.open_user_share > 0.5);
        // but closed users toot more per capita
        assert!(f.toots_per_capita.1 > f.toots_per_capita.0);
        // extreme concentration
        assert!(f.top5_user_share > 0.6, "{}", f.top5_user_share);
        assert!(f.top5_toot_share > 0.6);
        // activity medians ordered (closed more engaged)
        assert!(
            f.activity_closed.median().unwrap() > f.activity_open.median().unwrap()
        );
        assert!(f.mean_users.0 > f.mean_users.1);
    }

    #[test]
    fn fig03_tech_leads_instances_adult_leads_users() {
        let o = obs();
        let f = fig03_categories(&o);
        let row = |c: Category| *f.rows.iter().find(|r| r.category == c).unwrap();
        assert!(row(Category::Tech).instance_share > row(Category::Adult).instance_share);
        // adult attracts disproportionate users
        let adult = row(Category::Adult);
        assert!(
            adult.user_share > 2.0 * adult.instance_share,
            "adult users {} vs instances {}",
            adult.user_share,
            adult.instance_share
        );
        // tech gets fewer toots than its instance share
        let tech = row(Category::Tech);
        assert!(tech.toot_share < tech.instance_share);
        // the declared subset is a small minority of users
        assert!(f.declared_user_share < 0.6);
    }

    #[test]
    fn fig04_spam_most_prohibited() {
        let o = obs();
        let f = fig04_policies(&o);
        let spam = f
            .rows
            .iter()
            .find(|r| r.activity == Activity::Spam)
            .unwrap();
        for r in &f.rows {
            assert!(spam.prohibited_share >= r.prohibited_share - 1e-9);
        }
        assert!((f.allow_all_share - 0.175).abs() < 0.08);
        assert!(f.some_permission_share > f.allow_all_share);
    }

    #[test]
    fn fig05_concentration() {
        let o = obs();
        let f = fig05_hosting(&o);
        assert_eq!(f.countries.len(), 5);
        assert!(!f.ases.is_empty());
        // Japan leads instance hosting
        assert_eq!(f.countries[0].name, "Japan");
        // heavy AS concentration of users
        assert!(f.top3_as_user_share > 0.3, "{}", f.top3_as_user_share);
        // shares are valid fractions
        for r in f.countries.iter().chain(&f.ases) {
            assert!((0.0..=1.0).contains(&r.instance_share));
            assert!((0.0..=1.0).contains(&r.user_share));
        }
    }

    #[test]
    fn fig06_homophily() {
        let o = obs();
        let f = fig06_country_links(&o);
        let total: f64 = f.matrix.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // same-country links are well above random mixing
        assert!(
            f.same_country_share > 0.15,
            "same-country {}",
            f.same_country_share
        );
        assert!(f.top5_destination_share > 0.7);
    }
}
