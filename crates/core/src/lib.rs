//! # fediscope-core
//!
//! The IMC'19 study pipeline: every figure and table of "Challenges in the
//! Decentralised Web: The Mastodon Case" as a typed, testable analysis over
//! a [`fediscope_model::World`].
//!
//! - [`observatory::Observatory`]: caches the derived artefacts (user graph,
//!   federation graph, per-instance aggregates, removal orders),
//! - [`population`]: Figs. 1–6 (§4.1–§4.3),
//! - [`availability`]: Figs. 7–10 and Table 1 (§4.4),
//! - [`graphs`]: Figs. 11–13 and Table 2 (§5.1),
//! - [`content`]: Figs. 14–16 (§5.2),
//! - [`delivery`]: the live §3 — the federation delivery simulator's
//!   load-concentration and outage-degradation runs,
//! - [`extensions`]: the paper's stated future work (instance blocking),
//! - [`verdicts`]: automated paper-vs-measured shape checks,
//! - [`report`]: plain-text rendering shared by the repro binary and the
//!   examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod delivery;
pub mod extensions;
pub mod content;
pub mod graphs;
pub mod observatory;
pub mod population;
pub mod report;
pub mod scenarios;
pub mod verdicts;

pub use observatory::{Metric, Observatory};
