//! §5.1 analyses: graph structure and resilience (Figs. 11–13, Table 2).

use crate::observatory::{Metric, Observatory};
use fediscope_graph::par;
use fediscope_graph::removal::{RankBy, RemovalSweep, SweepPoint};
use fediscope_graph::{degree, parallel_wcc};
use fediscope_model::scale::ScaleTier;
use fediscope_stats::{Ecdf, PowerLawFit};

/// Fig. 11: out-degree distributions.
#[derive(Debug, Clone)]
pub struct Fig11Degrees {
    /// Mastodon user out-degree CDF.
    pub social: Ecdf,
    /// Federation-graph instance out-degree CDF.
    pub federation: Ecdf,
    /// Twitter user out-degree CDF.
    pub twitter: Ecdf,
    /// Power-law fit of the social out-degree tail.
    pub social_fit: Option<PowerLawFit>,
    /// Power-law fit of the Twitter out-degree tail.
    pub twitter_fit: Option<PowerLawFit>,
}

/// Compute Fig. 11.
pub fn fig11_degrees(obs: &Observatory) -> Fig11Degrees {
    let social: Vec<f64> = degree::out_degrees(obs.user_graph())
        .into_iter()
        .map(|d| d as f64)
        .collect();
    let federation: Vec<f64> = degree::out_degrees(obs.federation_graph())
        .into_iter()
        .map(|d| d as f64)
        .collect();
    let twitter: Vec<f64> = degree::out_degrees(obs.twitter_graph())
        .into_iter()
        .map(|d| d as f64)
        .collect();
    Fig11Degrees {
        social_fit: PowerLawFit::fit(&social, 5.0),
        twitter_fit: PowerLawFit::fit(&twitter, 5.0),
        social: Ecdf::new(social),
        federation: Ecdf::new(federation),
        twitter: Ecdf::new(twitter),
    }
}

/// One Table 2 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Instance domain.
    pub domain: String,
    /// Home-timeline toots.
    pub home_toots: u64,
    /// Registered users.
    pub users: u32,
    /// Federation-graph out-degree (instances this instance subscribes to).
    pub fed_out_degree: u32,
    /// Federation-graph in-degree.
    pub fed_in_degree: u32,
    /// Operator kind.
    pub operator: fediscope_model::instance::OperatorKind,
    /// Hosting AS organisation.
    pub as_org: String,
    /// Hosting country code.
    pub country: &'static str,
}

/// Table 2: the top 10 instances by home toots.
pub fn table2_top_instances(obs: &Observatory) -> Vec<Table2Row> {
    let fed = obs.federation_graph();
    let mut order = obs.instance_order(Metric::Toots);
    order.truncate(10);
    order
        .into_iter()
        .map(|i| {
            let inst = &obs.world.instances[i as usize];
            Table2Row {
                domain: inst.domain.clone(),
                home_toots: obs.toots_per_instance[i as usize],
                users: obs.users_per_instance[i as usize],
                fed_out_degree: fed.out_degree(i),
                fed_in_degree: fed.in_degree(i),
                operator: inst.operator,
                as_org: obs
                    .world
                    .providers
                    .get(inst.provider_index as usize)
                    .name
                    .clone(),
                country: inst.country.code(),
            }
        })
        .collect()
}

/// Fig. 12: iterative top-degree user removal, Mastodon vs Twitter.
#[derive(Debug, Clone)]
pub struct Fig12UserRemoval {
    /// Mastodon sweep points (round 0 = intact).
    pub mastodon: Vec<SweepPoint>,
    /// Twitter sweep points.
    pub twitter: Vec<SweepPoint>,
    /// LCC fraction of the intact Mastodon graph (paper: 99.95%).
    pub mastodon_initial_lcc: f64,
    /// LCC fraction after removing the top 1% (paper: 26.38%).
    pub mastodon_after_1pct: f64,
    /// Twitter LCC fraction after removing ≈10% via ten 1% rounds
    /// (paper: ≈80% from a 95% baseline).
    pub twitter_after_10pct: f64,
}

/// Compute Fig. 12 with `steps` rounds of 1% removals.
///
/// The Mastodon and Twitter sweeps are independent, so they run on two
/// threads; each sweep is deterministic, so the output does not depend on
/// scheduling.
pub fn fig12_user_removal(obs: &Observatory, steps: usize) -> Fig12UserRemoval {
    let (mastodon, twitter) = par::join(
        || {
            RemovalSweep::new(obs.user_graph()).iterative_fraction(
                0.01,
                steps,
                RankBy::DegreeIterative,
            )
        },
        || {
            RemovalSweep::new(obs.twitter_graph()).iterative_fraction(
                0.01,
                steps,
                RankBy::DegreeIterative,
            )
        },
    );
    let after_10 = twitter.get(10.min(twitter.len() - 1)).unwrap();
    Fig12UserRemoval {
        mastodon_initial_lcc: mastodon[0].lcc_node_frac,
        mastodon_after_1pct: mastodon.get(1).map(|p| p.lcc_node_frac).unwrap_or(0.0),
        twitter_after_10pct: after_10.lcc_node_frac,
        mastodon,
        twitter,
    }
}

/// Fig. 13: federation-graph resilience to instance and AS removal.
#[derive(Debug, Clone)]
pub struct Fig13FederationRemoval {
    /// (a) top-N instance removal ranked by users.
    pub by_instance_users: Vec<SweepPoint>,
    /// (a) top-N instance removal ranked by toots.
    pub by_instance_toots: Vec<SweepPoint>,
    /// (b) AS removal ranked by instances hosted.
    pub by_as_instances: Vec<SweepPoint>,
    /// (b) AS removal ranked by users hosted.
    pub by_as_users: Vec<SweepPoint>,
    /// Intact LCC fraction over instances (paper: 92%).
    pub initial_lcc_instances: f64,
    /// Intact LCC user coverage (paper: 96%).
    pub initial_lcc_users: f64,
}

/// Compute Fig. 13. `max_instances` bounds the 13(a) sweep depth;
/// `max_ases` bounds 13(b).
pub fn fig13_federation_removal(
    obs: &Observatory,
    max_instances: usize,
    max_ases: usize,
) -> Fig13FederationRemoval {
    let fed = obs.federation_graph();
    let weights = obs.user_weights();

    let checkpoints: Vec<usize> = (0..=max_instances.min(fed.node_count())).collect();
    // The weights are borrowed by the sweep (not cloned), so the same
    // vector backs all four fanned-out sweeps below.
    let sweep = RemovalSweep::new(fed).with_weights(&weights);

    let order_users = obs.instance_order(Metric::Users);
    let order_toots = obs.instance_order(Metric::Toots);
    let mut groups_inst = obs.as_groups(Metric::Instances);
    groups_inst.truncate(max_ases);
    let mut groups_users = obs.as_groups(Metric::Users);
    groups_users.truncate(max_ases);

    // The four sweeps share nothing but the (immutable) sweep runner, so
    // fan them out over threads; each is deterministic on its own.
    let ((by_instance_users, by_instance_toots), (by_as_instances, by_as_users)) = par::join(
        || {
            par::join(
                || sweep.ranked(&order_users, &checkpoints),
                || sweep.ranked(&order_toots, &checkpoints),
            )
        },
        || {
            par::join(
                || sweep.grouped(&groups_inst),
                || sweep.grouped(&groups_users),
            )
        },
    );

    // intact stats: consider only populated instances when quoting the LCC
    // coverage (isolated zero-user instances are not in the graph's edges).
    // The sharded pass yields the same numbers as the serial labelling
    // (user weights are integer counts, so the weight mass is exact).
    let wcc = parallel_wcc(fed, None, Some(&weights));
    let total_users: f64 = weights.iter().sum();
    Fig13FederationRemoval {
        initial_lcc_instances: wcc.largest as f64 / fed.node_count().max(1) as f64,
        initial_lcc_users: if total_users > 0.0 {
            wcc.largest_weight / total_users
        } else {
            0.0
        },
        by_instance_users,
        by_instance_toots,
        by_as_instances,
        by_as_users,
    }
}

/// Fig. 12's error-tolerance baseline: random removal instead of the
/// targeted attack, averaged over Monte-Carlo trials.
#[derive(Debug, Clone)]
pub struct Fig12RandomBaseline {
    /// Mean LCC node fraction after each round (index 0 = intact), averaged
    /// across trials.
    pub mean_lcc_frac: Vec<f64>,
    /// Per-trial sweep points (trial-major), for spread inspection.
    pub trials: Vec<Vec<SweepPoint>>,
    /// Base seed the trial seeds derive from.
    pub base_seed: u64,
}

/// Random-removal baseline on the Mastodon user graph: `trials` independent
/// sweeps of `steps` rounds of 1% random removals.
///
/// Trials run in parallel via [`par::parallel_map`]; trial `i` uses seed
/// `base_seed.wrapping_add(i)`, and results are collected in trial order,
/// so output is identical no matter how many threads run (seed-stable).
pub fn fig12_random_baseline(
    obs: &Observatory,
    steps: usize,
    trials: usize,
    base_seed: u64,
) -> Fig12RandomBaseline {
    let sweep = RemovalSweep::new(obs.user_graph());
    let seeds: Vec<u64> = (0..trials as u64)
        .map(|i| base_seed.wrapping_add(i))
        .collect();
    let trials: Vec<Vec<SweepPoint>> = par::parallel_map(&seeds, |&seed| {
        sweep.iterative_fraction(0.01, steps, RankBy::Random { seed })
    });
    let rounds = trials.iter().map(Vec::len).max().unwrap_or(0);
    let mean_lcc_frac: Vec<f64> = (0..rounds)
        .map(|round| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for t in &trials {
                if let Some(p) = t.get(round) {
                    sum += p.lcc_node_frac;
                    n += 1;
                }
            }
            if n > 0 {
                sum / n as f64
            } else {
                0.0
            }
        })
        .collect();
    Fig12RandomBaseline {
        mean_lcc_frac,
        trials,
        base_seed,
    }
}

/// Compute Fig. 12 at a named scale tier (the tier fixes the round count,
/// so per-tier results are comparable across worlds of the same tier).
pub fn fig12_user_removal_tier(obs: &Observatory, tier: ScaleTier) -> Fig12UserRemoval {
    fig12_user_removal(obs, tier.fig12_steps())
}

/// Compute Fig. 13 at a named scale tier: sweep depth and AS count follow
/// the tier tables (a quarter of the tier's instances, 30–50 ASes).
pub fn fig13_federation_removal_tier(
    obs: &Observatory,
    tier: ScaleTier,
) -> Fig13FederationRemoval {
    fig13_federation_removal(obs, tier.fig13_max_instances(), tier.fig13_max_ases())
}

/// Compute the Fig. 12 random baseline at a named scale tier (trial count
/// shrinks as worlds grow — each trial already averages over more nodes).
pub fn fig12_random_baseline_tier(
    obs: &Observatory,
    tier: ScaleTier,
    base_seed: u64,
) -> Fig12RandomBaseline {
    fig12_random_baseline(obs, tier.fig12_steps(), tier.baseline_trials(), base_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn obs() -> Observatory {
        Observatory::new(Generator::generate_world(WorldConfig::small(91)))
    }

    #[test]
    fn fig11_power_laws() {
        let o = obs();
        let f = fig11_degrees(&o);
        assert_eq!(f.social.len(), o.world.users.len());
        let fit = f.social_fit.expect("social fit");
        assert!(fit.alpha > 1.3 && fit.alpha < 4.0, "alpha {}", fit.alpha);
        // Mastodon's social median out-degree is low; hubs carry the tail
        assert!(f.social.median().unwrap() <= f.social.max().unwrap() / 10.0);
    }

    #[test]
    fn table2_is_sorted_and_complete() {
        let o = obs();
        let rows = table2_top_instances(&o);
        assert_eq!(rows.len(), 10);
        for w in rows.windows(2) {
            assert!(w[0].home_toots >= w[1].home_toots);
        }
        // the renamed paper domains float to the top by construction
        assert!(rows.iter().any(|r| r.domain == "mstdn.jp"));
    }

    #[test]
    fn fig12_mastodon_fragile_twitter_robust() {
        let o = obs();
        let f = fig12_user_removal(&o, 12);
        assert!(f.mastodon_initial_lcc > 0.98, "{}", f.mastodon_initial_lcc);
        assert!(
            f.mastodon_after_1pct < 0.65,
            "Mastodon should shatter: {}",
            f.mastodon_after_1pct
        );
        assert!(
            f.twitter_after_10pct > 0.55,
            "Twitter should survive: {}",
            f.twitter_after_10pct
        );
        // the qualitative contrast of the paper
        assert!(f.twitter_after_10pct > f.mastodon_after_1pct);
    }

    #[test]
    fn fig13_linear_decay_and_as_damage() {
        let o = obs();
        let n = o.world.instances.len();
        let f = fig13_federation_removal(&o, n / 4, 10);
        assert!(f.initial_lcc_instances > 0.5);
        assert!(f.initial_lcc_users > 0.9);
        // LCC decays monotonically
        for series in [&f.by_instance_users, &f.by_instance_toots] {
            for w in series.windows(2) {
                assert!(w[1].lcc_nodes <= w[0].lcc_nodes);
            }
        }
        // AS removal (grouped) after k groups removes at least as many
        // instances as k singleton removals, so it is at least as damaging
        let k = 5.min(f.by_as_instances.len() - 1);
        assert!(
            f.by_as_instances[k].lcc_nodes <= f.by_instance_users[k].lcc_nodes,
            "AS removal should dominate single-instance removal"
        );
    }

    #[test]
    fn fig12_random_baseline_is_gentler_and_seed_stable() {
        let o = obs();
        let a = fig12_random_baseline(&o, 8, 4, 1234);
        let b = fig12_random_baseline(&o, 8, 4, 1234);
        // seed-stable regardless of thread scheduling
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.mean_lcc_frac, b.mean_lcc_frac);
        // random removal of ~8% degrades the LCC far less than the attack
        let attack = fig12_user_removal(&o, 8);
        let last = *a.mean_lcc_frac.last().unwrap();
        assert!(
            last > attack.mastodon.last().unwrap().lcc_node_frac,
            "random baseline ({last}) should dominate the attack"
        );
    }

    #[test]
    fn tier_entry_points_follow_tier_tables() {
        // A tiny world exercises the plumbing; sweep depths clamp to the
        // world where the tier tables exceed it.
        let o = Observatory::new(Generator::generate_world(WorldConfig::tiny(3)));
        let tier = ScaleTier::Paper2019;
        let f12 = fig12_user_removal_tier(&o, tier);
        assert_eq!(f12.mastodon.len(), tier.fig12_steps() + 1);
        let f13 = fig13_federation_removal_tier(&o, tier);
        assert_eq!(
            f13.by_instance_users.len(),
            o.world.instances.len().min(tier.fig13_max_instances()) + 1
        );
        let rb = fig12_random_baseline_tier(&o, tier, 7);
        assert_eq!(rb.trials.len(), tier.baseline_trials());
        assert_eq!(rb.mean_lcc_frac.len(), tier.fig12_steps() + 1);
    }

    #[test]
    fn fig13_user_ranked_as_removal_kills_more_users() {
        let o = obs();
        let f = fig13_federation_removal(&o, 10, 8);
        let k = 5.min(f.by_as_users.len() - 1).min(f.by_as_instances.len() - 1);
        // ranking ASes by users must remove at least as much user weight
        assert!(
            f.by_as_users[k].lcc_weight_frac <= f.by_as_instances[k].lcc_weight_frac + 0.05
        );
    }
}
