//! Minimal future combinators backing the facade's `select!` macro.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Which branch of a [`select2`] completed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished.
    Left(A),
    /// The second future finished.
    Right(B),
}

/// Future returned by [`select2`].
pub struct Select2<A, B> {
    a: A,
    b: B,
}

impl<A, B> Future for Select2<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    type Output = Either<A::Output, B::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Poll::Ready(out) = Pin::new(&mut this.a).poll(cx) {
            return Poll::Ready(Either::Left(out));
        }
        if let Poll::Ready(out) = Pin::new(&mut this.b).poll(cx) {
            return Poll::Ready(Either::Right(out));
        }
        Poll::Pending
    }
}

/// Race two futures, **biased** toward the first: when both are ready on
/// the same poll, the left one wins. Bias is what makes `select!` sites
/// deterministic — there is no coin flip to replay.
pub fn select2<A, B>(a: A, b: B) -> Select2<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    Select2 { a, b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::time::sleep;
    use std::time::Duration;

    #[test]
    fn earlier_deadline_wins() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let fast = std::pin::pin!(async {
                sleep(Duration::from_millis(5)).await;
                "fast"
            });
            let slow = std::pin::pin!(async {
                sleep(Duration::from_millis(50)).await;
                "slow"
            });
            match select2(fast, slow).await {
                Either::Left(v) => assert_eq!(v, "fast"),
                Either::Right(_) => panic!("slow branch won"),
            }
        });
    }

    #[test]
    fn simultaneous_ready_is_left_biased() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let a = std::pin::pin!(async { 1u8 });
            let b = std::pin::pin!(async { 2u8 });
            assert_eq!(select2(a, b).await, Either::Left(1));
        });
    }
}
