//! Virtual time: `sleep`, `timeout`, and `interval` over the runtime's
//! deterministic clock. No wall-clock syscalls are involved; deadlines are
//! nanosecond offsets that the executor jumps between when idle.

use crate::runtime::with_current;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

fn dur_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Current virtual time in nanoseconds since the runtime was created.
///
/// Panics outside a runtime.
pub fn now_nanos() -> u64 {
    with_current(|shared| shared.now())
}

/// Future returned by [`sleep`].
#[derive(Debug)]
pub struct Sleep {
    deadline: u64,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        with_current(|shared| {
            if shared.now() >= self.deadline {
                Poll::Ready(())
            } else {
                shared.register_timer(self.deadline, cx.waker().clone());
                Poll::Pending
            }
        })
    }
}

/// Sleep for `d` of virtual time.
///
/// Must be called (created) inside a runtime, like its tokio counterpart.
pub fn sleep(d: Duration) -> Sleep {
    let deadline = with_current(|shared| shared.now().saturating_add(dur_nanos(d)));
    Sleep { deadline }
}

/// Error returned by [`timeout`] when the deadline elapsed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    sleep: Sleep,
    // Boxed so the wrapper stays `Unpin` without unsafe pin projection.
    fut: Pin<Box<F>>,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(out) = self.fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(out));
        }
        match Pin::new(&mut self.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed(()))),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Run `fut` with a virtual-time deadline of `d`.
pub fn timeout<F: Future>(d: Duration, fut: F) -> Timeout<F> {
    Timeout {
        sleep: sleep(d),
        fut: Box::pin(fut),
    }
}

/// What an [`Interval`] does about ticks that were missed because the
/// consumer lagged. Under virtual time "missing" a tick only happens when
/// the consumer itself slept past it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissedTickBehavior {
    /// Fire immediately, repeatedly, until caught up.
    #[default]
    Burst,
    /// Fire once, then re-anchor the schedule at `now + period`.
    Delay,
    /// Skip missed ticks entirely; next tick at the next multiple.
    Skip,
}

/// Repeating virtual-time tick stream; see [`interval`].
#[derive(Debug)]
pub struct Interval {
    period: u64,
    next: u64,
    behavior: MissedTickBehavior,
}

impl Interval {
    /// Configure lag handling (tokio-compatible).
    pub fn set_missed_tick_behavior(&mut self, behavior: MissedTickBehavior) {
        self.behavior = behavior;
    }

    /// Wait for the next tick. The first tick completes immediately.
    pub fn tick(&mut self) -> Tick<'_> {
        Tick { interval: self }
    }
}

/// Future returned by [`Interval::tick`].
#[derive(Debug)]
pub struct Tick<'a> {
    interval: &'a mut Interval,
}

impl Future for Tick<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let iv = &mut *self.interval;
        with_current(|shared| {
            let now = shared.now();
            if now >= iv.next {
                let period = iv.period.max(1);
                iv.next = match iv.behavior {
                    MissedTickBehavior::Burst => iv.next.saturating_add(period),
                    MissedTickBehavior::Delay => now.saturating_add(period),
                    MissedTickBehavior::Skip => {
                        let behind = now - iv.next;
                        iv.next.saturating_add((behind / period + 1) * period)
                    }
                };
                Poll::Ready(())
            } else {
                shared.register_timer(iv.next, cx.waker().clone());
                Poll::Pending
            }
        })
    }
}

/// A tick stream with the given period; the first tick fires immediately
/// (tokio semantics).
pub fn interval(period: Duration) -> Interval {
    let now = with_current(|shared| shared.now());
    Interval {
        period: dur_nanos(period).max(1),
        next: now,
        behavior: MissedTickBehavior::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{spawn, Runtime};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn sleep_advances_virtual_clock() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let t0 = now_nanos();
            sleep(Duration::from_millis(250)).await;
            assert_eq!(now_nanos() - t0, 250_000_000);
        });
    }

    #[test]
    fn sleeps_fire_in_deadline_order() {
        let rt = Runtime::new().unwrap();
        let order = rt.block_on(async {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for (i, ms) in [30u64, 10, 20].into_iter().enumerate() {
                let log = log.clone();
                handles.push(spawn(async move {
                    sleep(Duration::from_millis(ms)).await;
                    log.lock().push(i);
                }));
            }
            for h in handles {
                h.await.unwrap();
            }
            let v = log.lock().clone();
            v
        });
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn timeout_wins_and_loses() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let fast = timeout(Duration::from_millis(10), async { 5u8 }).await;
            assert_eq!(fast, Ok(5));
            let slow = timeout(Duration::from_millis(10), async {
                sleep(Duration::from_millis(50)).await;
                5u8
            })
            .await;
            assert!(slow.is_err());
            // the loser's timer must not have dragged virtual time forward
            assert_eq!(now_nanos(), 10_000_000);
        });
    }

    #[test]
    fn interval_first_tick_immediate_then_periodic() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let mut iv = interval(Duration::from_millis(100));
            iv.set_missed_tick_behavior(MissedTickBehavior::Delay);
            iv.tick().await;
            assert_eq!(now_nanos(), 0);
            iv.tick().await;
            assert_eq!(now_nanos(), 100_000_000);
            iv.tick().await;
            assert_eq!(now_nanos(), 200_000_000);
        });
    }
}
