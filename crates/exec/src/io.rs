//! Async byte-stream traits plus the extension methods `httpwire` uses
//! (`read`, `read_to_end`, `write_all`, `shutdown`). Poll signatures follow
//! the futures-rs shape (`&mut [u8]` buffers); the tokio facade re-exports
//! these under `tokio::io`.

use std::future::Future;
use std::io;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Non-blocking byte source.
pub trait AsyncRead {
    /// Read into `buf`, returning how many bytes were filled (0 = EOF).
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut [u8],
    ) -> Poll<io::Result<usize>>;
}

/// Non-blocking byte sink.
pub trait AsyncWrite {
    /// Write from `buf`, returning how many bytes were accepted.
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>>;

    /// Flush buffered bytes.
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;

    /// Close the write side.
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;
}

/// Future returned by [`AsyncReadExt::read`].
pub struct Read<'a, T: ?Sized> {
    io: &'a mut T,
    buf: &'a mut [u8],
}

impl<T: AsyncRead + Unpin + ?Sized> Future for Read<'_, T> {
    type Output = io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        Pin::new(&mut *this.io).poll_read(cx, this.buf)
    }
}

/// Future returned by [`AsyncReadExt::read_to_end`].
pub struct ReadToEnd<'a, T: ?Sized> {
    io: &'a mut T,
    out: &'a mut Vec<u8>,
    total: usize,
}

impl<T: AsyncRead + Unpin + ?Sized> Future for ReadToEnd<'_, T> {
    type Output = io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut chunk = [0u8; 4096];
        loop {
            match Pin::new(&mut *this.io).poll_read(cx, &mut chunk) {
                Poll::Ready(Ok(0)) => return Poll::Ready(Ok(this.total)),
                Poll::Ready(Ok(n)) => {
                    this.out.extend_from_slice(&chunk[..n]);
                    this.total += n;
                }
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
    }
}

/// Future returned by [`AsyncWriteExt::write_all`].
pub struct WriteAll<'a, T: ?Sized> {
    io: &'a mut T,
    buf: &'a [u8],
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for WriteAll<'_, T> {
    type Output = io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        while !this.buf.is_empty() {
            match Pin::new(&mut *this.io).poll_write(cx, this.buf) {
                Poll::Ready(Ok(0)) => {
                    return Poll::Ready(Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "failed to write whole buffer",
                    )))
                }
                Poll::Ready(Ok(n)) => this.buf = &this.buf[n..],
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
        Poll::Ready(Ok(()))
    }
}

/// Future returned by [`AsyncWriteExt::flush`].
pub struct Flush<'a, T: ?Sized> {
    io: &'a mut T,
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for Flush<'_, T> {
    type Output = io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut *self.get_mut().io).poll_flush(cx)
    }
}

/// Future returned by [`AsyncWriteExt::shutdown`].
pub struct Shutdown<'a, T: ?Sized> {
    io: &'a mut T,
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for Shutdown<'_, T> {
    type Output = io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut *self.get_mut().io).poll_shutdown(cx)
    }
}

/// Awaitable read helpers for any [`AsyncRead`].
pub trait AsyncReadExt: AsyncRead {
    /// Read some bytes into `buf`; resolves to the count (0 = EOF).
    fn read<'a>(&'a mut self, buf: &'a mut [u8]) -> Read<'a, Self>
    where
        Self: Unpin,
    {
        Read { io: self, buf }
    }

    /// Read until EOF, appending to `out`; resolves to the bytes added.
    fn read_to_end<'a>(&'a mut self, out: &'a mut Vec<u8>) -> ReadToEnd<'a, Self>
    where
        Self: Unpin,
    {
        ReadToEnd {
            io: self,
            out,
            total: 0,
        }
    }
}

impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

/// Awaitable write helpers for any [`AsyncWrite`].
pub trait AsyncWriteExt: AsyncWrite {
    /// Write the entire buffer.
    fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> WriteAll<'a, Self>
    where
        Self: Unpin,
    {
        WriteAll { io: self, buf }
    }

    /// Flush the stream.
    fn flush(&mut self) -> Flush<'_, Self>
    where
        Self: Unpin,
    {
        Flush { io: self }
    }

    /// Close the write side.
    fn shutdown(&mut self) -> Shutdown<'_, Self>
    where
        Self: Unpin,
    {
        Shutdown { io: self }
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}
