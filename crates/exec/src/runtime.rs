//! The deterministic single-threaded runtime: task queue, virtual-time
//! timer wheel, and the `block_on` drive loop.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

/// Task id 0 is reserved for the `block_on` root future.
const ROOT: u64 = 0;

type BoxedTask = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One pending virtual-time deadline. Ordered by `(deadline, seq)` so that
/// timers registered earlier fire earlier on ties — total order, no races.
struct TimerEntry {
    deadline: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest deadline is on top.
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

/// State shared between the runtime, its tasks, and its wakers.
pub(crate) struct Shared {
    /// FIFO queue of woken task ids.
    queue: Mutex<VecDeque<u64>>,
    /// Live spawned tasks (the root future lives on `block_on`'s stack).
    tasks: Mutex<HashMap<u64, BoxedTask>>,
    /// Pending virtual-time deadlines.
    timers: Mutex<BinaryHeap<TimerEntry>>,
    timer_seq: AtomicU64,
    /// Virtual now, in nanoseconds since runtime creation.
    now: AtomicU64,
    next_task: AtomicU64,
    root_ready: AtomicBool,
    /// In-memory network namespace owned by this runtime.
    pub(crate) net: crate::net::Registry,
}

impl Shared {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            queue: Mutex::new(VecDeque::new()),
            tasks: Mutex::new(HashMap::new()),
            timers: Mutex::new(BinaryHeap::new()),
            timer_seq: AtomicU64::new(0),
            now: AtomicU64::new(0),
            next_task: AtomicU64::new(ROOT + 1),
            root_ready: AtomicBool::new(false),
            net: crate::net::Registry::new(),
        })
    }

    /// Current virtual time in nanoseconds.
    pub(crate) fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Register `waker` to fire at virtual `deadline`.
    pub(crate) fn register_timer(&self, deadline: u64, waker: Waker) {
        let seq = self.timer_seq.fetch_add(1, Ordering::Relaxed);
        self.timers.lock().push(TimerEntry {
            deadline,
            seq,
            waker,
        });
    }

    fn waker_for(self: &Arc<Self>, id: u64) -> Waker {
        Arc::new(TaskWaker {
            id,
            shared: Arc::downgrade(self),
        })
        .into()
    }

    fn spawn_task<F>(self: &Arc<Self>, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let id = self.next_task.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(Mutex::new(JoinState::<F::Output> {
            result: None,
            waker: None,
        }));
        let completion = state.clone();
        let wrapped = async move {
            let out = fut.await;
            let mut s = completion.lock();
            s.result = Some(Ok(out));
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        };
        self.tasks.lock().insert(id, Box::pin(wrapped));
        self.queue.lock().push_back(id);
        JoinHandle {
            id,
            shared: Arc::downgrade(self),
            state,
        }
    }

    /// Poll one spawned task. The task is taken out of the map for the
    /// duration of the poll so a re-entrant self-wake cannot alias it.
    fn poll_task(self: &Arc<Self>, id: u64) {
        let Some(mut task) = self.tasks.lock().remove(&id) else {
            return; // completed or aborted; stale queue entry
        };
        let waker = self.waker_for(id);
        let mut cx = Context::from_waker(&waker);
        if task.as_mut().poll(&mut cx).is_pending() {
            self.tasks.lock().insert(id, task);
        }
    }

    /// Jump virtual time forward to the earliest pending deadline and wake
    /// everything due. Returns `false` when no timers are pending.
    fn advance_time(&self) -> bool {
        let mut timers = self.timers.lock();
        let Some(top) = timers.peek() else {
            return false;
        };
        let target = top.deadline.max(self.now.load(Ordering::Acquire));
        self.now.store(target, Ordering::Release);
        while let Some(top) = timers.peek() {
            if top.deadline > target {
                break;
            }
            let entry = timers.pop().expect("peeked entry exists");
            entry.waker.wake();
        }
        true
    }
}

struct TaskWaker {
    id: u64,
    shared: Weak<Shared>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        let Some(shared) = self.shared.upgrade() else {
            return; // runtime already gone; wake is a no-op
        };
        if self.id == ROOT {
            shared.root_ready.store(true, Ordering::Release);
        } else {
            shared.queue.lock().push_back(self.id);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Shared>>> = const { RefCell::new(None) };
}

/// Run `f` with the thread's active runtime, panicking with a usable
/// message when called outside `block_on`.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Shared>) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let shared = borrow.as_ref().unwrap_or_else(|| {
            panic!(
                "fediscope_exec: no runtime active on this thread \
                 (spawn/sleep/bind must run inside Runtime::block_on)"
            )
        });
        f(shared)
    })
}

struct EnterGuard;

impl EnterGuard {
    fn enter(shared: Arc<Shared>) -> Self {
        CURRENT.with(|c| {
            let mut slot = c.borrow_mut();
            assert!(
                slot.is_none(),
                "fediscope_exec: block_on called re-entrantly inside a runtime"
            );
            *slot = Some(shared);
        });
        EnterGuard
    }
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

/// The deterministic single-threaded runtime.
pub struct Runtime {
    shared: Arc<Shared>,
}

impl Runtime {
    /// Build a runtime. Infallible, but returns `io::Result` to mirror the
    /// tokio constructor the call sites were written against.
    pub fn new() -> std::io::Result<Self> {
        Ok(Self {
            shared: Shared::new(),
        })
    }

    /// Build a runtime whose virtual clock starts at `nanos` instead of
    /// zero. A process resumed from a checkpoint continues the snapshot's
    /// virtual timeline: deadlines seeded from "now" (backoff timers,
    /// retry-after waits, probe schedules) land at the same virtual
    /// instants they would have in the uninterrupted run, instead of
    /// being re-anchored to a rewound clock.
    pub fn starting_at(nanos: u64) -> std::io::Result<Self> {
        let rt = Self::new()?;
        rt.shared.now.store(nanos, Ordering::Release);
        Ok(rt)
    }

    /// Drive `fut` (and every task it spawns) to completion, advancing
    /// virtual time whenever the ready queue drains.
    ///
    /// Panics with a deadlock report if the root future is pending while no
    /// task is runnable and no timer is registered.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        let shared = &self.shared;
        let _guard = EnterGuard::enter(shared.clone());
        let mut root = std::pin::pin!(fut);
        let root_waker = shared.waker_for(ROOT);
        shared.root_ready.store(true, Ordering::Release);
        loop {
            if shared.root_ready.swap(false, Ordering::AcqRel) {
                let mut cx = Context::from_waker(&root_waker);
                if let Poll::Ready(out) = root.as_mut().poll(&mut cx) {
                    return out;
                }
                continue;
            }
            let next = shared.queue.lock().pop_front();
            if let Some(id) = next {
                shared.poll_task(id);
                continue;
            }
            if shared.advance_time() {
                continue;
            }
            panic!(
                "fediscope_exec: deadlock — root future pending, ready queue \
                 empty, no timers registered ({} spawned tasks stuck)",
                shared.tasks.lock().len()
            );
        }
    }
}

/// Builder mirroring `tokio::runtime::Builder` for the call sites that use
/// `new_current_thread().enable_time().build()`. Every configuration knob is
/// a no-op: the runtime is always current-thread with virtual time enabled.
#[derive(Debug, Default)]
pub struct Builder {}

impl Builder {
    /// A current-thread builder (the only flavour that exists here).
    pub fn new_current_thread() -> Self {
        Self {}
    }

    /// Accepted for compatibility; virtual time is always on.
    pub fn enable_time(&mut self) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the in-memory transport is always on.
    pub fn enable_io(&mut self) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn enable_all(&mut self) -> &mut Self {
        self
    }

    /// Build the runtime.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Runtime::new()
    }
}

/// Spawn a task onto the thread's active runtime.
///
/// Panics when called outside [`Runtime::block_on`].
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    with_current(|shared| shared.spawn_task(fut))
}

struct JoinState<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

/// Error returned by [`JoinHandle`] when the task was aborted.
#[derive(Debug)]
pub struct JoinError {
    cancelled: bool,
}

impl JoinError {
    /// Did the task get cancelled via [`JoinHandle::abort`]?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task was cancelled")
    }
}

impl std::error::Error for JoinError {}

/// Owned handle to a spawned task; awaiting it yields the task's output.
pub struct JoinHandle<T> {
    id: u64,
    shared: Weak<Shared>,
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Abort the task: it is dropped without being polled again and the
    /// handle resolves to a cancelled [`JoinError`].
    pub fn abort(&self) {
        let Some(shared) = self.shared.upgrade() else {
            return;
        };
        let task = shared.tasks.lock().remove(&self.id);
        let mut s = self.state.lock();
        if task.is_some() && s.result.is_none() {
            s.result = Some(Err(JoinError { cancelled: true }));
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        }
    }

    /// Has the task finished (completed or been aborted)?
    pub fn is_finished(&self) -> bool {
        self.state.lock().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.lock();
        if let Some(result) = s.result.take() {
            return Poll::Ready(result);
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn block_on_plain_value() {
        let rt = Runtime::new().unwrap();
        assert_eq!(rt.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawn_and_join() {
        let rt = Runtime::new().unwrap();
        let out = rt.block_on(async {
            let h = spawn(async { 7u32 });
            h.await.unwrap()
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let order = |seed_tasks: usize| {
            let rt = Runtime::new().unwrap();
            rt.block_on(async move {
                let log = Arc::new(Mutex::new(Vec::new()));
                let handles: Vec<_> = (0..seed_tasks)
                    .map(|i| {
                        let log = log.clone();
                        spawn(async move {
                            crate::time::sleep(Duration::from_millis(i as u64 % 3)).await;
                            log.lock().push(i);
                        })
                    })
                    .collect();
                for h in handles {
                    h.await.unwrap();
                }
                let v = log.lock().clone();
                v
            })
        };
        assert_eq!(order(8), order(8), "same program, same schedule");
    }

    #[test]
    fn abort_cancels() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let h = spawn(async {
                crate::time::sleep(Duration::from_secs(3600)).await;
            });
            h.abort();
            let err = h.await.unwrap_err();
            assert!(err.is_cancelled());
        });
    }

    #[test]
    fn starting_at_offsets_the_virtual_clock() {
        let rt = Runtime::starting_at(5_000_000_000).unwrap();
        rt.block_on(async {
            assert_eq!(crate::time::now_nanos(), 5_000_000_000);
            crate::time::sleep(Duration::from_millis(3)).await;
            assert_eq!(crate::time::now_nanos(), 5_003_000_000);
        });
        // and the default constructor still starts at zero
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            assert_eq!(crate::time::now_nanos(), 0);
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_panics_instead_of_hanging() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            std::future::pending::<()>().await;
        });
    }

    #[test]
    fn virtual_time_skips_ahead() {
        let rt = Runtime::new().unwrap();
        let wall = std::time::Instant::now();
        rt.block_on(async {
            // 15 months of 5-minute epochs would be unbearable in wall time.
            crate::time::sleep(Duration::from_secs(39_000_000)).await;
        });
        assert!(wall.elapsed() < Duration::from_secs(5));
    }
}
