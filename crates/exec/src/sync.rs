//! Async synchronisation: a counting [`Semaphore`] (the crawler's
//! politeness concurrency gate) and a [`watch`] channel (the server's
//! graceful-shutdown signal).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

struct SemState {
    permits: usize,
    waiters: VecDeque<Waker>,
}

/// Counting semaphore; permits are acquired via `Arc<Semaphore>` so they
/// can outlive the caller's borrow (tokio's `acquire_owned` shape).
pub struct Semaphore {
    state: Mutex<SemState>,
}

/// Error for a closed semaphore. This implementation never closes, so it
/// is never produced — it exists so `acquire_owned().await?`-style call
/// sites type-check identically against real tokio.
#[derive(Debug)]
pub struct AcquireError(());

impl std::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "semaphore closed")
    }
}

impl std::error::Error for AcquireError {}

impl Semaphore {
    /// A semaphore with `permits` slots.
    pub fn new(permits: usize) -> Self {
        Self {
            state: Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
            }),
        }
    }

    /// Acquire one permit, waiting FIFO if none are free.
    pub fn acquire_owned(self: Arc<Self>) -> AcquireOwned {
        AcquireOwned { sem: self }
    }

    /// Permits currently available.
    pub fn available_permits(&self) -> usize {
        self.state.lock().permits
    }
}

/// Future returned by [`Semaphore::acquire_owned`].
pub struct AcquireOwned {
    sem: Arc<Semaphore>,
}

impl Future for AcquireOwned {
    type Output = Result<OwnedSemaphorePermit, AcquireError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.sem.state.lock();
        if s.permits > 0 {
            s.permits -= 1;
            drop(s);
            Poll::Ready(Ok(OwnedSemaphorePermit {
                sem: self.sem.clone(),
            }))
        } else {
            s.waiters.push_back(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// RAII permit; dropping it releases the slot and wakes the next waiter.
pub struct OwnedSemaphorePermit {
    sem: Arc<Semaphore>,
}

impl Drop for OwnedSemaphorePermit {
    fn drop(&mut self) {
        let mut s = self.sem.state.lock();
        s.permits += 1;
        if let Some(w) = s.waiters.pop_front() {
            w.wake();
        }
    }
}

/// Single-value broadcast channel: receivers observe the latest value and
/// can await changes. Mirrors `tokio::sync::watch`.
pub mod watch {
    use super::*;

    struct Channel<T> {
        value: Mutex<T>,
        version: Mutex<u64>,
        sender_gone: Mutex<bool>,
        wakers: Mutex<Vec<Waker>>,
    }

    impl<T> Channel<T> {
        fn notify(&self) {
            for w in self.wakers.lock().drain(..) {
                w.wake();
            }
        }
    }

    /// Create a channel seeded with `init`.
    pub fn channel<T>(init: T) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Channel {
            value: Mutex::new(init),
            version: Mutex::new(0),
            sender_gone: Mutex::new(false),
            wakers: Mutex::new(Vec::new()),
        });
        (
            Sender { chan: chan.clone() },
            Receiver {
                chan,
                seen_version: 0,
            },
        )
    }

    /// Error returned by [`Sender::send`]; never produced here (values are
    /// accepted even with no receivers), kept for tokio signature parity.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::changed`] when the sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError(());

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "watch channel closed")
        }
    }

    impl std::error::Error for RecvError {}

    /// Writing half.
    pub struct Sender<T> {
        chan: Arc<Channel<T>>,
    }

    impl<T> Sender<T> {
        /// Publish a new value, waking all waiting receivers.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            *self.chan.value.lock() = value;
            *self.chan.version.lock() += 1;
            self.chan.notify();
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            *self.chan.sender_gone.lock() = true;
            self.chan.notify();
        }
    }

    /// Reading half; clones observe changes independently.
    pub struct Receiver<T> {
        chan: Arc<Channel<T>>,
        seen_version: u64,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                chan: self.chan.clone(),
                seen_version: self.seen_version,
            }
        }
    }

    impl<T: Clone> Receiver<T> {
        /// Latest value (cloned; this stand-in has no borrow guard).
        pub fn borrow(&self) -> T {
            self.chan.value.lock().clone()
        }
    }

    impl<T> Receiver<T> {
        /// Wait until a value newer than the last one seen is published.
        pub fn changed(&mut self) -> Changed<'_, T> {
            Changed { rx: self }
        }
    }

    /// Future returned by [`Receiver::changed`].
    pub struct Changed<'a, T> {
        rx: &'a mut Receiver<T>,
    }

    impl<T> Future for Changed<'_, T> {
        type Output = Result<(), RecvError>;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let chan = self.rx.chan.clone();
            let version = *chan.version.lock();
            if version != self.rx.seen_version {
                self.rx.seen_version = version;
                return Poll::Ready(Ok(()));
            }
            if *chan.sender_gone.lock() {
                return Poll::Ready(Err(RecvError(())));
            }
            chan.wakers.lock().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{spawn, Runtime};
    use crate::time::sleep;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn semaphore_bounds_concurrency() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let sem = Arc::new(Semaphore::new(2));
            let peak = Arc::new(AtomicUsize::new(0));
            let live = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let sem = sem.clone();
                    let peak = peak.clone();
                    let live = live.clone();
                    spawn(async move {
                        let _permit = sem.acquire_owned().await.unwrap();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        sleep(Duration::from_millis(1)).await;
                        live.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.await.unwrap();
            }
            assert!(peak.load(Ordering::SeqCst) <= 2);
            assert_eq!(sem.available_permits(), 2);
        });
    }

    #[test]
    fn watch_signals_change_and_close() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let (tx, mut rx) = watch::channel(false);
            let waiter = spawn(async move {
                rx.changed().await.unwrap();
                let after_send = rx.borrow();
                let closed = rx.changed().await;
                (after_send, closed.is_err())
            });
            sleep(Duration::from_millis(1)).await;
            tx.send(true).unwrap();
            sleep(Duration::from_millis(1)).await;
            drop(tx);
            let (after_send, closed) = waiter.await.unwrap();
            assert!(after_send);
            assert!(closed);
        });
    }
}
