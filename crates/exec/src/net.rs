//! In-memory TCP: a per-runtime port registry handing out duplex byte
//! pipes. The API mirrors `tokio::net` closely enough that `httpwire`
//! compiles against it unchanged.
//!
//! Fidelity notes:
//! - `bind("127.0.0.1:0")` allocates ports from a deterministic counter, so
//!   addresses (and everything derived from them) are identical across runs.
//! - A connection is established at `connect` time by pushing the server
//!   half onto the listener's backlog (SYN queue), so connecting never
//!   blocks on `accept`.
//! - Dropping a stream closes both directions (peer reads EOF, peer writes
//!   get `BrokenPipe`); [`TcpStream::reset`] models an RST (peer reads *and*
//!   writes fail with `ConnectionReset`, buffered data is discarded) — the
//!   hook the fault injector uses for mid-request instance death.
//! - Writes never block (unbounded buffers): fine for request/response
//!   traffic, wrong for congestion experiments. Documented trade-off.

use crate::runtime::with_current;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Waker};

/// First port handed out for `:0` binds.
const EPHEMERAL_BASE: u64 = 40_000;
/// First port handed out for client sockets.
const CLIENT_BASE: u64 = 51_000;

#[derive(Default)]
struct PipeInner {
    buf: VecDeque<u8>,
    /// Orderly close: reads drain the buffer then return EOF.
    closed: bool,
    /// Hard reset: reads and writes fail, buffered bytes are discarded.
    reset: bool,
    reader: Option<Waker>,
}

#[derive(Default)]
struct Pipe {
    inner: Mutex<PipeInner>,
}

impl Pipe {
    fn close(&self) {
        let mut p = self.inner.lock();
        p.closed = true;
        if let Some(w) = p.reader.take() {
            w.wake();
        }
    }

    fn reset(&self) {
        let mut p = self.inner.lock();
        p.reset = true;
        p.buf.clear();
        if let Some(w) = p.reader.take() {
            w.wake();
        }
    }
}

struct ListenerState {
    backlog: Mutex<VecDeque<(TcpStream, SocketAddr)>>,
    acceptor: Mutex<Option<Waker>>,
    open: AtomicBool,
}

/// The runtime-owned network namespace: bound listeners + port counters.
pub(crate) struct Registry {
    listeners: Mutex<HashMap<u16, Arc<ListenerState>>>,
    next_ephemeral: AtomicU64,
    next_client: AtomicU64,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Self {
            listeners: Mutex::new(HashMap::new()),
            next_ephemeral: AtomicU64::new(EPHEMERAL_BASE),
            next_client: AtomicU64::new(CLIENT_BASE),
        }
    }

    fn alloc_port(&self, counter: &AtomicU64) -> u16 {
        loop {
            let p = counter.fetch_add(1, Ordering::Relaxed);
            let p = (p % u64::from(u16::MAX)) as u16;
            if !self.listeners.lock().contains_key(&p) {
                return p;
            }
        }
    }
}

/// Listening socket in the runtime's in-memory namespace.
pub struct TcpListener {
    state: Arc<ListenerState>,
    shared: Weak<crate::runtime::Shared>,
    addr: SocketAddr,
}

impl TcpListener {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`); port 0 allocates from the
    /// deterministic ephemeral counter.
    pub async fn bind(addr: &str) -> io::Result<TcpListener> {
        let mut sock: SocketAddr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{e}")))?;
        with_current(|shared| {
            let reg = &shared.net;
            let port = if sock.port() == 0 {
                reg.alloc_port(&reg.next_ephemeral)
            } else {
                sock.port()
            };
            sock.set_port(port);
            let state = Arc::new(ListenerState {
                backlog: Mutex::new(VecDeque::new()),
                acceptor: Mutex::new(None),
                open: AtomicBool::new(true),
            });
            let mut listeners = reg.listeners.lock();
            if listeners.contains_key(&port) {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("port {port} already bound"),
                ));
            }
            listeners.insert(port, state.clone());
            Ok(TcpListener {
                state,
                shared: Arc::downgrade(shared),
                addr: sock,
            })
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.addr)
    }

    /// Wait for the next queued connection.
    pub fn accept(&self) -> Accept<'_> {
        Accept { listener: self }
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        self.state.open.store(false, Ordering::Release);
        if let Some(shared) = self.shared.upgrade() {
            shared.net.listeners.lock().remove(&self.addr.port());
        }
        // Connections sitting in the SYN queue were never served: reset them
        // so the connecting side observes a failure, not a silent hang.
        for (stream, _) in self.state.backlog.lock().drain(..) {
            stream.reset();
        }
        if let Some(w) = self.state.acceptor.lock().take() {
            w.wake();
        }
    }
}

/// Future returned by [`TcpListener::accept`].
pub struct Accept<'a> {
    listener: &'a TcpListener,
}

impl Future for Accept<'_> {
    type Output = io::Result<(TcpStream, SocketAddr)>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let state = &self.listener.state;
        if let Some(conn) = state.backlog.lock().pop_front() {
            return Poll::Ready(Ok(conn));
        }
        if !state.open.load(Ordering::Acquire) {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "listener closed",
            )));
        }
        *state.acceptor.lock() = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// One end of an in-memory duplex connection.
pub struct TcpStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    local: SocketAddr,
    peer: SocketAddr,
}

impl std::fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStream")
            .field("local", &self.local)
            .field("peer", &self.peer)
            .finish()
    }
}

impl TcpStream {
    /// Connect to a listener bound in this runtime.
    pub async fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
        with_current(|shared| {
            let listener = shared.net.listeners.lock().get(&addr.port()).cloned();
            let Some(listener) = listener.filter(|l| l.open.load(Ordering::Acquire)) else {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("connection refused: {addr}"),
                ));
            };
            let client_port = shared.net.alloc_port(&shared.net.next_client);
            let client_addr = SocketAddr::from(([127, 0, 0, 1], client_port));
            let c2s = Arc::new(Pipe::default());
            let s2c = Arc::new(Pipe::default());
            let client = TcpStream {
                rx: s2c.clone(),
                tx: c2s.clone(),
                local: client_addr,
                peer: addr,
            };
            let server = TcpStream {
                rx: c2s,
                tx: s2c,
                local: addr,
                peer: client_addr,
            };
            listener.backlog.lock().push_back((server, client_addr));
            if let Some(w) = listener.acceptor.lock().take() {
                w.wake();
            }
            Ok(client)
        })
    }

    /// This end's address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.local)
    }

    /// The remote end's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.peer)
    }

    /// Hard-reset the connection (RST): the peer's pending and future reads
    /// and writes fail with `ConnectionReset`; buffered data is discarded.
    pub fn reset(&self) {
        self.rx.reset();
        self.tx.reset();
    }
}

impl Drop for TcpStream {
    fn drop(&mut self) {
        // Orderly close in both directions: the peer drains what we sent
        // then sees EOF; the peer's writes fail once we are gone.
        self.tx.close();
        self.rx.close();
    }
}

impl crate::io::AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut [u8],
    ) -> Poll<io::Result<usize>> {
        let mut p = self.rx.inner.lock();
        if p.reset {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "connection reset by peer",
            )));
        }
        if !p.buf.is_empty() {
            let n = buf.len().min(p.buf.len());
            for slot in buf.iter_mut().take(n) {
                *slot = p.buf.pop_front().expect("len checked");
            }
            return Poll::Ready(Ok(n));
        }
        if p.closed {
            return Poll::Ready(Ok(0));
        }
        p.reader = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl crate::io::AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let mut p = self.tx.inner.lock();
        if p.reset {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "connection reset by peer",
            )));
        }
        if p.closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the connection",
            )));
        }
        p.buf.extend(buf);
        if let Some(w) = p.reader.take() {
            w.wake();
        }
        Poll::Ready(Ok(buf.len()))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        self.tx.close();
        Poll::Ready(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{AsyncReadExt, AsyncWriteExt};
    use crate::runtime::{spawn, Runtime};

    #[test]
    fn roundtrip_through_listener() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = spawn(async move {
                let (mut conn, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 5];
                let n = conn.read(&mut buf).await.unwrap();
                conn.write_all(&buf[..n]).await.unwrap();
            });
            let mut client = TcpStream::connect(addr).await.unwrap();
            client.write_all(b"hello").await.unwrap();
            let mut echo = [0u8; 5];
            let n = client.read(&mut echo).await.unwrap();
            assert_eq!(&echo[..n], b"hello");
            server.await.unwrap();
        });
    }

    #[test]
    fn ports_are_deterministic() {
        let alloc = || {
            let rt = Runtime::new().unwrap();
            rt.block_on(async {
                let a = TcpListener::bind("127.0.0.1:0").await.unwrap();
                let b = TcpListener::bind("127.0.0.1:0").await.unwrap();
                (
                    a.local_addr().unwrap().port(),
                    b.local_addr().unwrap().port(),
                )
            })
        };
        assert_eq!(alloc(), alloc());
    }

    #[test]
    fn connect_without_listener_is_refused() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let err = TcpStream::connect(SocketAddr::from(([127, 0, 0, 1], 1)))
                .await
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        });
    }

    #[test]
    fn connect_after_listener_drop_is_refused() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            drop(listener);
            let err = TcpStream::connect(addr).await.unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        });
    }

    #[test]
    fn drop_yields_eof_after_drain() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).await.unwrap();
            let (mut conn, _) = listener.accept().await.unwrap();
            conn.write_all(b"bye").await.unwrap();
            drop(conn);
            let mut out = Vec::new();
            client.read_to_end(&mut out).await.unwrap();
            assert_eq!(out, b"bye");
        });
    }

    #[test]
    fn reset_discards_and_errors() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).await.unwrap();
            let (mut conn, _) = listener.accept().await.unwrap();
            conn.write_all(b"doomed").await.unwrap();
            conn.reset();
            let mut buf = [0u8; 16];
            let err = client.read(&mut buf).await.unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
            let err = client.write_all(b"x").await.unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        });
    }
}
