//! # fediscope-exec
//!
//! A deterministic, single-threaded async executor with **virtual time** and
//! an **in-memory TCP transport** — the engine behind the `net` feature.
//!
//! The study's measurement loop (crawler ↔ simulated fediverse) needs an
//! async runtime, but a real multi-threaded runtime would make every crawl
//! transcript a race: task wake order, timer coalescing, and socket
//! scheduling all vary run to run. This crate replaces all of that with a
//! machine that is *bit-reproducible*:
//!
//! - **Scheduling** is a FIFO ready queue polled by one thread. A task woken
//!   twice is polled twice; wake order is program order, never OS order.
//! - **Time** is virtual. `sleep`/`timeout`/`interval` register deadlines in
//!   a binary heap keyed by `(deadline, sequence)`. When the ready queue
//!   drains, the executor jumps the clock to the earliest deadline — a
//!   15-month crawl of 5-minute polls runs in milliseconds of wall time.
//! - **Networking** is a per-runtime port registry handing out duplex
//!   in-memory byte pipes. `TcpListener::bind("127.0.0.1:0")` allocates
//!   ports from a counter, so addresses are identical across runs. Streams
//!   support orderly shutdown *and* hard resets (`ECONNRESET`), which the
//!   fault injector uses to model instances dying mid-request.
//!
//! If nothing is ready and no timer is pending, the executor panics with a
//! deadlock report rather than hanging — a stuck crawl is a bug, not a wait.
//!
//! The public surface deliberately mirrors the subset of tokio the workspace
//! uses; `vendor/tokio` re-exports it under tokio's module layout so the
//! `net`-gated code compiles unchanged against either engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod future;
pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod time;

pub use runtime::{spawn, JoinError, JoinHandle, Runtime};
