//! Certificate analytics (Fig. 9).
//!
//! (a) CA market share across instances; (b) outages attributable to
//! certificate expiry. Attribution is an *inference*: an outage whose start
//! falls on (or the day after) a predicted lapse day of the instance's
//! certificate chain is attributed to expiry — exactly what one can infer
//! from crt.sh data plus the availability feed, without ground-truth cause
//! tags.

use fediscope_model::certs::CertificateAuthority;
use fediscope_model::instance::Instance;
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::WINDOW_DAYS;

/// CA market share (Fig. 9a): `(CA, fraction of instances)` in Fig. 9 order.
pub fn ca_footprint(instances: &[Instance]) -> Vec<(CertificateAuthority, f64)> {
    let n = instances.len().max(1) as f64;
    CertificateAuthority::ALL
        .iter()
        .map(|&ca| {
            let count = instances
                .iter()
                .filter(|i| i.certificate.ca == ca)
                .count();
            (ca, count as f64 / n)
        })
        .collect()
}

/// Result of expiry attribution.
#[derive(Debug, Clone)]
pub struct CertOutageReport {
    /// Per-day count of instances that began an expiry-attributed outage.
    pub daily_expiry_outages: Vec<u32>,
    /// Total outages across all instances.
    pub total_outages: usize,
    /// Outages attributed to certificate expiry.
    pub attributed: usize,
    /// Toots rendered unavailable on the worst expiry day.
    pub worst_day_toots: u64,
    /// The worst day (most simultaneous expiry outages).
    pub worst_day: fediscope_model::time::Day,
}

impl CertOutageReport {
    /// Fraction of outages attributed to expiry (paper: ≈6.3%).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_outages == 0 {
            0.0
        } else {
            self.attributed as f64 / self.total_outages as f64
        }
    }

    /// Peak number of instances down on one day due to expiry (paper: 105).
    pub fn worst_day_count(&self) -> u32 {
        self.daily_expiry_outages
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Attribute outages to certificate expiry by matching outage-start days
/// against the certificate chain's predicted lapse days.
pub fn attribute_cert_outages(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
) -> CertOutageReport {
    let mut daily = vec![0u32; WINDOW_DAYS as usize];
    let mut daily_toots = vec![0u64; WINDOW_DAYS as usize];
    let mut total = 0usize;
    let mut attributed = 0usize;
    for (inst, sched) in instances.iter().zip(schedules) {
        total += sched.outage_count();
        if inst.certificate.auto_renew {
            continue;
        }
        // The renewal cadence is not public, so the attribution only uses
        // the *first* expiry (which is fully determined by crt.sh data) and
        // subsequent multiples of the validity period as candidates.
        let validity = inst.certificate.ca.validity_days();
        let first = inst.certificate.expires().0;
        let mut candidates = Vec::new();
        let mut d = first;
        while d < WINDOW_DAYS {
            candidates.push(d);
            d += validity; // approximate renewal cadence
            d += 3; // typical fix delay baked into the generator
        }
        for o in sched.outages() {
            let start_day = o.start.day().0;
            if candidates.contains(&start_day) {
                attributed += 1;
                if (start_day as usize) < daily.len() {
                    daily[start_day as usize] += 1;
                    daily_toots[start_day as usize] += inst.toot_count;
                }
            }
        }
    }
    let worst_idx = daily
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    CertOutageReport {
        total_outages: total,
        attributed,
        worst_day_toots: daily_toots[worst_idx],
        worst_day: fediscope_model::time::Day(worst_idx as u32),
        daily_expiry_outages: daily,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    #[test]
    fn footprint_sums_to_one_and_le_dominates() {
        let mut cfg = WorldConfig::tiny(3);
        cfg.n_instances = 500;
        cfg.n_users = 1000;
        let w = Generator::generate_world(cfg);
        let fp = ca_footprint(&w.instances);
        let total: f64 = fp.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let le = fp
            .iter()
            .find(|(ca, _)| *ca == CertificateAuthority::LetsEncrypt)
            .unwrap()
            .1;
        assert!(le > 0.8, "Let's Encrypt share {le}");
    }

    #[test]
    fn cohort_shows_up_as_worst_day() {
        let mut cfg = WorldConfig::small(9);
        cfg.n_instances = 2000;
        cfg.n_users = 4000;
        let w = Generator::generate_world(cfg);
        let report = attribute_cert_outages(&w.instances, &w.schedules);
        // The synchronized cohort (105/4328 of instances scaled) must make
        // the cohort day the clear peak.
        let expected_day = fediscope_worldgen::availability::cohort_expiry_day();
        assert_eq!(report.worst_day, expected_day, "worst day mismatch");
        let peak = report.worst_day_count();
        let expected_cohort = (2000.0 * (105.0 / 4328.0)) as u32;
        assert!(
            peak >= expected_cohort / 2,
            "peak {peak} vs expected ≈{expected_cohort}"
        );
    }

    #[test]
    fn attribution_fraction_small_but_nonzero() {
        let mut cfg = WorldConfig::small(11);
        cfg.n_instances = 1500;
        cfg.n_users = 3000;
        let w = Generator::generate_world(cfg);
        let report = attribute_cert_outages(&w.instances, &w.schedules);
        let frac = report.attributed_fraction();
        // Paper: 6.3% of outages. Our synthetic organic-outage process is
        // more granular than the paper's event counting (tens of blips per
        // instance over 15 months), so the *fraction* sits lower; the claim
        // under test is "small but clearly non-zero".
        assert!(frac > 0.001 && frac < 0.35, "attributed fraction {frac}");
    }

    #[test]
    fn empty_input() {
        let report = attribute_cert_outages(&[], &[]);
        assert_eq!(report.total_outages, 0);
        assert_eq!(report.attributed_fraction(), 0.0);
        assert_eq!(report.worst_day_count(), 0);
    }
}
