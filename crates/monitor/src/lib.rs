//! # fediscope-monitor
//!
//! Availability analytics over monitoring data — the §4.4 machinery:
//!
//! - [`observe`]: reconstruct outage schedules from raw poll series (what a
//!   measurement sees) so every analysis runs identically on ground truth
//!   and on crawled data,
//! - [`downtime`]: lifetime downtime distributions and the unavailable
//!   users/toots exposure (Fig. 7),
//! - [`daily`]: per-day downtime by instance size bin, vs Twitter (Fig. 8),
//! - [`outages`]: continuous-outage durations and worst-day impact
//!   (Fig. 10),
//! - [`asn`]: AS-wide co-failure detection (Table 1),
//! - [`certs`]: certificate-expiry attribution (Fig. 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod certs;
pub mod daily;
pub mod downtime;
pub mod observe;
pub mod outages;
