//! # fediscope-monitor
//!
//! Availability analytics over monitoring data — the §4.4 machinery:
//!
//! - [`observe`]: reconstruct outage schedules from raw poll series (what a
//!   measurement sees) so every analysis runs identically on ground truth
//!   and on crawled data,
//! - [`downtime`]: lifetime downtime distributions and the unavailable
//!   users/toots exposure (Fig. 7),
//! - [`daily`]: per-day downtime by instance size bin, vs Twitter (Fig. 8),
//! - [`outages`]: continuous-outage durations and worst-day impact
//!   (Fig. 10),
//! - [`asn`]: AS-wide co-failure detection (Table 1),
//! - [`certs`]: certificate-expiry attribution (Fig. 9),
//! - [`sweep`]: the columnar engine — one sharded pass over an
//!   [`fediscope_model::schedule::OutageArena`] folds Figs. 7, 8, 10, the
//!   worst-day blackout, and Table 1 at once, bit-identical to the naive
//!   per-schedule path at any shard count.
//!
//! Each analysis module exposes both the kept per-schedule function and an
//! `*_arena` variant reading the flat interval columns; [`sweep`] fuses
//! the arena variants into the single production pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod certs;
pub mod daily;
pub mod downtime;
pub mod observe;
pub mod outages;
pub mod sweep;

pub use observe::{arena_from_polls, arena_from_polls_with_coverage, CrawlCoverage};
pub use sweep::{naive_section4, MonitorSweep, SweepConfig, SweepOutput};
