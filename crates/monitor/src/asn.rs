//! AS-wide co-failure detection (Table 1).
//!
//! "We consider it to be an AS failure if all instances hosted in the same
//! AS became unavailable simultaneously. We only include ASes that host at
//! least 8 instances" (§4.4). Detection is a sweep over outage boundaries:
//! an AS failure interval is a maximal period during which every *existing*
//! member instance is down.

use fediscope_graph::par;
use fediscope_model::geo::ProviderCatalog;
use fediscope_model::ids::{AsId, InstanceId};
use fediscope_model::instance::Instance;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena};
use fediscope_model::time::Epoch;

/// One detected AS-failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsFailureEvent {
    /// Start of the co-failure.
    pub start: Epoch,
    /// End (first epoch where some member is back).
    pub end: Epoch,
}

/// A Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct AsFailureRow {
    /// The AS.
    pub asn: AsId,
    /// Organisation name.
    pub org: String,
    /// Instances hosted.
    pub instances: usize,
    /// Distinct IPs (one per instance in the synthetic allocation).
    pub ips: usize,
    /// Number of detected co-failure events.
    pub failures: usize,
    /// Users hosted in the AS.
    pub users: u64,
    /// Toots hosted in the AS.
    pub toots: u64,
    /// CAIDA rank.
    pub rank: u32,
    /// Peer count.
    pub peers: u32,
}

/// Detect co-failure events for one group of schedules.
///
/// Only epochs where at least `min_existing` members exist are eligible (the
/// paper's ≥8-instance rule is applied by the caller on the *hosted* count;
/// this guard additionally avoids "all zero of zero members are down"
/// artefacts early in the window).
pub fn detect_co_failures(
    schedules: &[&AvailabilitySchedule],
    min_existing: usize,
) -> Vec<AsFailureEvent> {
    // Packed event deltas at epoch boundaries (sorting the packed word is
    // epoch-major, which is the only ordering the sweep depends on).
    let mut events: Vec<u32> = Vec::new();
    for s in schedules {
        let birth = s.birth_epoch().0;
        let death = s.death_epoch().0;
        if birth >= death {
            continue;
        }
        events.push(birth << 2 | EV_EXIST_UP);
        events.push(death << 2 | EV_EXIST_DOWN);
        for o in s.outages() {
            events.push(o.start.0 << 2 | EV_DOWN_UP);
            events.push(o.end.0 << 2 | EV_DOWN_DOWN);
        }
    }
    events.sort_unstable();
    sweep_sorted_events(&events, min_existing)
}

/// Boundary events, packed into one `u32` each: `epoch << 2 | code`
/// (`WINDOW_EPOCHS < 2^18`, so the shifted epoch fits). Codes 0–3 mean
/// exist+1, exist−1, down+1, down−1; within one epoch all deltas are
/// summed before the predicate runs, so only epoch-major ordering matters.
const EV_EXIST_UP: u32 = 0;
const EV_EXIST_DOWN: u32 = 1;
const EV_DOWN_UP: u32 = 2;
const EV_DOWN_DOWN: u32 = 3;

/// Append `[s, e)` to a maximal-disjoint interval list, merging when it
/// butts against the previous interval.
fn push_merged(out: &mut Vec<(u32, u32)>, s: u32, e: u32) {
    if s >= e {
        return;
    }
    if let Some(last) = out.last_mut() {
        if last.1 == s {
            last.1 = e;
            return;
        }
    }
    out.push((s, e));
}

/// Two-pointer intersection of two maximal-disjoint interval lists.
fn intersect_into(a: &[(u32, u32)], b: &[(u32, u32)], out: &mut Vec<(u32, u32)>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// [`detect_co_failures`] for `members` (instance indices) of a columnar
/// [`OutageArena`], by **interval intersection with early exit** instead
/// of a full boundary-event sweep.
///
/// A co-failure epoch is one where *no existing member is up* and enough
/// members exist. The first condition is the intersection over members of
/// each member's "not (existing and up)" intervals (`[0, birth) ∪ outages
/// ∪ [death, window end)`, adjacent pieces merged) — and that intersection
/// usually empties after two or three members, at which point the
/// remaining members' columns are never even read. Only when candidates
/// survive (ASes with genuine co-failures) does the
/// `existing ≥ min_existing` eligibility sweep over the (tiny) birth/death
/// breakpoint list run, and the final answer is the intersection of the
/// two interval sets. Both operands stay maximal-disjoint-non-adjacent
/// throughout, so the output intervals are exactly the event sweep's
/// maximal failing intervals.
pub fn detect_co_failures_arena(
    arena: &OutageArena,
    members: &[u32],
    min_existing: usize,
) -> Vec<AsFailureEvent> {
    const W: u32 = fediscope_model::time::WINDOW_EPOCHS;
    // Phase 1: candidate epochs where no existing member answers.
    let mut cand: Vec<(u32, u32)> = vec![(0, W)];
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    let mut not_blocked: Vec<(u32, u32)> = Vec::new();
    for &m in members {
        let v = arena.view(m as usize);
        not_blocked.clear();
        push_merged(&mut not_blocked, 0, v.birth.0);
        for (s, e) in v.starts.iter().zip(v.ends.iter()) {
            push_merged(&mut not_blocked, s.0, e.0);
        }
        push_merged(&mut not_blocked, v.death.0, W);
        intersect_into(&cand, &not_blocked, &mut scratch);
        std::mem::swap(&mut cand, &mut scratch);
        if cand.is_empty() {
            return Vec::new();
        }
    }
    // Phase 2: eligibility — maximal intervals where enough members exist
    // (the event sweep's `existing >= min_existing && existing > 0`).
    let min = min_existing.max(1) as i32;
    let mut breaks: Vec<(u32, i32)> = Vec::with_capacity(2 * members.len());
    for &m in members {
        let v = arena.view(m as usize);
        if v.birth.0 < v.death.0 {
            breaks.push((v.birth.0, 1));
            breaks.push((v.death.0, -1));
        }
    }
    breaks.sort_unstable();
    let mut eligible: Vec<(u32, u32)> = Vec::new();
    let mut count = 0i32;
    let mut open: Option<u32> = None;
    let mut i = 0;
    while i < breaks.len() {
        let epoch = breaks[i].0;
        while i < breaks.len() && breaks[i].0 == epoch {
            count += breaks[i].1;
            i += 1;
        }
        match (count >= min, open) {
            (true, None) => open = Some(epoch),
            (false, Some(s)) => {
                eligible.push((s, epoch));
                open = None;
            }
            _ => {}
        }
    }
    if let Some(s) = open {
        eligible.push((s, W));
    }
    intersect_into(&cand, &eligible, &mut scratch);
    scratch
        .iter()
        .map(|&(s, e)| AsFailureEvent {
            start: Epoch(s),
            end: Epoch(e),
        })
        .collect()
}

/// The shared boundary sweep over **epoch-sorted** packed deltas: emit
/// maximal all-existing-members-down intervals. All deltas at one epoch
/// are summed atomically before the predicate is evaluated, so any
/// epoch-stable input order yields the same events as the schedule path's
/// fully-sorted tuple sweep.
fn sweep_sorted_events(events: &[u32], min_existing: usize) -> Vec<AsFailureEvent> {
    let mut existing = 0i32;
    let mut down = 0i32;
    let mut in_failure: Option<u32> = None;
    let mut out = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let epoch = events[i] >> 2;
        // apply all deltas at this epoch atomically
        while i < events.len() && events[i] >> 2 == epoch {
            match events[i] & 3 {
                EV_EXIST_UP => existing += 1,
                EV_EXIST_DOWN => existing -= 1,
                EV_DOWN_UP => down += 1,
                _ => down -= 1,
            }
            i += 1;
        }
        let failing = existing >= min_existing as i32 && existing > 0 && down == existing;
        match (failing, in_failure) {
            (true, None) => in_failure = Some(epoch),
            (false, Some(start)) => {
                out.push(AsFailureEvent {
                    start: Epoch(start),
                    end: Epoch(epoch),
                });
                in_failure = None;
            }
            _ => {}
        }
    }
    if let Some(start) = in_failure {
        out.push(AsFailureEvent {
            start: Epoch(start),
            end: Epoch(fediscope_model::time::WINDOW_EPOCHS),
        });
    }
    out
}

/// Build the Table 1 rows: every AS hosting at least `min_instances`
/// instances with at least one detected co-failure, ordered by hosted
/// instance count descending.
pub fn as_failure_table(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
    providers: &ProviderCatalog,
    min_instances: usize,
) -> Vec<AsFailureRow> {
    let mut groups: std::collections::HashMap<AsId, Vec<InstanceId>> = Default::default();
    for inst in instances {
        groups.entry(inst.asn).or_default().push(inst.id);
    }
    let mut rows = Vec::new();
    for (asn, members) in groups {
        if members.len() < min_instances {
            continue;
        }
        let member_scheds: Vec<&AvailabilitySchedule> = members
            .iter()
            .map(|id| &schedules[id.index()])
            .collect();
        let failures = detect_co_failures(&member_scheds, min_instances.min(members.len()));
        if failures.is_empty() {
            continue;
        }
        let provider = providers.by_asn(asn);
        rows.push(AsFailureRow {
            asn,
            org: provider.map(|p| p.name.clone()).unwrap_or_default(),
            instances: members.len(),
            ips: members.len(),
            failures: failures.len(),
            users: members
                .iter()
                .map(|id| instances[id.index()].user_count as u64)
                .sum(),
            toots: members
                .iter()
                .map(|id| instances[id.index()].toot_count)
                .sum(),
            rank: provider.map(|p| p.caida_rank).unwrap_or(0),
            peers: provider.map(|p| p.peers).unwrap_or(0),
        });
    }
    rows.sort_by(|a, b| b.instances.cmp(&a.instances).then(a.asn.cmp(&b.asn)));
    rows
}

/// [`as_failure_table`] over the columnar [`OutageArena`], sharded: the AS
/// groups fan out across threads via `par::parallel_map` (each group's
/// event sweep is independent), and the final row sort is the same total
/// order as the naive path, so the table is bit-identical to it at any
/// thread count.
pub fn as_failure_table_arena(
    instances: &[Instance],
    arena: &OutageArena,
    providers: &ProviderCatalog,
    min_instances: usize,
) -> Vec<AsFailureRow> {
    let mut by_asn: std::collections::HashMap<AsId, Vec<u32>> = Default::default();
    for (i, inst) in instances.iter().enumerate() {
        by_asn.entry(inst.asn).or_default().push(i as u32);
    }
    let mut groups: Vec<(AsId, Vec<u32>)> = by_asn.into_iter().collect();
    groups.sort_unstable_by_key(|(asn, _)| *asn);
    let rows = par::parallel_map(&groups, |(asn, members)| {
        if members.len() < min_instances {
            return None;
        }
        let failures =
            detect_co_failures_arena(arena, members, min_instances.min(members.len()));
        if failures.is_empty() {
            return None;
        }
        let provider = providers.by_asn(*asn);
        Some(AsFailureRow {
            asn: *asn,
            org: provider.map(|p| p.name.clone()).unwrap_or_default(),
            instances: members.len(),
            ips: members.len(),
            failures: failures.len(),
            users: members
                .iter()
                .map(|&i| instances[i as usize].user_count as u64)
                .sum(),
            toots: members.iter().map(|&i| instances[i as usize].toot_count).sum(),
            rank: provider.map(|p| p.caida_rank).unwrap_or(0),
            peers: provider.map(|p| p.peers).unwrap_or(0),
        })
    });
    let mut rows: Vec<AsFailureRow> = rows.into_iter().flatten().collect();
    rows.sort_by(|a, b| b.instances.cmp(&a.instances).then(a.asn.cmp(&b.asn)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::Day;

    fn up() -> AvailabilitySchedule {
        AvailabilitySchedule::always_up()
    }

    #[test]
    fn simultaneous_outage_detected() {
        let mut a = up();
        let mut b = up();
        a.add_outage(Epoch(100), Epoch(200), OutageCause::AsFailure);
        b.add_outage(Epoch(100), Epoch(200), OutageCause::AsFailure);
        let events = detect_co_failures(&[&a, &b], 2);
        assert_eq!(
            events,
            vec![AsFailureEvent {
                start: Epoch(100),
                end: Epoch(200)
            }]
        );
    }

    #[test]
    fn partial_overlap_counts_only_intersection() {
        let mut a = up();
        let mut b = up();
        a.add_outage(Epoch(100), Epoch(300), OutageCause::Organic);
        b.add_outage(Epoch(200), Epoch(400), OutageCause::Organic);
        let events = detect_co_failures(&[&a, &b], 2);
        assert_eq!(
            events,
            vec![AsFailureEvent {
                start: Epoch(200),
                end: Epoch(300)
            }]
        );
    }

    #[test]
    fn one_member_up_blocks_detection() {
        let mut a = up();
        a.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        let b = up();
        assert!(detect_co_failures(&[&a, &b], 2).is_empty());
    }

    #[test]
    fn min_existing_guard() {
        // a single-member "AS" fails alone — not enough members.
        let mut a = up();
        a.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        assert!(detect_co_failures(&[&a], 2).is_empty());
        assert_eq!(detect_co_failures(&[&a], 1).len(), 1);
    }

    #[test]
    fn unborn_members_do_not_block() {
        // b is created only at day 100; before that, a alone counts.
        let mut a = up();
        a.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        let b = AvailabilitySchedule::new(Day(100), None);
        let events = detect_co_failures(&[&a, &b], 1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].start, Epoch(100));
    }

    #[test]
    fn arena_detection_matches_schedule_detection() {
        use fediscope_model::schedule::OutageArena;
        use fediscope_model::time::WINDOW_EPOCHS;
        // tricky mixtures: unborn members, retirement mid-overlap, an
        // outage running into the window end, adjacent birth/outage spans
        let mut a = up();
        a.add_outage(Epoch(100), Epoch(300), OutageCause::Organic);
        a.add_outage(Epoch(5_000), Epoch(WINDOW_EPOCHS), OutageCause::Organic);
        let mut b = AvailabilitySchedule::new(Day(0), Some(Day(20)));
        b.add_outage(Epoch(0), Epoch(250), OutageCause::Organic);
        b.add_outage(Epoch(4_000), Epoch(6_000), OutageCause::Organic);
        let c = AvailabilitySchedule::new(Day(100), None);
        let mut d = AvailabilitySchedule::new(Day(2), Some(Day(2)));
        d.add_outage(Epoch(0), Epoch(WINDOW_EPOCHS), OutageCause::Organic);
        let schedules = vec![a, b, c, d];
        let arena = OutageArena::from_schedules(&schedules);
        let refs: Vec<&AvailabilitySchedule> = schedules.iter().collect();
        let members: Vec<u32> = (0..schedules.len() as u32).collect();
        for min_existing in [1usize, 2, 3] {
            let naive = detect_co_failures(&refs, min_existing);
            let got = detect_co_failures_arena(&arena, &members, min_existing);
            assert_eq!(got, naive, "min_existing {min_existing}");
        }
        // subset membership too
        for subset in [&[0u32, 1][..], &[0, 2], &[1, 3], &[0, 1, 2]] {
            let sub_refs: Vec<&AvailabilitySchedule> =
                subset.iter().map(|&m| &schedules[m as usize]).collect();
            assert_eq!(
                detect_co_failures_arena(&arena, subset, 2),
                detect_co_failures(&sub_refs, 2),
                "subset {subset:?}"
            );
        }
    }

    #[test]
    fn multiple_distinct_events() {
        let mut a = up();
        let mut b = up();
        for start in [100u32, 500, 900] {
            a.add_outage(Epoch(start), Epoch(start + 50), OutageCause::AsFailure);
            b.add_outage(Epoch(start), Epoch(start + 50), OutageCause::AsFailure);
        }
        assert_eq!(detect_co_failures(&[&a, &b], 2).len(), 3);
    }

    #[test]
    fn table_detects_generated_as_failures() {
        use fediscope_worldgen::{Generator, WorldConfig};
        let mut cfg = WorldConfig::small(7);
        cfg.n_instances = 1200;
        cfg.n_users = 6_000;
        let w = Generator::generate_world(cfg);
        // use the paper's threshold scaled down (tiny ASes in small worlds)
        let rows = as_failure_table(&w.instances, &w.schedules, &w.providers, 3);
        assert!(
            !rows.is_empty(),
            "planned AS failures should be detectable"
        );
        // every row has sane content
        for r in &rows {
            assert!(r.failures >= 1);
            assert!(r.instances >= 3);
            assert_eq!(r.ips, r.instances);
        }
    }
}
