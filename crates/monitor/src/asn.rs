//! AS-wide co-failure detection (Table 1).
//!
//! "We consider it to be an AS failure if all instances hosted in the same
//! AS became unavailable simultaneously. We only include ASes that host at
//! least 8 instances" (§4.4). Detection is a sweep over outage boundaries:
//! an AS failure interval is a maximal period during which every *existing*
//! member instance is down.

use fediscope_model::geo::ProviderCatalog;
use fediscope_model::ids::{AsId, InstanceId};
use fediscope_model::instance::Instance;
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::Epoch;

/// One detected AS-failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsFailureEvent {
    /// Start of the co-failure.
    pub start: Epoch,
    /// End (first epoch where some member is back).
    pub end: Epoch,
}

/// A Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct AsFailureRow {
    /// The AS.
    pub asn: AsId,
    /// Organisation name.
    pub org: String,
    /// Instances hosted.
    pub instances: usize,
    /// Distinct IPs (one per instance in the synthetic allocation).
    pub ips: usize,
    /// Number of detected co-failure events.
    pub failures: usize,
    /// Users hosted in the AS.
    pub users: u64,
    /// Toots hosted in the AS.
    pub toots: u64,
    /// CAIDA rank.
    pub rank: u32,
    /// Peer count.
    pub peers: u32,
}

/// Detect co-failure events for one group of schedules.
///
/// Only epochs where at least `min_existing` members exist are eligible (the
/// paper's ≥8-instance rule is applied by the caller on the *hosted* count;
/// this guard additionally avoids "all zero of zero members are down"
/// artefacts early in the window).
pub fn detect_co_failures(
    schedules: &[&AvailabilitySchedule],
    min_existing: usize,
) -> Vec<AsFailureEvent> {
    // Event deltas at epoch boundaries: (epoch, d_exist, d_down)
    let mut events: Vec<(u32, i32, i32)> = Vec::new();
    for s in schedules {
        let birth = s.birth_epoch().0;
        let death = s.death_epoch().0;
        if birth >= death {
            continue;
        }
        events.push((birth, 1, 0));
        events.push((death, -1, 0));
        for o in s.outages() {
            events.push((o.start.0, 0, 1));
            events.push((o.end.0, 0, -1));
        }
    }
    events.sort_unstable();
    let mut existing = 0i32;
    let mut down = 0i32;
    let mut in_failure: Option<u32> = None;
    let mut out = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let epoch = events[i].0;
        // apply all deltas at this epoch atomically
        while i < events.len() && events[i].0 == epoch {
            existing += events[i].1;
            down += events[i].2;
            i += 1;
        }
        let failing = existing >= min_existing as i32 && existing > 0 && down == existing;
        match (failing, in_failure) {
            (true, None) => in_failure = Some(epoch),
            (false, Some(start)) => {
                out.push(AsFailureEvent {
                    start: Epoch(start),
                    end: Epoch(epoch),
                });
                in_failure = None;
            }
            _ => {}
        }
    }
    if let Some(start) = in_failure {
        out.push(AsFailureEvent {
            start: Epoch(start),
            end: Epoch(fediscope_model::time::WINDOW_EPOCHS),
        });
    }
    out
}

/// Build the Table 1 rows: every AS hosting at least `min_instances`
/// instances with at least one detected co-failure, ordered by hosted
/// instance count descending.
pub fn as_failure_table(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
    providers: &ProviderCatalog,
    min_instances: usize,
) -> Vec<AsFailureRow> {
    let mut groups: std::collections::HashMap<AsId, Vec<InstanceId>> = Default::default();
    for inst in instances {
        groups.entry(inst.asn).or_default().push(inst.id);
    }
    let mut rows = Vec::new();
    for (asn, members) in groups {
        if members.len() < min_instances {
            continue;
        }
        let member_scheds: Vec<&AvailabilitySchedule> = members
            .iter()
            .map(|id| &schedules[id.index()])
            .collect();
        let failures = detect_co_failures(&member_scheds, min_instances.min(members.len()));
        if failures.is_empty() {
            continue;
        }
        let provider = providers.by_asn(asn);
        rows.push(AsFailureRow {
            asn,
            org: provider.map(|p| p.name.clone()).unwrap_or_default(),
            instances: members.len(),
            ips: members.len(),
            failures: failures.len(),
            users: members
                .iter()
                .map(|id| instances[id.index()].user_count as u64)
                .sum(),
            toots: members
                .iter()
                .map(|id| instances[id.index()].toot_count)
                .sum(),
            rank: provider.map(|p| p.caida_rank).unwrap_or(0),
            peers: provider.map(|p| p.peers).unwrap_or(0),
        });
    }
    rows.sort_by(|a, b| b.instances.cmp(&a.instances).then(a.asn.cmp(&b.asn)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::Day;

    fn up() -> AvailabilitySchedule {
        AvailabilitySchedule::always_up()
    }

    #[test]
    fn simultaneous_outage_detected() {
        let mut a = up();
        let mut b = up();
        a.add_outage(Epoch(100), Epoch(200), OutageCause::AsFailure);
        b.add_outage(Epoch(100), Epoch(200), OutageCause::AsFailure);
        let events = detect_co_failures(&[&a, &b], 2);
        assert_eq!(
            events,
            vec![AsFailureEvent {
                start: Epoch(100),
                end: Epoch(200)
            }]
        );
    }

    #[test]
    fn partial_overlap_counts_only_intersection() {
        let mut a = up();
        let mut b = up();
        a.add_outage(Epoch(100), Epoch(300), OutageCause::Organic);
        b.add_outage(Epoch(200), Epoch(400), OutageCause::Organic);
        let events = detect_co_failures(&[&a, &b], 2);
        assert_eq!(
            events,
            vec![AsFailureEvent {
                start: Epoch(200),
                end: Epoch(300)
            }]
        );
    }

    #[test]
    fn one_member_up_blocks_detection() {
        let mut a = up();
        a.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        let b = up();
        assert!(detect_co_failures(&[&a, &b], 2).is_empty());
    }

    #[test]
    fn min_existing_guard() {
        // a single-member "AS" fails alone — not enough members.
        let mut a = up();
        a.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        assert!(detect_co_failures(&[&a], 2).is_empty());
        assert_eq!(detect_co_failures(&[&a], 1).len(), 1);
    }

    #[test]
    fn unborn_members_do_not_block() {
        // b is created only at day 100; before that, a alone counts.
        let mut a = up();
        a.add_outage(Epoch(100), Epoch(200), OutageCause::Organic);
        let b = AvailabilitySchedule::new(Day(100), None);
        let events = detect_co_failures(&[&a, &b], 1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].start, Epoch(100));
    }

    #[test]
    fn multiple_distinct_events() {
        let mut a = up();
        let mut b = up();
        for start in [100u32, 500, 900] {
            a.add_outage(Epoch(start), Epoch(start + 50), OutageCause::AsFailure);
            b.add_outage(Epoch(start), Epoch(start + 50), OutageCause::AsFailure);
        }
        assert_eq!(detect_co_failures(&[&a, &b], 2).len(), 3);
    }

    #[test]
    fn table_detects_generated_as_failures() {
        use fediscope_worldgen::{Generator, WorldConfig};
        let mut cfg = WorldConfig::small(7);
        cfg.n_instances = 1200;
        cfg.n_users = 6_000;
        let w = Generator::generate_world(cfg);
        // use the paper's threshold scaled down (tiny ASes in small worlds)
        let rows = as_failure_table(&w.instances, &w.schedules, &w.providers, 3);
        assert!(
            !rows.is_empty(),
            "planned AS failures should be detectable"
        );
        // every row has sane content
        for r in &rows {
            assert!(r.failures >= 1);
            assert!(r.instances >= 3);
            assert_eq!(r.ips, r.instances);
        }
    }
}
