//! Reconstructing availability schedules from raw poll series.
//!
//! The monitor only sees poll outcomes at 5-minute ticks; this module turns
//! a tick series back into outage intervals so the downstream analytics are
//! agnostic about whether they run on ground truth or on measurements. All
//! reconstructed outages carry [`OutageCause::Organic`] — a measurement
//! cannot observe causes (attribution is a separate, inference step in
//! [`crate::certs`] and [`crate::asn`]).

use fediscope_model::datasets::ObservedSeries;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena, OutageCause};
use fediscope_model::time::{Day, Epoch};

/// Reusable scratch for batch reconstruction: holds one instance's
/// reconstructed lifetime and outage intervals so the arena path never
/// allocates per instance.
#[derive(Debug, Default)]
pub struct PollScratch {
    /// Reconstructed outage intervals, sorted and strictly separated.
    intervals: Vec<(Epoch, Epoch)>,
    /// Reconstructed creation day.
    created: Day,
    /// Reconstructed retirement day, if the series implies one.
    retired: Option<Day>,
}

impl PollScratch {
    /// Reconstructed lifetime as `[birth, death)` epochs (the same mapping
    /// [`AvailabilitySchedule`] applies to its `created`/`retired` days).
    fn lifetime(&self) -> (Epoch, Epoch) {
        let birth = self.created.start_epoch();
        let death = self
            .retired
            .map(|d| d.start_epoch())
            .unwrap_or(Epoch(fediscope_model::time::WINDOW_EPOCHS));
        (birth, death)
    }
}

/// The shared reconstruction core: decode one poll series into `scratch`.
/// Returns `false` (scratch untouched beyond clearing) for an empty series.
///
/// Semantics: a run of consecutive `Down` polls becomes one outage spanning
/// from the first down poll to the next up poll (exclusive). The instance's
/// lifetime is taken as `[first poll day, one-past-last poll day)`; a series
/// that *ends* down is treated as retired at its last up poll (the paper
/// excludes "persistently failed instances" from outage statistics).
fn reconstruct_into(series: &ObservedSeries, scratch: &mut PollScratch) -> bool {
    scratch.intervals.clear();
    if series.polls.is_empty() {
        return false;
    }
    let first = series.polls.first().unwrap().0;
    let last = series.polls.last().unwrap().0;

    // Find the last up poll to decide retirement.
    let last_up = series
        .polls
        .iter()
        .rev()
        .find(|(_, r)| r.is_up())
        .map(|(e, _)| *e);
    let (lifetime_end, retired) = match last_up {
        // never seen up: degenerate; treat as retired immediately
        None => (first, Some(first.day())),
        Some(up) if up < last => (up, Some(Day(up.day().0 + 1))),
        Some(_) => (last, None),
    };
    scratch.created = first.day();
    scratch.retired = retired;

    let mut down_since: Option<Epoch> = None;
    for &(epoch, ref result) in &series.polls {
        if epoch > lifetime_end {
            break;
        }
        if result.is_up() {
            if let Some(start) = down_since.take() {
                scratch.intervals.push((start, epoch));
            }
        } else if down_since.is_none() {
            down_since = Some(epoch);
        }
    }
    true
}

/// Rebuild a schedule from a poll series (see [`reconstruct_into`] for the
/// semantics; `None` for an empty series).
pub fn schedule_from_polls(series: &ObservedSeries) -> Option<AvailabilitySchedule> {
    let mut scratch = PollScratch::default();
    if !reconstruct_into(series, &mut scratch) {
        return None;
    }
    let mut sched = AvailabilitySchedule::new(scratch.created, scratch.retired);
    for &(start, end) in &scratch.intervals {
        sched.add_outage(start, end, OutageCause::Organic);
    }
    Some(sched)
}

/// Batch reconstruction: one schedule per input series, in input order.
/// Empty series become zero-lifetime schedules (created and retired on day
/// 0) so the output stays aligned with the instance list — they contribute
/// nothing to any §4 statistic.
pub fn schedules_from_polls(series: &[ObservedSeries]) -> Vec<AvailabilitySchedule> {
    series
        .iter()
        .map(|s| {
            schedule_from_polls(s)
                .unwrap_or_else(|| AvailabilitySchedule::new(Day(0), Some(Day(0))))
        })
        .collect()
}

/// Stream a batch of poll series straight into a columnar [`OutageArena`]:
/// one reusable [`PollScratch`] feeds the arena builder, so reconstruction
/// of an entire observatory allocates nothing per instance beyond the
/// arena's own columns. The result equals
/// `OutageArena::from_schedules(&schedules_from_polls(series))`.
pub fn arena_from_polls(series: &[ObservedSeries]) -> OutageArena {
    let mut scratch = PollScratch::default();
    let mut b = OutageArena::builder(series.len(), 0);
    for s in series {
        if reconstruct_into(s, &mut scratch) {
            let (birth, death) = scratch.lifetime();
            b.push_instance(birth, death);
            for &(start, end) in &scratch.intervals {
                // clip to the lifetime exactly as `add_outage` would (a
                // trailing-down run never reaches here, but an interval can
                // butt against a mid-window retirement boundary)
                let lo = start.0.max(birth.0);
                let hi = end.0.min(death.0);
                if lo < hi {
                    b.push_outage(Epoch(lo), Epoch(hi), OutageCause::Organic);
                }
            }
        } else {
            b.push_instance(Epoch(0), Epoch(0));
        }
    }
    b.finish()
}

/// Observed downtime fraction over the polled portion of the lifetime.
pub fn observed_downtime(series: &ObservedSeries) -> Option<f64> {
    series.downtime_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::datasets::{InstanceApiInfo, PollResult};
    use fediscope_model::ids::InstanceId;

    fn up() -> PollResult {
        PollResult::Up(InstanceApiInfo {
            name: "x".into(),
            version: "v".into(),
            toots: 0,
            users: 0,
            subscriptions: 0,
            logins: 0,
            registration_open: true,
        })
    }

    fn series(polls: Vec<(u32, bool)>) -> ObservedSeries {
        ObservedSeries {
            instance: InstanceId(0),
            polls: polls
                .into_iter()
                .map(|(e, is_up)| (Epoch(e), if is_up { up() } else { PollResult::Down }))
                .collect(),
        }
    }

    #[test]
    fn empty_series_is_none() {
        assert!(schedule_from_polls(&ObservedSeries::default()).is_none());
    }

    #[test]
    fn all_up_has_no_outages() {
        let s = series(vec![(0, true), (1, true), (2, true)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0);
        assert!(sched.retired.is_none());
    }

    #[test]
    fn down_run_becomes_outage() {
        let s = series(vec![(0, true), (1, false), (2, false), (3, true)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 1);
        let o = sched.outages()[0];
        assert_eq!((o.start, o.end), (Epoch(1), Epoch(3)));
    }

    #[test]
    fn trailing_down_is_retirement_not_outage() {
        let s = series(vec![(0, true), (300, true), (600, false), (900, false)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0, "persistent failure ≠ outage");
        assert!(sched.retired.is_some());
    }

    #[test]
    fn never_up_is_degenerate() {
        let s = series(vec![(0, false), (1, false)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0);
        assert_eq!(sched.lifetime_epochs(), 0);
    }

    #[test]
    fn multiple_outages_preserved() {
        let s = series(vec![
            (0, true),
            (10, false),
            (20, true),
            (30, false),
            (40, false),
            (50, true),
        ]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 2);
        assert_eq!(sched.outages()[0].start, Epoch(10));
        assert_eq!(sched.outages()[1].start, Epoch(30));
        assert_eq!(sched.outages()[1].end, Epoch(50));
    }

    #[test]
    fn batch_matches_single_and_feeds_arena() {
        use fediscope_model::schedule::OutageArena;
        let batch = vec![
            series(vec![(0, true), (10, false), (20, true)]),
            ObservedSeries::default(), // never polled
            series(vec![(0, false), (5, false)]), // never up
            series(vec![(300, true), (600, false), (900, false)]), // retires
        ];
        let schedules = schedules_from_polls(&batch);
        assert_eq!(schedules.len(), batch.len());
        for (s, sched) in batch.iter().zip(&schedules) {
            match schedule_from_polls(s) {
                Some(expect) => assert_eq!(*sched, expect),
                None => assert_eq!(sched.lifetime_epochs(), 0),
            }
        }
        // the streaming arena equals the schedule-built arena exactly
        assert_eq!(
            arena_from_polls(&batch),
            OutageArena::from_schedules(&schedules)
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use fediscope_model::datasets::{InstanceApiInfo, PollResult};
    use fediscope_model::ids::InstanceId;
    use fediscope_model::schedule::{OutageArena, OutageCause};
    use fediscope_model::time::EPOCHS_PER_DAY;
    use proptest::prelude::*;

    fn up() -> PollResult {
        PollResult::Up(InstanceApiInfo {
            name: String::new(),
            version: String::new(),
            toots: 0,
            users: 0,
            subscriptions: 0,
            logins: 0,
            registration_open: true,
        })
    }

    /// Poll a ground-truth schedule at every 5-minute epoch from its
    /// creation day through `horizon_day` (retired instances keep getting
    /// polled and answer Down, like the real monitor's seed list).
    fn polls_of(s: &AvailabilitySchedule, horizon_day: u32) -> ObservedSeries {
        let from = s.birth_epoch().0;
        let to = horizon_day * EPOCHS_PER_DAY;
        ObservedSeries {
            instance: InstanceId(0),
            polls: (from..to)
                .map(|e| {
                    let r = if s.is_up(Epoch(e)) { up() } else { PollResult::Down };
                    (Epoch(e), r)
                })
                .collect(),
        }
    }

    proptest! {
        /// schedule → synthetic 5-minute polls → reconstruction preserves
        /// the outage intervals and the retirement day, for any schedule
        /// whose outages do not touch its end of life (a trailing outage is
        /// *deliberately* folded into retirement by the monitor, per the
        /// paper's "persistently failed instances" rule).
        #[test]
        fn poll_round_trip(
            created in 0u32..8,
            retired in 0u32..40,
            ivs in proptest::collection::vec(
                (0u32..20 * EPOCHS_PER_DAY, 1u32..2 * EPOCHS_PER_DAY), 0..8),
        ) {
            let retired = (10..24).contains(&retired).then(|| Day(created.max(retired)));
            let mut truth = AvailabilitySchedule::new(Day(created), retired);
            let death = truth.death_epoch().0.min(25 * EPOCHS_PER_DAY);
            for &(start, len) in &ivs {
                // keep a ≥1-epoch up run before end of life so the trailing
                // run cannot be mistaken for retirement
                let end = (start + len).min(death.saturating_sub(1));
                truth.add_outage(Epoch(start), Epoch(end), OutageCause::Organic);
            }
            let series = polls_of(&truth, 25);
            let got = schedule_from_polls(&series).unwrap();
            prop_assert_eq!(got.created, truth.created);
            prop_assert_eq!(got.retired, truth.retired);
            prop_assert_eq!(got.outage_count(), truth.outage_count());
            for (a, b) in got.outages().iter().zip(truth.outages()) {
                prop_assert_eq!((a.start, a.end), (b.start, b.end));
            }
            // and the streaming arena path agrees with the schedule path
            let batch = [series];
            let arena = arena_from_polls(&batch);
            prop_assert_eq!(arena, OutageArena::from_schedules(&[got]));
        }
    }
}
