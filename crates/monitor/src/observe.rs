//! Reconstructing availability schedules from raw poll series.
//!
//! The monitor only sees poll outcomes at 5-minute ticks; this module turns
//! a tick series back into outage intervals so the downstream analytics are
//! agnostic about whether they run on ground truth or on measurements. All
//! reconstructed outages carry [`OutageCause::Organic`] — a measurement
//! cannot observe causes (attribution is a separate, inference step in
//! [`crate::certs`] and [`crate::asn`]).

use fediscope_model::datasets::ObservedSeries;
use fediscope_model::schedule::{AvailabilitySchedule, OutageCause};
use fediscope_model::time::{Day, Epoch};

/// Rebuild a schedule from a poll series.
///
/// Semantics: a run of consecutive `Down` polls becomes one outage spanning
/// from the first down poll to the next up poll (exclusive). The instance's
/// lifetime is taken as `[first poll day, one-past-last poll day)`; a series
/// that *ends* down is treated as retired at its last up poll (the paper
/// excludes "persistently failed instances" from outage statistics).
pub fn schedule_from_polls(series: &ObservedSeries) -> Option<AvailabilitySchedule> {
    if series.polls.is_empty() {
        return None;
    }
    let first = series.polls.first().unwrap().0;
    let last = series.polls.last().unwrap().0;

    // Find the last up poll to decide retirement.
    let last_up = series
        .polls
        .iter()
        .rev()
        .find(|(_, r)| r.is_up())
        .map(|(e, _)| *e);
    let (lifetime_end, retired) = match last_up {
        // never seen up: degenerate; treat as retired immediately
        None => (first, Some(first.day())),
        Some(up) if up < last => (up, Some(Day(up.day().0 + 1))),
        Some(_) => (last, None),
    };

    let mut sched = AvailabilitySchedule::new(first.day(), retired);
    let mut down_since: Option<Epoch> = None;
    for &(epoch, ref result) in &series.polls {
        if epoch > lifetime_end {
            break;
        }
        if result.is_up() {
            if let Some(start) = down_since.take() {
                sched.add_outage(start, epoch, OutageCause::Organic);
            }
        } else if down_since.is_none() {
            down_since = Some(epoch);
        }
    }
    Some(sched)
}

/// Observed downtime fraction over the polled portion of the lifetime.
pub fn observed_downtime(series: &ObservedSeries) -> Option<f64> {
    series.downtime_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::datasets::{InstanceApiInfo, PollResult};
    use fediscope_model::ids::InstanceId;

    fn up() -> PollResult {
        PollResult::Up(InstanceApiInfo {
            name: "x".into(),
            version: "v".into(),
            toots: 0,
            users: 0,
            subscriptions: 0,
            logins: 0,
            registration_open: true,
        })
    }

    fn series(polls: Vec<(u32, bool)>) -> ObservedSeries {
        ObservedSeries {
            instance: InstanceId(0),
            polls: polls
                .into_iter()
                .map(|(e, is_up)| (Epoch(e), if is_up { up() } else { PollResult::Down }))
                .collect(),
        }
    }

    #[test]
    fn empty_series_is_none() {
        assert!(schedule_from_polls(&ObservedSeries::default()).is_none());
    }

    #[test]
    fn all_up_has_no_outages() {
        let s = series(vec![(0, true), (1, true), (2, true)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0);
        assert!(sched.retired.is_none());
    }

    #[test]
    fn down_run_becomes_outage() {
        let s = series(vec![(0, true), (1, false), (2, false), (3, true)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 1);
        let o = sched.outages()[0];
        assert_eq!((o.start, o.end), (Epoch(1), Epoch(3)));
    }

    #[test]
    fn trailing_down_is_retirement_not_outage() {
        let s = series(vec![(0, true), (300, true), (600, false), (900, false)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0, "persistent failure ≠ outage");
        assert!(sched.retired.is_some());
    }

    #[test]
    fn never_up_is_degenerate() {
        let s = series(vec![(0, false), (1, false)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0);
        assert_eq!(sched.lifetime_epochs(), 0);
    }

    #[test]
    fn multiple_outages_preserved() {
        let s = series(vec![
            (0, true),
            (10, false),
            (20, true),
            (30, false),
            (40, false),
            (50, true),
        ]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 2);
        assert_eq!(sched.outages()[0].start, Epoch(10));
        assert_eq!(sched.outages()[1].start, Epoch(30));
        assert_eq!(sched.outages()[1].end, Epoch(50));
    }
}
