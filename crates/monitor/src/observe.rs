//! Reconstructing availability schedules from raw poll series.
//!
//! The monitor only sees poll outcomes at 5-minute ticks; this module turns
//! a tick series back into outage intervals so the downstream analytics are
//! agnostic about whether they run on ground truth or on measurements. All
//! reconstructed outages carry [`OutageCause::Organic`] — a measurement
//! cannot observe causes (attribution is a separate, inference step in
//! [`crate::certs`] and [`crate::asn`]).
//!
//! Reconstruction is **gap-tolerant**: `Unknown` polls (the measurement
//! itself failed — reset connections, exhausted retries) are skipped as if
//! the poll never happened, and [`CrawlCoverage`] reports how much of the
//! feed was lost so downstream figures can be bounded honestly instead of
//! silently absorbing measurement failures as fake outages.

use fediscope_model::datasets::ObservedSeries;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena, OutageCause};
use fediscope_model::time::{Day, Epoch};

/// Reusable scratch for batch reconstruction: holds one instance's
/// reconstructed lifetime and outage intervals so the arena path never
/// allocates per instance.
#[derive(Debug, Default)]
pub struct PollScratch {
    /// Reconstructed outage intervals, sorted and strictly separated.
    intervals: Vec<(Epoch, Epoch)>,
    /// Reconstructed creation day.
    created: Day,
    /// Reconstructed retirement day, if the series implies one.
    retired: Option<Day>,
}

impl PollScratch {
    /// Reconstructed lifetime as `[birth, death)` epochs (the same mapping
    /// [`AvailabilitySchedule`] applies to its `created`/`retired` days).
    fn lifetime(&self) -> (Epoch, Epoch) {
        let birth = self.created.start_epoch();
        let death = self
            .retired
            .map(|d| d.start_epoch())
            .unwrap_or(Epoch(fediscope_model::time::WINDOW_EPOCHS));
        (birth, death)
    }
}

/// The shared reconstruction core: decode one poll series into `scratch`.
/// Returns `false` (scratch untouched beyond clearing) for a series with no
/// *known* polls — all-`Unknown` series observed nothing.
///
/// Semantics: a run of consecutive `Down` polls becomes one outage spanning
/// from the first down poll to the next up poll (exclusive). The instance's
/// lifetime is taken as `[first poll day, one-past-last poll day)`; a series
/// that *ends* down is treated as retired at its last up poll (the paper
/// excludes "persistently failed instances" from outage statistics).
/// `Unknown` polls are skipped everywhere — they behave exactly as if the
/// monitor had never polled at that tick.
fn reconstruct_into(series: &ObservedSeries, scratch: &mut PollScratch) -> bool {
    scratch.intervals.clear();

    // One pass over the known polls for the series geometry.
    let mut first = None;
    let mut last = Epoch(0);
    let mut last_up = None;
    for &(epoch, ref result) in &series.polls {
        if !result.is_known() {
            continue;
        }
        first.get_or_insert(epoch);
        last = epoch;
        if result.is_up() {
            last_up = Some(epoch);
        }
    }
    let Some(first) = first else {
        return false;
    };

    let (lifetime_end, retired) = match last_up {
        // never seen up: degenerate; treat as retired immediately
        None => (first, Some(first.day())),
        Some(up) if up < last => (up, Some(Day(up.day().0 + 1))),
        Some(_) => (last, None),
    };
    scratch.created = first.day();
    scratch.retired = retired;

    let mut down_since: Option<Epoch> = None;
    for &(epoch, ref result) in &series.polls {
        if !result.is_known() {
            continue;
        }
        if epoch > lifetime_end {
            break;
        }
        if result.is_up() {
            if let Some(start) = down_since.take() {
                scratch.intervals.push((start, epoch));
            }
        } else if down_since.is_none() {
            down_since = Some(epoch);
        }
    }
    true
}

/// Rebuild a schedule from a poll series (see [`reconstruct_into`] for the
/// semantics; `None` for an empty series).
pub fn schedule_from_polls(series: &ObservedSeries) -> Option<AvailabilitySchedule> {
    let mut scratch = PollScratch::default();
    if !reconstruct_into(series, &mut scratch) {
        return None;
    }
    let mut sched = AvailabilitySchedule::new(scratch.created, scratch.retired);
    for &(start, end) in &scratch.intervals {
        sched.add_outage(start, end, OutageCause::Organic);
    }
    Some(sched)
}

/// Batch reconstruction: one schedule per input series, in input order.
/// Empty series become zero-lifetime schedules (created and retired on day
/// 0) so the output stays aligned with the instance list — they contribute
/// nothing to any §4 statistic.
pub fn schedules_from_polls(series: &[ObservedSeries]) -> Vec<AvailabilitySchedule> {
    series
        .iter()
        .map(|s| {
            schedule_from_polls(s)
                .unwrap_or_else(|| AvailabilitySchedule::new(Day(0), Some(Day(0))))
        })
        .collect()
}

/// Stream a batch of poll series straight into a columnar [`OutageArena`]:
/// one reusable [`PollScratch`] feeds the arena builder, so reconstruction
/// of an entire observatory allocates nothing per instance beyond the
/// arena's own columns. The result equals
/// `OutageArena::from_schedules(&schedules_from_polls(series))`.
pub fn arena_from_polls(series: &[ObservedSeries]) -> OutageArena {
    let mut scratch = PollScratch::default();
    let mut b = OutageArena::builder(series.len(), 0);
    for s in series {
        if reconstruct_into(s, &mut scratch) {
            let (birth, death) = scratch.lifetime();
            b.push_instance(birth, death);
            for &(start, end) in &scratch.intervals {
                // clip to the lifetime exactly as `add_outage` would (a
                // trailing-down run never reaches here, but an interval can
                // butt against a mid-window retirement boundary)
                let lo = start.0.max(birth.0);
                let hi = end.0.min(death.0);
                if lo < hi {
                    b.push_outage(Epoch(lo), Epoch(hi), OutageCause::Organic);
                }
            }
        } else {
            b.push_instance(Epoch(0), Epoch(0));
        }
    }
    b.finish()
}

/// Observed downtime fraction over the polled portion of the lifetime.
pub fn observed_downtime(series: &ObservedSeries) -> Option<f64> {
    series.downtime_fraction()
}

/// How much of a poll feed actually observed its targets — the honesty
/// report that accompanies any reconstruction from a fault-degraded crawl.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CrawlCoverage {
    /// Number of monitored instances (series).
    pub instances: usize,
    /// Polls attempted across all series.
    pub polls: usize,
    /// Polls that observed their instance (`Up` or `Down`).
    pub known: usize,
    /// Polls lost to measurement failure (`Unknown`).
    pub unknown: usize,
    /// Series with at least one poll and zero measurement gaps — their
    /// reconstruction is exactly what a fault-free crawl would produce.
    pub fully_observed: usize,
    /// Series whose *last* poll is a gap: the retirement decision rests on
    /// an earlier poll and may lag the truth.
    pub trailing_unknown: usize,
    /// Per-series gap counts, aligned with the input order.
    pub per_instance_unknown: Vec<usize>,
}

impl CrawlCoverage {
    /// Did every poll observe its instance? When true, the reconstruction
    /// is bit-identical to a fault-free crawl of the same schedule.
    pub fn complete(&self) -> bool {
        self.unknown == 0
    }

    /// Fraction of polls that observed (`1.0` for an empty feed).
    pub fn known_fraction(&self) -> f64 {
        if self.polls == 0 {
            return 1.0;
        }
        self.known as f64 / self.polls as f64
    }
}

/// [`arena_from_polls`] plus the [`CrawlCoverage`] accounting of how much
/// of the feed was actually observed.
pub fn arena_from_polls_with_coverage(series: &[ObservedSeries]) -> (OutageArena, CrawlCoverage) {
    let mut scratch = PollScratch::default();
    let mut b = OutageArena::builder(series.len(), 0);
    let mut cov = CrawlCoverage {
        instances: series.len(),
        per_instance_unknown: Vec::with_capacity(series.len()),
        ..CrawlCoverage::default()
    };
    for s in series {
        let unknown = s.unknown_polls();
        cov.polls += s.polls.len();
        cov.unknown += unknown;
        cov.per_instance_unknown.push(unknown);
        if unknown == 0 && !s.polls.is_empty() {
            cov.fully_observed += 1;
        }
        if s.polls.last().is_some_and(|(_, r)| !r.is_known()) {
            cov.trailing_unknown += 1;
        }
        if reconstruct_into(s, &mut scratch) {
            let (birth, death) = scratch.lifetime();
            b.push_instance(birth, death);
            for &(start, end) in &scratch.intervals {
                let lo = start.0.max(birth.0);
                let hi = end.0.min(death.0);
                if lo < hi {
                    b.push_outage(Epoch(lo), Epoch(hi), OutageCause::Organic);
                }
            }
        } else {
            b.push_instance(Epoch(0), Epoch(0));
        }
    }
    cov.known = cov.polls - cov.unknown;
    (b.finish(), cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::datasets::{InstanceApiInfo, PollResult};
    use fediscope_model::ids::InstanceId;

    fn up() -> PollResult {
        PollResult::Up(InstanceApiInfo {
            name: "x".into(),
            version: "v".into(),
            toots: 0,
            users: 0,
            subscriptions: 0,
            logins: 0,
            registration_open: true,
        })
    }

    fn series(polls: Vec<(u32, bool)>) -> ObservedSeries {
        ObservedSeries {
            instance: InstanceId(0),
            polls: polls
                .into_iter()
                .map(|(e, is_up)| (Epoch(e), if is_up { up() } else { PollResult::Down }))
                .collect(),
        }
    }

    #[test]
    fn empty_series_is_none() {
        assert!(schedule_from_polls(&ObservedSeries::default()).is_none());
    }

    #[test]
    fn all_up_has_no_outages() {
        let s = series(vec![(0, true), (1, true), (2, true)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0);
        assert!(sched.retired.is_none());
    }

    #[test]
    fn down_run_becomes_outage() {
        let s = series(vec![(0, true), (1, false), (2, false), (3, true)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 1);
        let o = sched.outages()[0];
        assert_eq!((o.start, o.end), (Epoch(1), Epoch(3)));
    }

    #[test]
    fn trailing_down_is_retirement_not_outage() {
        let s = series(vec![(0, true), (300, true), (600, false), (900, false)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0, "persistent failure ≠ outage");
        assert!(sched.retired.is_some());
    }

    #[test]
    fn never_up_is_degenerate() {
        let s = series(vec![(0, false), (1, false)]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 0);
        assert_eq!(sched.lifetime_epochs(), 0);
    }

    #[test]
    fn multiple_outages_preserved() {
        let s = series(vec![
            (0, true),
            (10, false),
            (20, true),
            (30, false),
            (40, false),
            (50, true),
        ]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.outage_count(), 2);
        assert_eq!(sched.outages()[0].start, Epoch(10));
        assert_eq!(sched.outages()[1].start, Epoch(30));
        assert_eq!(sched.outages()[1].end, Epoch(50));
    }

    fn series_with_gaps(polls: Vec<(u32, Option<bool>)>) -> ObservedSeries {
        ObservedSeries {
            instance: InstanceId(0),
            polls: polls
                .into_iter()
                .map(|(e, r)| {
                    let r = match r {
                        Some(true) => up(),
                        Some(false) => PollResult::Down,
                        None => PollResult::Unknown,
                    };
                    (Epoch(e), r)
                })
                .collect(),
        }
    }

    #[test]
    fn unknown_polls_are_skipped_like_missing_ticks() {
        // the same observations, with and without interleaved gaps, must
        // reconstruct identically
        let clean = series(vec![(0, true), (10, false), (20, false), (30, true)]);
        let gappy = series_with_gaps(vec![
            (0, Some(true)),
            (5, None),
            (10, Some(false)),
            (15, None),
            (20, Some(false)),
            (25, None),
            (30, Some(true)),
        ]);
        assert_eq!(
            schedule_from_polls(&clean).unwrap(),
            schedule_from_polls(&gappy).unwrap()
        );
    }

    #[test]
    fn leading_and_trailing_unknowns_shrink_the_observed_lifetime() {
        // gaps at the edges: the lifetime starts at the first *known* poll
        let s = series_with_gaps(vec![
            (0, None),
            (300, Some(true)),
            (600, Some(true)),
            (900, None),
        ]);
        let sched = schedule_from_polls(&s).unwrap();
        assert_eq!(sched.created, Epoch(300).day());
        assert!(sched.retired.is_none(), "trailing gap is not retirement");
    }

    #[test]
    fn all_unknown_series_observes_nothing() {
        let s = series_with_gaps(vec![(0, None), (10, None)]);
        assert!(schedule_from_polls(&s).is_none());
    }

    #[test]
    fn coverage_accounting() {
        let batch = vec![
            series(vec![(0, true), (10, false), (20, true)]), // fully observed
            series_with_gaps(vec![(0, Some(true)), (10, None), (20, Some(true))]),
            series_with_gaps(vec![(0, Some(true)), (10, None)]), // trailing gap
            ObservedSeries::default(),                           // never polled
        ];
        let (arena, cov) = arena_from_polls_with_coverage(&batch);
        assert_eq!(cov.instances, 4);
        assert_eq!(cov.polls, 3 + 3 + 2);
        assert_eq!(cov.unknown, 2);
        assert_eq!(cov.known, 6);
        assert_eq!(cov.fully_observed, 1, "only the clean series");
        assert_eq!(cov.trailing_unknown, 1);
        assert_eq!(cov.per_instance_unknown, vec![0, 1, 1, 0]);
        assert!(!cov.complete());
        assert!((cov.known_fraction() - 6.0 / 8.0).abs() < 1e-12);
        // the arena equals the plain path
        assert_eq!(arena, arena_from_polls(&batch));
        // a gap-free feed reports complete coverage
        let clean = vec![series(vec![(0, true), (10, true)])];
        let (_, cov) = arena_from_polls_with_coverage(&clean);
        assert!(cov.complete());
        assert_eq!(cov.known_fraction(), 1.0);
        assert_eq!(cov.fully_observed, 1);
    }

    #[test]
    fn batch_matches_single_and_feeds_arena() {
        use fediscope_model::schedule::OutageArena;
        let batch = vec![
            series(vec![(0, true), (10, false), (20, true)]),
            ObservedSeries::default(), // never polled
            series(vec![(0, false), (5, false)]), // never up
            series(vec![(300, true), (600, false), (900, false)]), // retires
        ];
        let schedules = schedules_from_polls(&batch);
        assert_eq!(schedules.len(), batch.len());
        for (s, sched) in batch.iter().zip(&schedules) {
            match schedule_from_polls(s) {
                Some(expect) => assert_eq!(*sched, expect),
                None => assert_eq!(sched.lifetime_epochs(), 0),
            }
        }
        // the streaming arena equals the schedule-built arena exactly
        assert_eq!(
            arena_from_polls(&batch),
            OutageArena::from_schedules(&schedules)
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use fediscope_model::datasets::{InstanceApiInfo, PollResult};
    use fediscope_model::ids::InstanceId;
    use fediscope_model::schedule::{OutageArena, OutageCause};
    use fediscope_model::time::EPOCHS_PER_DAY;
    use proptest::prelude::*;

    fn up() -> PollResult {
        PollResult::Up(InstanceApiInfo {
            name: String::new(),
            version: String::new(),
            toots: 0,
            users: 0,
            subscriptions: 0,
            logins: 0,
            registration_open: true,
        })
    }

    /// Poll a ground-truth schedule at every 5-minute epoch from its
    /// creation day through `horizon_day` (retired instances keep getting
    /// polled and answer Down, like the real monitor's seed list).
    fn polls_of(s: &AvailabilitySchedule, horizon_day: u32) -> ObservedSeries {
        let from = s.birth_epoch().0;
        let to = horizon_day * EPOCHS_PER_DAY;
        ObservedSeries {
            instance: InstanceId(0),
            polls: (from..to)
                .map(|e| {
                    let r = if s.is_up(Epoch(e)) { up() } else { PollResult::Down };
                    (Epoch(e), r)
                })
                .collect(),
        }
    }

    proptest! {
        /// schedule → synthetic 5-minute polls → reconstruction preserves
        /// the outage intervals and the retirement day, for any schedule
        /// whose outages do not touch its end of life (a trailing outage is
        /// *deliberately* folded into retirement by the monitor, per the
        /// paper's "persistently failed instances" rule).
        #[test]
        fn poll_round_trip(
            created in 0u32..8,
            retired in 0u32..40,
            ivs in proptest::collection::vec(
                (0u32..20 * EPOCHS_PER_DAY, 1u32..2 * EPOCHS_PER_DAY), 0..8),
        ) {
            let retired = (10..24).contains(&retired).then(|| Day(created.max(retired)));
            let mut truth = AvailabilitySchedule::new(Day(created), retired);
            let death = truth.death_epoch().0.min(25 * EPOCHS_PER_DAY);
            for &(start, len) in &ivs {
                // keep a ≥1-epoch up run before end of life so the trailing
                // run cannot be mistaken for retirement
                let end = (start + len).min(death.saturating_sub(1));
                truth.add_outage(Epoch(start), Epoch(end), OutageCause::Organic);
            }
            let series = polls_of(&truth, 25);
            let got = schedule_from_polls(&series).unwrap();
            prop_assert_eq!(got.created, truth.created);
            prop_assert_eq!(got.retired, truth.retired);
            prop_assert_eq!(got.outage_count(), truth.outage_count());
            for (a, b) in got.outages().iter().zip(truth.outages()) {
                prop_assert_eq!((a.start, a.end), (b.start, b.end));
            }
            // and the streaming arena path agrees with the schedule path
            let batch = [series];
            let arena = arena_from_polls(&batch);
            prop_assert_eq!(arena, OutageArena::from_schedules(&[got]));
        }
    }
}
