//! Per-day downtime by instance size (Fig. 8).
//!
//! The figure pools instance-day downtime percentages into four toot-count
//! bins (`<10K`, `10K–100K`, `100K–1M`, `>1M`) and draws box plots, next to
//! Twitter's 2007 per-day downtime. The paper's punchline: the correlation
//! between size and downtime is ≈ −0.04 — "instance popularity is not a
//! good predictor of availability".

use fediscope_model::instance::Instance;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena};
use fediscope_model::time::{Day, EPOCHS_PER_DAY, WINDOW_DAYS};
use fediscope_stats::{pearson, BoxStats};

/// The four Fig. 8 size bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeBin {
    /// Fewer than 10K toots.
    Small,
    /// 10K–100K toots.
    Medium,
    /// 100K–1M toots.
    Large,
    /// More than 1M toots.
    Huge,
}

impl SizeBin {
    /// All bins in figure order.
    pub const ALL: [SizeBin; 4] = [SizeBin::Small, SizeBin::Medium, SizeBin::Large, SizeBin::Huge];

    /// Classify a toot count.
    pub fn of(toots: u64) -> SizeBin {
        match toots {
            0..=9_999 => SizeBin::Small,
            10_000..=99_999 => SizeBin::Medium,
            100_000..=999_999 => SizeBin::Large,
            _ => SizeBin::Huge,
        }
    }

    /// Position in [`SizeBin::ALL`] (figure order) — a direct index, so
    /// hot loops need no linear scan over the bin list.
    pub fn index(self) -> usize {
        match self {
            SizeBin::Small => 0,
            SizeBin::Medium => 1,
            SizeBin::Large => 2,
            SizeBin::Huge => 3,
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            SizeBin::Small => "<10K",
            SizeBin::Medium => "10K - 100K",
            SizeBin::Large => "100K - 1M",
            SizeBin::Huge => ">1M",
        }
    }
}

/// Pooled per-day downtime samples per bin, plus overall.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyDowntime {
    /// `(bin, samples)` in figure order; samples are instance-day downtime
    /// fractions.
    pub per_bin: Vec<(SizeBin, Vec<f64>)>,
    /// All Mastodon samples pooled.
    pub overall: Vec<f64>,
}

impl DailyDowntime {
    /// Box stats per bin (None for empty bins).
    pub fn box_stats(&self) -> Vec<(SizeBin, Option<BoxStats>)> {
        self.per_bin
            .iter()
            .map(|(bin, samples)| (*bin, BoxStats::of(samples)))
            .collect()
    }

    /// Mean of the pooled samples.
    pub fn mean(&self) -> f64 {
        if self.overall.is_empty() {
            return 0.0;
        }
        self.overall.iter().sum::<f64>() / self.overall.len() as f64
    }
}

/// Walk one instance's existing days with an outage cursor, emitting the
/// per-day downtime fraction for each day the instance exists.
///
/// This is the shared `O(days + outages)` kernel behind [`daily_downtime`],
/// [`daily_downtime_arena`], and `sweep::MonitorSweep` — outage bounds come
/// through the `bound` accessor so the walk is agnostic about whether the
/// intervals live in an [`AvailabilitySchedule`]'s `Vec<Outage>` or in the
/// [`OutageArena`]'s flat columns. Every emitted fraction is computed with
/// the exact expression `AvailabilitySchedule::daily_downtime` uses, so
/// all callers produce bit-identical samples.
pub(crate) fn daily_walk(
    birth: u32,
    death: u32,
    n_outages: usize,
    bound: impl Fn(usize) -> (u32, u32),
    day_stride: u32,
    mut emit: impl FnMut(f64),
) {
    let mut cursor = 0usize; // first outage that can still affect a day
    let mut d = 0;
    while d < WINDOW_DAYS {
        let day = Day(d);
        let lo = day.start_epoch().0.max(birth);
        let hi = day.end_epoch().0.min(death);
        if lo < hi {
            // outages ending at or before this day's start are behind
            // every remaining day (days advance monotonically)
            while cursor < n_outages && bound(cursor).1 <= lo {
                cursor += 1;
            }
            let mut down = 0u32;
            let mut k = cursor;
            while k < n_outages {
                let (start, end) = bound(k);
                if start >= hi {
                    break;
                }
                down += end.min(hi) - start.max(lo);
                k += 1;
            }
            emit(down as f64 / (hi - lo) as f64);
        }
        d += day_stride;
    }
}

/// Run-length daily downtime fold: like [`daily_walk`] but day-runs with a
/// *uniform* fraction (0.0 between outages, 1.0 inside a multi-day outage)
/// come out as one `emit_run(frac, sampled_day_count)` call instead of one
/// call per day, so the cost is `O(outage-boundary days + runs)` rather
/// than `O(days)` per instance. Only days where an outage starts or ends
/// (or a lifetime boundary cuts the day) compute a division — with the
/// **identical** accumulation order and expression as the per-day walk, so
/// emitted samples are bit-identical to [`daily_walk`]'s:
///
/// - gap days have `down == 0`, and the walk's `0 / live` is exactly `0.0`;
/// - interior days of a multi-day outage have `down == live`, and
///   `live / live` is exactly `1.0`;
/// - boundary days sum the same clipped integer contributions in the same
///   outage order before the one division.
pub(crate) fn daily_runs(
    birth: u32,
    death: u32,
    n_outages: usize,
    bound: impl Fn(usize) -> (u32, u32),
    stride: u32,
    mut emit_run: impl FnMut(f64, usize),
) {
    if birth >= death {
        return;
    }
    let e = EPOCHS_PER_DAY;
    let first_day = birth / e;
    let last_day = (death - 1) / e; // inclusive
    // sampled days (d % stride == 0) in [a, b)
    let samples_in = |a: u32, b: u32| -> usize {
        if a >= b {
            0
        } else {
            (b.div_ceil(stride) - a.div_ceil(stride)) as usize
        }
    };
    let mut d = first_day;
    let mut pending = 0u32; // down epochs accumulated for day `d`
    macro_rules! flush {
        () => {
            if d % stride == 0 {
                let lo = (d * e).max(birth);
                let hi = ((d + 1) * e).min(death);
                emit_run(pending as f64 / (hi - lo) as f64, 1);
            }
        };
    }
    for k in 0..n_outages {
        let (start, end) = bound(k);
        let s_day = start / e;
        let e_day = (end - 1) / e;
        if s_day > d {
            flush!();
            pending = 0;
            emit_run(0.0, samples_in(d + 1, s_day));
            d = s_day;
        }
        if e_day == d {
            pending += end - start;
        } else {
            // head fragment closes out day d …
            pending += (d + 1) * e - start;
            flush!();
            // … interior days are fully dark …
            emit_run(1.0, samples_in(d + 1, e_day));
            // … tail fragment opens day e_day
            d = e_day;
            pending = end - e_day * e;
        }
    }
    flush!();
    if d < last_day {
        emit_run(0.0, samples_in(d + 1, last_day + 1));
    }
}

/// Collect instance-day downtime samples. `day_stride` subsamples days
/// (1 = every day; kept for compatibility — the interval walk below is
/// cheap enough that Fig. 8 no longer needs subsampling at full scale).
///
/// Per instance this walks the sorted outage list with a cursor instead of
/// re-scanning it for every day (`AvailabilitySchedule::daily_downtime`
/// starts from the first outage each call): `O(days + outages)` per
/// instance rather than `O(days · outages)`.
pub fn daily_downtime(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
    day_stride: u32,
) -> DailyDowntime {
    assert!(day_stride >= 1);
    let mut bins: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut overall = Vec::new();
    for (inst, sched) in instances.iter().zip(schedules) {
        let samples = &mut bins[SizeBin::of(inst.toot_count).index()];
        let outages = sched.outages();
        daily_walk(
            sched.birth_epoch().0,
            sched.death_epoch().0,
            outages.len(),
            |k| (outages[k].start.0, outages[k].end.0),
            day_stride,
            |frac| {
                samples.push(frac);
                overall.push(frac);
            },
        );
    }
    let mut bins = bins.into_iter();
    let per_bin = SizeBin::ALL
        .iter()
        .map(|&b| (b, bins.next().unwrap()))
        .collect();
    DailyDowntime { per_bin, overall }
}

/// [`daily_downtime`] over the columnar [`OutageArena`]: identical samples
/// via the run-length fold ([`daily_runs`]), read from flat interval
/// columns instead of per-instance `Vec`s.
pub fn daily_downtime_arena(
    instances: &[Instance],
    arena: &OutageArena,
    day_stride: u32,
) -> DailyDowntime {
    assert!(day_stride >= 1);
    let mut bins: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut overall = Vec::new();
    for (inst, v) in instances.iter().zip(arena.views()) {
        let samples = &mut bins[SizeBin::of(inst.toot_count).index()];
        daily_runs(
            v.birth.0,
            v.death.0,
            v.outage_count(),
            |k| (v.starts[k].0, v.ends[k].0),
            day_stride,
            |frac, count| {
                samples.resize(samples.len() + count, frac);
                overall.resize(overall.len() + count, frac);
            },
        );
    }
    let mut bins = bins.into_iter();
    let per_bin = SizeBin::ALL
        .iter()
        .map(|&b| (b, bins.next().unwrap()))
        .collect();
    DailyDowntime { per_bin, overall }
}

/// The size-vs-downtime correlation across instances (paper: ≈ −0.04).
pub fn size_downtime_correlation(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
) -> Option<f64> {
    let mut toots = Vec::new();
    let mut down = Vec::new();
    for (inst, sched) in instances.iter().zip(schedules) {
        if sched.lifetime_epochs() == 0 {
            continue;
        }
        toots.push(inst.toot_count as f64);
        down.push(sched.downtime_fraction());
    }
    pearson(&toots, &down)
}

/// [`size_downtime_correlation`] over the columnar [`OutageArena`].
pub fn size_downtime_correlation_arena(
    instances: &[Instance],
    arena: &OutageArena,
) -> Option<f64> {
    let mut toots = Vec::new();
    let mut down = Vec::new();
    for (inst, v) in instances.iter().zip(arena.views()) {
        if v.lifetime_epochs() == 0 {
            continue;
        }
        toots.push(inst.toot_count as f64);
        down.push(v.downtime_fraction());
    }
    pearson(&toots, &down)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::Epoch;

    #[test]
    fn bin_classification() {
        assert_eq!(SizeBin::of(0), SizeBin::Small);
        assert_eq!(SizeBin::of(9_999), SizeBin::Small);
        assert_eq!(SizeBin::of(10_000), SizeBin::Medium);
        assert_eq!(SizeBin::of(500_000), SizeBin::Large);
        assert_eq!(SizeBin::of(2_000_000), SizeBin::Huge);
        assert_eq!(SizeBin::ALL.len(), 4);
    }

    fn mk_inst(i: u32, toots: u64) -> Instance {
        use fediscope_model::certs::{Certificate, CertificateAuthority};
        use fediscope_model::geo::Country;
        use fediscope_model::ids::{AsId, InstanceId};
        use fediscope_model::instance::{OperatorKind, Registration, Software};
        use fediscope_model::taxonomy::{CategorySet, PolicySet};
        use fediscope_model::time::Day;
        Instance {
            id: InstanceId(i),
            domain: format!("i{i}"),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: false,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(1),
            provider_index: 0,
            ip: i,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: 1,
            toot_count: toots,
            boosted_toots: 0,
            active_user_pct: 50.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        }
    }

    #[test]
    fn samples_land_in_right_bins() {
        let instances = vec![mk_inst(0, 100), mk_inst(1, 50_000)];
        let mut bad = AvailabilitySchedule::always_up();
        bad.add_outage(Epoch(0), Day(1).start_epoch(), OutageCause::Organic);
        let schedules = vec![bad, AvailabilitySchedule::always_up()];
        let dd = daily_downtime(&instances, &schedules, 1);
        let small = &dd.per_bin.iter().find(|(b, _)| *b == SizeBin::Small).unwrap().1;
        let medium = &dd.per_bin.iter().find(|(b, _)| *b == SizeBin::Medium).unwrap().1;
        assert_eq!(small.len(), WINDOW_DAYS as usize);
        assert_eq!(medium.len(), WINDOW_DAYS as usize);
        // the small instance was down on day 0
        assert_eq!(small[0], 1.0);
        assert_eq!(small[1], 0.0);
        assert!(medium.iter().all(|&x| x == 0.0));
        assert_eq!(dd.overall.len(), 2 * WINDOW_DAYS as usize);
    }

    #[test]
    fn stride_subsamples() {
        let instances = vec![mk_inst(0, 100)];
        let schedules = vec![AvailabilitySchedule::always_up()];
        let dd = daily_downtime(&instances, &schedules, 7);
        assert_eq!(dd.overall.len(), WINDOW_DAYS.div_ceil(7) as usize);
    }

    #[test]
    fn interval_walk_matches_per_day_queries() {
        // The cursor walk must reproduce the per-day query path exactly,
        // across partial lifetimes, sub-day and multi-day outages.
        let instances = vec![
            mk_inst(0, 100),
            mk_inst(1, 50_000),
            mk_inst(2, 500_000),
            mk_inst(3, 2_000_000),
        ];
        let mut s0 = AvailabilitySchedule::new(Day(3), Some(Day(200)));
        s0.add_outage(Epoch(Day(5).start_epoch().0 + 7), Epoch(Day(5).start_epoch().0 + 19), OutageCause::Organic);
        s0.add_outage(Day(40).start_epoch(), Day(43).start_epoch(), OutageCause::AsFailure);
        let mut s1 = AvailabilitySchedule::always_up();
        for k in 0..30u32 {
            let start = k * 4000 + 13;
            s1.add_outage(Epoch(start), Epoch(start + 301), OutageCause::Organic);
        }
        let mut s2 = AvailabilitySchedule::new(Day(100), None);
        s2.add_outage(Epoch(0), Epoch(u32::MAX / 2), OutageCause::CertExpiry);
        let s3 = AvailabilitySchedule::always_up();
        let schedules = vec![s0, s1, s2, s3];

        for stride in [1u32, 7, 30] {
            let dd = daily_downtime(&instances, &schedules, stride);
            // reference: the old per-day formulation
            let mut expect_overall = Vec::new();
            let mut expect_bins: Vec<Vec<f64>> = vec![Vec::new(); 4];
            for (inst, sched) in instances.iter().zip(&schedules) {
                let bin = SizeBin::of(inst.toot_count).index();
                let mut d = 0;
                while d < WINDOW_DAYS {
                    if let Some(frac) = sched.daily_downtime(Day(d)) {
                        expect_bins[bin].push(frac);
                        expect_overall.push(frac);
                    }
                    d += stride;
                }
            }
            assert_eq!(dd.overall, expect_overall, "stride {stride}");
            for (i, (bin, samples)) in dd.per_bin.iter().enumerate() {
                assert_eq!(*bin, SizeBin::ALL[i]);
                assert_eq!(samples, &expect_bins[i], "stride {stride} bin {i}");
            }
        }
    }

    #[test]
    fn arena_run_fold_matches_per_day_walk() {
        use fediscope_model::schedule::OutageArena;
        // mixed lifetimes, sub-day blips, multi-day and month-long outages,
        // outage chains sharing boundary days — across several strides the
        // run-length arena fold must equal the per-day schedule walk
        // bit-for-bit.
        let instances = vec![
            mk_inst(0, 100),
            mk_inst(1, 50_000),
            mk_inst(2, 500_000),
            mk_inst(3, 2_000_000),
        ];
        let mut s0 = AvailabilitySchedule::new(Day(3), Some(Day(200)));
        s0.add_outage(
            Epoch(Day(5).start_epoch().0 + 7),
            Epoch(Day(5).start_epoch().0 + 19),
            OutageCause::Organic,
        );
        s0.add_outage(Day(40).start_epoch(), Day(43).start_epoch(), OutageCause::AsFailure);
        s0.add_outage(
            Epoch(Day(43).start_epoch().0 + 10),
            Epoch(Day(43).start_epoch().0 + 20),
            OutageCause::Organic,
        );
        let mut s1 = AvailabilitySchedule::always_up();
        for k in 0..40u32 {
            let start = k * 3000 + 13;
            s1.add_outage(Epoch(start), Epoch(start + 290), OutageCause::Organic);
        }
        let mut s2 = AvailabilitySchedule::new(Day(100), None);
        s2.add_outage(Epoch(0), Epoch(u32::MAX / 2), OutageCause::CertExpiry);
        let mut s3 = AvailabilitySchedule::always_up();
        s3.add_outage(
            Epoch(Day(9).start_epoch().0 + 100),
            Epoch(Day(47).start_epoch().0 + 3),
            OutageCause::Organic,
        );
        let schedules = vec![s0, s1, s2, s3];
        let arena = OutageArena::from_schedules(&schedules);
        for stride in [1u32, 7, 30] {
            let naive = daily_downtime(&instances, &schedules, stride);
            let got = daily_downtime_arena(&instances, &arena, stride);
            assert_eq!(got, naive, "stride {stride}");
        }
    }

    #[test]
    fn bin_index_matches_all_order() {
        for (i, b) in SizeBin::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn correlation_arena_matches_naive_on_generated_world() {
        use fediscope_model::schedule::OutageArena;
        use fediscope_worldgen::{Generator, WorldConfig};
        let mut cfg = WorldConfig::tiny(59);
        cfg.n_instances = 250;
        cfg.n_users = 1_500;
        let w = Generator::generate_world(cfg);
        let arena = OutageArena::from_schedules(&w.schedules);
        let naive = size_downtime_correlation(&w.instances, &w.schedules);
        let got = size_downtime_correlation_arena(&w.instances, &arena);
        // bit-identical: same input vectors in the same order
        assert_eq!(got.map(f64::to_bits), naive.map(f64::to_bits));
        assert!(naive.is_some());
    }

    #[test]
    fn correlation_none_for_uniform() {
        // identical downtime everywhere -> zero variance -> None
        let instances = vec![mk_inst(0, 10), mk_inst(1, 1000)];
        let schedules = vec![
            AvailabilitySchedule::always_up(),
            AvailabilitySchedule::always_up(),
        ];
        assert_eq!(size_downtime_correlation(&instances, &schedules), None);
    }

    #[test]
    fn correlation_detects_relationship() {
        let instances = vec![mk_inst(0, 10), mk_inst(1, 100_000)];
        let mut bad = AvailabilitySchedule::always_up();
        bad.add_outage(Epoch(0), Day(100).start_epoch(), OutageCause::Organic);
        // big instance down a lot -> positive correlation
        let schedules = vec![AvailabilitySchedule::always_up(), bad];
        let c = size_downtime_correlation(&instances, &schedules).unwrap();
        assert!(c > 0.9);
    }
}
