//! Per-day downtime by instance size (Fig. 8).
//!
//! The figure pools instance-day downtime percentages into four toot-count
//! bins (`<10K`, `10K–100K`, `100K–1M`, `>1M`) and draws box plots, next to
//! Twitter's 2007 per-day downtime. The paper's punchline: the correlation
//! between size and downtime is ≈ −0.04 — "instance popularity is not a
//! good predictor of availability".

use fediscope_model::instance::Instance;
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::{Day, WINDOW_DAYS};
use fediscope_stats::{pearson, BoxStats};

/// The four Fig. 8 size bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeBin {
    /// Fewer than 10K toots.
    Small,
    /// 10K–100K toots.
    Medium,
    /// 100K–1M toots.
    Large,
    /// More than 1M toots.
    Huge,
}

impl SizeBin {
    /// All bins in figure order.
    pub const ALL: [SizeBin; 4] = [SizeBin::Small, SizeBin::Medium, SizeBin::Large, SizeBin::Huge];

    /// Classify a toot count.
    pub fn of(toots: u64) -> SizeBin {
        match toots {
            0..=9_999 => SizeBin::Small,
            10_000..=99_999 => SizeBin::Medium,
            100_000..=999_999 => SizeBin::Large,
            _ => SizeBin::Huge,
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            SizeBin::Small => "<10K",
            SizeBin::Medium => "10K - 100K",
            SizeBin::Large => "100K - 1M",
            SizeBin::Huge => ">1M",
        }
    }
}

/// Pooled per-day downtime samples per bin, plus overall.
#[derive(Debug, Clone)]
pub struct DailyDowntime {
    /// `(bin, samples)` in figure order; samples are instance-day downtime
    /// fractions.
    pub per_bin: Vec<(SizeBin, Vec<f64>)>,
    /// All Mastodon samples pooled.
    pub overall: Vec<f64>,
}

impl DailyDowntime {
    /// Box stats per bin (None for empty bins).
    pub fn box_stats(&self) -> Vec<(SizeBin, Option<BoxStats>)> {
        self.per_bin
            .iter()
            .map(|(bin, samples)| (*bin, BoxStats::of(samples)))
            .collect()
    }

    /// Mean of the pooled samples.
    pub fn mean(&self) -> f64 {
        if self.overall.is_empty() {
            return 0.0;
        }
        self.overall.iter().sum::<f64>() / self.overall.len() as f64
    }
}

/// Collect instance-day downtime samples. `day_stride` subsamples days
/// (1 = every day) to bound memory at full scale.
pub fn daily_downtime(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
    day_stride: u32,
) -> DailyDowntime {
    assert!(day_stride >= 1);
    let mut per_bin: Vec<(SizeBin, Vec<f64>)> =
        SizeBin::ALL.iter().map(|&b| (b, Vec::new())).collect();
    let mut overall = Vec::new();
    for (inst, sched) in instances.iter().zip(schedules) {
        let bin = SizeBin::of(inst.toot_count);
        let slot = per_bin.iter_mut().find(|(b, _)| *b == bin).unwrap();
        let mut d = 0;
        while d < WINDOW_DAYS {
            if let Some(frac) = sched.daily_downtime(Day(d)) {
                slot.1.push(frac);
                overall.push(frac);
            }
            d += day_stride;
        }
    }
    DailyDowntime { per_bin, overall }
}

/// The size-vs-downtime correlation across instances (paper: ≈ −0.04).
pub fn size_downtime_correlation(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
) -> Option<f64> {
    let mut toots = Vec::new();
    let mut down = Vec::new();
    for (inst, sched) in instances.iter().zip(schedules) {
        if sched.lifetime_epochs() == 0 {
            continue;
        }
        toots.push(inst.toot_count as f64);
        down.push(sched.downtime_fraction());
    }
    pearson(&toots, &down)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::Epoch;

    #[test]
    fn bin_classification() {
        assert_eq!(SizeBin::of(0), SizeBin::Small);
        assert_eq!(SizeBin::of(9_999), SizeBin::Small);
        assert_eq!(SizeBin::of(10_000), SizeBin::Medium);
        assert_eq!(SizeBin::of(500_000), SizeBin::Large);
        assert_eq!(SizeBin::of(2_000_000), SizeBin::Huge);
        assert_eq!(SizeBin::ALL.len(), 4);
    }

    fn mk_inst(i: u32, toots: u64) -> Instance {
        use fediscope_model::certs::{Certificate, CertificateAuthority};
        use fediscope_model::geo::Country;
        use fediscope_model::ids::{AsId, InstanceId};
        use fediscope_model::instance::{OperatorKind, Registration, Software};
        use fediscope_model::taxonomy::{CategorySet, PolicySet};
        use fediscope_model::time::Day;
        Instance {
            id: InstanceId(i),
            domain: format!("i{i}"),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: false,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(1),
            provider_index: 0,
            ip: i,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: 1,
            toot_count: toots,
            boosted_toots: 0,
            active_user_pct: 50.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        }
    }

    #[test]
    fn samples_land_in_right_bins() {
        let instances = vec![mk_inst(0, 100), mk_inst(1, 50_000)];
        let mut bad = AvailabilitySchedule::always_up();
        bad.add_outage(Epoch(0), Day(1).start_epoch(), OutageCause::Organic);
        let schedules = vec![bad, AvailabilitySchedule::always_up()];
        let dd = daily_downtime(&instances, &schedules, 1);
        let small = &dd.per_bin.iter().find(|(b, _)| *b == SizeBin::Small).unwrap().1;
        let medium = &dd.per_bin.iter().find(|(b, _)| *b == SizeBin::Medium).unwrap().1;
        assert_eq!(small.len(), WINDOW_DAYS as usize);
        assert_eq!(medium.len(), WINDOW_DAYS as usize);
        // the small instance was down on day 0
        assert_eq!(small[0], 1.0);
        assert_eq!(small[1], 0.0);
        assert!(medium.iter().all(|&x| x == 0.0));
        assert_eq!(dd.overall.len(), 2 * WINDOW_DAYS as usize);
    }

    #[test]
    fn stride_subsamples() {
        let instances = vec![mk_inst(0, 100)];
        let schedules = vec![AvailabilitySchedule::always_up()];
        let dd = daily_downtime(&instances, &schedules, 7);
        assert_eq!(dd.overall.len(), WINDOW_DAYS.div_ceil(7) as usize);
    }

    #[test]
    fn correlation_none_for_uniform() {
        // identical downtime everywhere -> zero variance -> None
        let instances = vec![mk_inst(0, 10), mk_inst(1, 1000)];
        let schedules = vec![
            AvailabilitySchedule::always_up(),
            AvailabilitySchedule::always_up(),
        ];
        assert_eq!(size_downtime_correlation(&instances, &schedules), None);
    }

    #[test]
    fn correlation_detects_relationship() {
        let instances = vec![mk_inst(0, 10), mk_inst(1, 100_000)];
        let mut bad = AvailabilitySchedule::always_up();
        bad.add_outage(Epoch(0), Day(100).start_epoch(), OutageCause::Organic);
        // big instance down a lot -> positive correlation
        let schedules = vec![AvailabilitySchedule::always_up(), bad];
        let c = size_downtime_correlation(&instances, &schedules).unwrap();
        assert!(c > 0.9);
    }
}
