//! Continuous-outage analysis (Fig. 10) and worst-day impact.

use fediscope_model::instance::Instance;
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::{Day, WINDOW_DAYS};
use fediscope_stats::Ecdf;

/// Fig. 10's data: the duration distribution of day-plus outages and the
/// affected user/toot volumes.
#[derive(Debug, Clone)]
pub struct OutageDurations {
    /// Every outage duration, in days (all outages, not just day-plus).
    pub durations_days: Ecdf,
    /// Fraction of instances with at least one outage.
    pub any_outage_frac: f64,
    /// Fraction of instances with a ≥1-day continuous outage.
    pub day_plus_frac: f64,
    /// Fraction of instances with a >30-day continuous outage.
    pub month_plus_frac: f64,
    /// Users on instances with a ≥1-day outage (the Fig. 10 right axis).
    pub users_affected: u64,
    /// Toots on instances with a ≥1-day outage.
    pub toots_affected: u64,
}

/// Analyse outage durations across instances.
pub fn outage_durations(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
) -> OutageDurations {
    let mut durations = Vec::new();
    let mut any = 0usize;
    let mut day_plus = 0usize;
    let mut month_plus = 0usize;
    let mut users_affected = 0u64;
    let mut toots_affected = 0u64;
    let mut considered = 0usize;
    for (inst, sched) in instances.iter().zip(schedules) {
        if sched.lifetime_epochs() == 0 {
            continue;
        }
        considered += 1;
        let mut longest = 0.0f64;
        for o in sched.outages() {
            durations.push(o.len_days());
            longest = longest.max(o.len_days());
        }
        if sched.outage_count() > 0 {
            any += 1;
        }
        if longest >= 1.0 {
            day_plus += 1;
            users_affected += inst.user_count as u64;
            toots_affected += inst.toot_count;
        }
        if longest > 30.0 {
            month_plus += 1;
        }
    }
    let n = considered.max(1) as f64;
    OutageDurations {
        durations_days: Ecdf::new(durations),
        any_outage_frac: any as f64 / n,
        day_plus_frac: day_plus as f64 / n,
        month_plus_frac: month_plus as f64 / n,
        users_affected,
        toots_affected,
    }
}

/// The worst whole-day toot blackout: for each day, the fraction of global
/// toots hosted on instances that were down for that *entire* day (the
/// paper finds a day — 2017-04-15 — where 6% of all toots were unavailable
/// all day).
pub fn worst_day_blackout(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
) -> (Day, f64) {
    let total: u64 = instances.iter().map(|i| i.toot_count).sum();
    if total == 0 {
        return (Day(0), 0.0);
    }
    let mut worst = (Day(0), 0.0f64);
    for d in 0..WINDOW_DAYS {
        let day = Day(d);
        let mut dark = 0u64;
        for (inst, sched) in instances.iter().zip(schedules) {
            if sched.down_whole_day(day) {
                dark += inst.toot_count;
            }
        }
        let frac = dark as f64 / total as f64;
        if frac > worst.1 {
            worst = (day, frac);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::Epoch;

    fn mk_inst(i: u32, users: u32, toots: u64) -> Instance {
        use fediscope_model::certs::{Certificate, CertificateAuthority};
        use fediscope_model::geo::Country;
        use fediscope_model::ids::{AsId, InstanceId};
        use fediscope_model::instance::{OperatorKind, Registration, Software};
        use fediscope_model::taxonomy::{CategorySet, PolicySet};
        Instance {
            id: InstanceId(i),
            domain: format!("i{i}"),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: false,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(1),
            provider_index: 0,
            ip: i,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: users,
            toot_count: toots,
            boosted_toots: 0,
            active_user_pct: 50.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        }
    }

    #[test]
    fn counts_and_fractions() {
        let instances = vec![mk_inst(0, 10, 100), mk_inst(1, 20, 200), mk_inst(2, 5, 50)];
        let mut s0 = AvailabilitySchedule::always_up();
        s0.add_outage(Epoch(0), Epoch(10), OutageCause::Organic); // short blip
        let mut s1 = AvailabilitySchedule::always_up();
        s1.add_outage(Epoch(0), Day(2).start_epoch(), OutageCause::Organic); // 2 days
        let s2 = AvailabilitySchedule::always_up();
        let r = outage_durations(&instances, &[s0, s1, s2]);
        assert!((r.any_outage_frac - 2.0 / 3.0).abs() < 1e-9);
        assert!((r.day_plus_frac - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.month_plus_frac, 0.0);
        assert_eq!(r.users_affected, 20);
        assert_eq!(r.toots_affected, 200);
        assert_eq!(r.durations_days.len(), 2);
    }

    #[test]
    fn month_long_outage_detected() {
        let instances = vec![mk_inst(0, 1, 10)];
        let mut s = AvailabilitySchedule::always_up();
        s.add_outage(Epoch(0), Day(35).start_epoch(), OutageCause::Organic);
        let r = outage_durations(&instances, &[s]);
        assert_eq!(r.month_plus_frac, 1.0);
    }

    #[test]
    fn worst_day_finds_blackout() {
        // one instance with 60% of toots is dark on day 7
        let instances = vec![mk_inst(0, 1, 600), mk_inst(1, 1, 400)];
        let mut s0 = AvailabilitySchedule::always_up();
        s0.add_outage(
            Day(7).start_epoch(),
            Day(8).start_epoch(),
            OutageCause::Organic,
        );
        let schedules = vec![s0, AvailabilitySchedule::always_up()];
        let (day, frac) = worst_day_blackout(&instances, &schedules);
        assert_eq!(day, Day(7));
        assert!((frac - 0.6).abs() < 1e-9);
    }

    #[test]
    fn partial_day_does_not_count_as_blackout() {
        let instances = vec![mk_inst(0, 1, 100)];
        let mut s = AvailabilitySchedule::always_up();
        // only half of day 3
        s.add_outage(
            Day(3).start_epoch(),
            Epoch(Day(3).start_epoch().0 + 100),
            OutageCause::Organic,
        );
        let (_, frac) = worst_day_blackout(&instances, &[s]);
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn empty_world() {
        let (_, frac) = worst_day_blackout(&[], &[]);
        assert_eq!(frac, 0.0);
        let r = outage_durations(&[], &[]);
        assert_eq!(r.any_outage_frac, 0.0);
    }
}
