//! Continuous-outage analysis (Fig. 10) and worst-day impact.

use fediscope_model::instance::Instance;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena};
use fediscope_model::time::{Day, EPOCHS_PER_DAY, WINDOW_DAYS};
use fediscope_stats::Ecdf;

/// Integer epoch threshold for a "day-plus" continuous outage.
pub const DAY_PLUS_EPOCHS: u32 = EPOCHS_PER_DAY;

/// Integer epoch threshold for a "month-plus" (>30-day) continuous outage.
pub const MONTH_PLUS_EPOCHS: u32 = 30 * EPOCHS_PER_DAY;

/// Fig. 10's data: the duration distribution of day-plus outages and the
/// affected user/toot volumes.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageDurations {
    /// Every outage duration, in days (all outages, not just day-plus).
    pub durations_days: Ecdf,
    /// Fraction of instances with at least one outage.
    pub any_outage_frac: f64,
    /// Fraction of instances with a ≥1-day continuous outage.
    pub day_plus_frac: f64,
    /// Fraction of instances with a >30-day continuous outage.
    pub month_plus_frac: f64,
    /// Users on instances with a ≥1-day outage (the Fig. 10 right axis).
    pub users_affected: u64,
    /// Toots on instances with a ≥1-day outage.
    pub toots_affected: u64,
}

/// Analyse outage durations across instances.
///
/// Day-plus / month-plus classification compares integer epoch lengths
/// against [`DAY_PLUS_EPOCHS`] / [`MONTH_PLUS_EPOCHS`] — boundary-length
/// outages (exactly 1 day, exactly 30 days) bin exactly, with no float
/// quotient in the comparison. Reported *durations* stay fractional days.
pub fn outage_durations(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
) -> OutageDurations {
    let mut acc = DurationAcc::default();
    for (inst, sched) in instances.iter().zip(schedules) {
        acc.fold_instance(
            inst,
            sched.lifetime_epochs(),
            sched.outages().iter().map(|o| o.len_epochs()),
        );
    }
    acc.finish()
}

/// [`outage_durations`] over the columnar [`OutageArena`].
pub fn outage_durations_arena(instances: &[Instance], arena: &OutageArena) -> OutageDurations {
    let mut acc = DurationAcc::default();
    for (inst, v) in instances.iter().zip(arena.views()) {
        acc.fold_instance(
            inst,
            v.lifetime_epochs(),
            (0..v.outage_count()).map(|k| v.ends[k].0 - v.starts[k].0),
        );
    }
    acc.finish()
}

/// Shared Fig. 10 accumulator: per-instance fold plus the final fraction
/// arithmetic, used by both representations (and, shard-locally, by
/// `sweep::MonitorSweep` — all counters are integers, so shard merging is
/// exact).
#[derive(Debug, Default)]
pub(crate) struct DurationAcc {
    pub durations: Vec<f64>,
    pub any: usize,
    pub day_plus: usize,
    pub month_plus: usize,
    pub users_affected: u64,
    pub toots_affected: u64,
    pub considered: usize,
}

impl DurationAcc {
    /// Fold one instance's outage lengths (in epochs).
    pub fn fold_instance(
        &mut self,
        inst: &Instance,
        lifetime_epochs: u32,
        lens: impl Iterator<Item = u32>,
    ) {
        if lifetime_epochs == 0 {
            return;
        }
        self.considered += 1;
        let mut longest = 0u32;
        let mut count = 0usize;
        for len in lens {
            self.durations.push(len as f64 / EPOCHS_PER_DAY as f64);
            longest = longest.max(len);
            count += 1;
        }
        if count > 0 {
            self.any += 1;
        }
        if longest >= DAY_PLUS_EPOCHS {
            self.day_plus += 1;
            self.users_affected += inst.user_count as u64;
            self.toots_affected += inst.toot_count;
        }
        if longest > MONTH_PLUS_EPOCHS {
            self.month_plus += 1;
        }
    }

    /// Merge a later shard's accumulator into this one (order-preserving
    /// concatenation + exact integer sums).
    pub fn absorb(&mut self, other: DurationAcc) {
        self.durations.extend(other.durations);
        self.any += other.any;
        self.day_plus += other.day_plus;
        self.month_plus += other.month_plus;
        self.users_affected += other.users_affected;
        self.toots_affected += other.toots_affected;
        self.considered += other.considered;
    }

    /// Turn the integer counters into the reported fractions.
    pub fn finish(self) -> OutageDurations {
        let n = self.considered.max(1) as f64;
        OutageDurations {
            durations_days: Ecdf::new(self.durations),
            any_outage_frac: self.any as f64 / n,
            day_plus_frac: self.day_plus as f64 / n,
            month_plus_frac: self.month_plus as f64 / n,
            users_affected: self.users_affected,
            toots_affected: self.toots_affected,
        }
    }
}

/// The worst whole-day toot blackout: for each day, the fraction of global
/// toots hosted on instances that were down for that *entire* day (the
/// paper finds a day — 2017-04-15 — where 6% of all toots were unavailable
/// all day).
///
/// Tie-break (pinned by unit test, and reproduced exactly by the sharded
/// arena fold): the comparison is strictly-greater, so when several days
/// lose the same toot volume the **first** (earliest) worst day wins.
///
/// This is the kept naive reference: `O(days · instances)` day-queries,
/// each rescanning the instance's outage list. The production path is
/// [`worst_day_blackout_arena`] / `sweep::MonitorSweep`, which accumulate
/// per-outage whole-day spans into a per-day toot histogram in
/// `O(outages + days)`.
pub fn worst_day_blackout(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
) -> (Day, f64) {
    let total: u64 = instances.iter().map(|i| i.toot_count).sum();
    if total == 0 {
        return (Day(0), 0.0);
    }
    let mut worst = (Day(0), 0.0f64);
    for d in 0..WINDOW_DAYS {
        let day = Day(d);
        let mut dark = 0u64;
        for (inst, sched) in instances.iter().zip(schedules) {
            if sched.down_whole_day(day) {
                dark += inst.toot_count;
            }
        }
        let frac = dark as f64 / total as f64;
        if frac > worst.1 {
            worst = (day, frac);
        }
    }
    worst
}

/// Range-add one outage's whole-day blackout span into a per-day toot
/// *difference* array (`diff.len() == WINDOW_DAYS + 1`; prefix-summing
/// yields the per-day dark-toot histogram).
///
/// A day is a whole-day blackout when the instance's *live* span within it
/// (`[max(day_start, birth), min(day_end, death))`, nonempty) is entirely
/// covered by the outage — the exact condition under which
/// `daily_downtime(day) == Some(1.0)`. Because stored outages are strictly
/// separated by up-epochs, a fully-dark day is always covered by a single
/// outage, so per-outage accumulation counts each `(instance, day)` pair
/// at most once.
pub(crate) fn blackout_span_add(
    diff: &mut [i64],
    birth: u32,
    death: u32,
    start: u32,
    end: u32,
    toots: u64,
) {
    debug_assert!(birth <= start && start < end && end <= death);
    if toots == 0 {
        return;
    }
    let e = EPOCHS_PER_DAY;
    let t = toots as i64;
    // Days lying fully inside the lifetime and fully covered by the outage.
    let lo = start.div_ceil(e).max(birth.div_ceil(e));
    let hi = (end / e).min(death / e);
    if lo < hi {
        diff[lo as usize] += t;
        diff[hi as usize] -= t;
    }
    // Partial lifetime-boundary days (mid-day birth or death): such a day
    // counts when its shortened live span is covered. `AvailabilitySchedule`
    // lifetimes are day-aligned so these never fire for schedule-built
    // arenas, but arbitrary arenas may carry mid-day births/deaths.
    let mut partials = [None, None];
    if !birth.is_multiple_of(e) {
        partials[0] = Some(birth / e);
    }
    if !death.is_multiple_of(e) && Some(death / e) != partials[0] {
        partials[1] = Some(death / e);
    }
    for j in partials.into_iter().flatten() {
        let live_lo = (j * e).max(birth);
        let live_hi = ((j + 1) * e).min(death);
        if live_lo < live_hi && start <= live_lo && end >= live_hi {
            diff[j as usize] += t;
            diff[j as usize + 1] -= t;
        }
    }
}

/// Pick the worst day out of a per-day dark-toot histogram, replicating
/// [`worst_day_blackout`]'s float comparison (and therefore its
/// first-worst-day tie-break) exactly.
pub(crate) fn worst_day_from_histogram(dark_per_day: &[i64], total: u64) -> (Day, f64) {
    if total == 0 {
        return (Day(0), 0.0);
    }
    let mut worst = (Day(0), 0.0f64);
    for (d, &dark) in dark_per_day.iter().enumerate().take(WINDOW_DAYS as usize) {
        debug_assert!(dark >= 0);
        let frac = dark as f64 / total as f64;
        if frac > worst.1 {
            worst = (Day(d as u32), frac);
        }
    }
    worst
}

/// [`worst_day_blackout`] over the columnar [`OutageArena`] in
/// `O(outages + days)`: every outage range-adds its whole-day span into a
/// per-day toot histogram, and a single scan picks the worst day with the
/// same first-worst tie-break as the naive reference.
pub fn worst_day_blackout_arena(instances: &[Instance], arena: &OutageArena) -> (Day, f64) {
    let total: u64 = instances.iter().map(|i| i.toot_count).sum();
    if total == 0 {
        return (Day(0), 0.0);
    }
    let mut diff = vec![0i64; WINDOW_DAYS as usize + 1];
    for (inst, v) in instances.iter().zip(arena.views()) {
        for k in 0..v.outage_count() {
            blackout_span_add(
                &mut diff,
                v.birth.0,
                v.death.0,
                v.starts[k].0,
                v.ends[k].0,
                inst.toot_count,
            );
        }
    }
    let mut dark = 0i64;
    for d in diff.iter_mut() {
        dark += *d;
        *d = dark;
    }
    worst_day_from_histogram(&diff, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::Epoch;

    fn mk_inst(i: u32, users: u32, toots: u64) -> Instance {
        use fediscope_model::certs::{Certificate, CertificateAuthority};
        use fediscope_model::geo::Country;
        use fediscope_model::ids::{AsId, InstanceId};
        use fediscope_model::instance::{OperatorKind, Registration, Software};
        use fediscope_model::taxonomy::{CategorySet, PolicySet};
        Instance {
            id: InstanceId(i),
            domain: format!("i{i}"),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: false,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(1),
            provider_index: 0,
            ip: i,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: users,
            toot_count: toots,
            boosted_toots: 0,
            active_user_pct: 50.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        }
    }

    #[test]
    fn counts_and_fractions() {
        let instances = vec![mk_inst(0, 10, 100), mk_inst(1, 20, 200), mk_inst(2, 5, 50)];
        let mut s0 = AvailabilitySchedule::always_up();
        s0.add_outage(Epoch(0), Epoch(10), OutageCause::Organic); // short blip
        let mut s1 = AvailabilitySchedule::always_up();
        s1.add_outage(Epoch(0), Day(2).start_epoch(), OutageCause::Organic); // 2 days
        let s2 = AvailabilitySchedule::always_up();
        let r = outage_durations(&instances, &[s0, s1, s2]);
        assert!((r.any_outage_frac - 2.0 / 3.0).abs() < 1e-9);
        assert!((r.day_plus_frac - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.month_plus_frac, 0.0);
        assert_eq!(r.users_affected, 20);
        assert_eq!(r.toots_affected, 200);
        assert_eq!(r.durations_days.len(), 2);
    }

    #[test]
    fn month_long_outage_detected() {
        let instances = vec![mk_inst(0, 1, 10)];
        let mut s = AvailabilitySchedule::always_up();
        s.add_outage(Epoch(0), Day(35).start_epoch(), OutageCause::Organic);
        let r = outage_durations(&instances, &[s]);
        assert_eq!(r.month_plus_frac, 1.0);
    }

    #[test]
    fn worst_day_finds_blackout() {
        // one instance with 60% of toots is dark on day 7
        let instances = vec![mk_inst(0, 1, 600), mk_inst(1, 1, 400)];
        let mut s0 = AvailabilitySchedule::always_up();
        s0.add_outage(
            Day(7).start_epoch(),
            Day(8).start_epoch(),
            OutageCause::Organic,
        );
        let schedules = vec![s0, AvailabilitySchedule::always_up()];
        let (day, frac) = worst_day_blackout(&instances, &schedules);
        assert_eq!(day, Day(7));
        assert!((frac - 0.6).abs() < 1e-9);
    }

    #[test]
    fn partial_day_does_not_count_as_blackout() {
        let instances = vec![mk_inst(0, 1, 100)];
        let mut s = AvailabilitySchedule::always_up();
        // only half of day 3
        s.add_outage(
            Day(3).start_epoch(),
            Epoch(Day(3).start_epoch().0 + 100),
            OutageCause::Organic,
        );
        let (_, frac) = worst_day_blackout(&instances, &[s]);
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn empty_world() {
        let (_, frac) = worst_day_blackout(&[], &[]);
        assert_eq!(frac, 0.0);
        let r = outage_durations(&[], &[]);
        assert_eq!(r.any_outage_frac, 0.0);
        let arena = OutageArena::from_schedules(&[]);
        assert_eq!(worst_day_blackout_arena(&[], &arena), (Day(0), 0.0));
        assert_eq!(outage_durations_arena(&[], &arena), r);
    }

    #[test]
    fn boundary_lengths_bin_exactly() {
        use fediscope_model::time::EPOCHS_PER_DAY;
        let mk = |len: u32| {
            let mut s = AvailabilitySchedule::always_up();
            s.add_outage(Epoch(0), Epoch(len), OutageCause::Organic);
            s
        };
        let instances = vec![mk_inst(0, 1, 10)];
        // one epoch short of a day: not day-plus
        let r = outage_durations(&instances, &[mk(EPOCHS_PER_DAY - 1)]);
        assert_eq!(r.day_plus_frac, 0.0);
        // exactly one day: day-plus (>= threshold)
        let r = outage_durations(&instances, &[mk(EPOCHS_PER_DAY)]);
        assert_eq!(r.day_plus_frac, 1.0);
        assert_eq!(r.month_plus_frac, 0.0);
        // exactly 30 days: NOT month-plus (strictly-greater threshold)
        let r = outage_durations(&instances, &[mk(30 * EPOCHS_PER_DAY)]);
        assert_eq!(r.month_plus_frac, 0.0);
        // one epoch over 30 days: month-plus
        let r = outage_durations(&instances, &[mk(30 * EPOCHS_PER_DAY + 1)]);
        assert_eq!(r.month_plus_frac, 1.0);
        // durations stay reported in fractional days
        let r = outage_durations(&instances, &[mk(EPOCHS_PER_DAY / 2)]);
        assert_eq!(r.durations_days.max(), Some(0.5));
    }

    /// The strictly-greater comparison keeps the FIRST worst day on ties;
    /// this pin is what lets the sharded histogram fold reproduce the
    /// naive scan deterministically.
    #[test]
    fn worst_day_tie_break_is_first_day() {
        let instances = vec![mk_inst(0, 1, 100), mk_inst(1, 1, 100)];
        let mut s0 = AvailabilitySchedule::always_up();
        s0.add_outage(Day(9).start_epoch(), Day(10).start_epoch(), OutageCause::Organic);
        let mut s1 = AvailabilitySchedule::always_up();
        s1.add_outage(Day(4).start_epoch(), Day(5).start_epoch(), OutageCause::Organic);
        let schedules = vec![s0, s1];
        // days 4 and 9 each black out exactly half the toots
        let (day, frac) = worst_day_blackout(&instances, &schedules);
        assert_eq!(day, Day(4));
        assert!((frac - 0.5).abs() < 1e-12);
        let arena = OutageArena::from_schedules(&schedules);
        assert_eq!(
            worst_day_blackout_arena(&instances, &arena),
            (day, frac),
            "arena fold must reproduce the naive tie-break"
        );
    }

    #[test]
    fn arena_blackout_matches_naive_on_mixed_lifetimes() {
        let instances = vec![
            mk_inst(0, 1, 600),
            mk_inst(1, 1, 400),
            mk_inst(2, 1, 50),
            mk_inst(3, 1, 0),
        ];
        let mut s0 = AvailabilitySchedule::always_up();
        s0.add_outage(Day(7).start_epoch(), Day(9).start_epoch(), OutageCause::Organic);
        s0.add_outage(
            Epoch(Day(20).start_epoch().0 + 5),
            Epoch(Day(22).start_epoch().0 + 100),
            OutageCause::Organic,
        );
        let mut s1 = AvailabilitySchedule::new(Day(3), Some(Day(100)));
        s1.add_outage(Epoch(0), Day(5).start_epoch(), OutageCause::Organic);
        s1.add_outage(Day(98).start_epoch(), Epoch(u32::MAX / 2), OutageCause::Organic);
        let mut s2 = AvailabilitySchedule::new(Day(50), None);
        s2.add_outage(Day(60).start_epoch(), Day(95).start_epoch(), OutageCause::Organic);
        let mut s3 = AvailabilitySchedule::always_up();
        s3.add_outage(Day(7).start_epoch(), Day(8).start_epoch(), OutageCause::Organic);
        let schedules = vec![s0, s1, s2, s3];
        let arena = OutageArena::from_schedules(&schedules);
        assert_eq!(
            worst_day_blackout_arena(&instances, &arena),
            worst_day_blackout(&instances, &schedules)
        );
        assert_eq!(
            outage_durations_arena(&instances, &arena),
            outage_durations(&instances, &schedules)
        );
    }

    #[test]
    fn blackout_span_handles_midday_lifetimes() {
        use fediscope_model::time::{EPOCHS_PER_DAY, WINDOW_DAYS};
        // birth mid-day 2, death mid-day 5: an outage covering the whole
        // lifetime blacks out every day the instance exists on.
        let e = EPOCHS_PER_DAY;
        let birth = 2 * e + 100;
        let death = 5 * e + 50;
        let mut b = OutageArena::builder(1, 1);
        b.push_instance(Epoch(birth), Epoch(death));
        b.push_outage(Epoch(birth), Epoch(death), OutageCause::Organic);
        let arena = b.finish();
        let mut diff = vec![0i64; WINDOW_DAYS as usize + 1];
        blackout_span_add(&mut diff, birth, death, birth, death, 7);
        let mut dark = Vec::new();
        let mut acc = 0i64;
        for d in &diff[..8] {
            acc += d;
            dark.push(acc);
        }
        assert_eq!(dark, vec![0, 0, 7, 7, 7, 7, 0, 0]);
        // and the view agrees day-by-day with the daily_downtime condition
        for d in 0..8u32 {
            let whole = arena.view(0).down_whole_day(Day(d));
            assert_eq!(dark[d as usize] == 7, whole, "day {d}");
        }
    }
}
