//! The columnar §4 telemetry engine: **one sharded pass** over an
//! [`OutageArena`] folds every availability figure at once.
//!
//! The seed pipeline walked the schedule list five times — Fig. 7
//! (lifetime downtime + exposure), Fig. 8 (daily downtime), Fig. 10
//! (outage durations), the worst-day blackout (a per-day × per-instance
//! rescan), and Table 1 (AS co-failures). [`MonitorSweep::run`] replaces
//! all of that with:
//!
//! 1. an **instance-sharded fold**: the instance range splits into
//!    contiguous shards fanned out via `par::parallel_map`; each shard
//!    streams its slice of the arena's flat interval columns once,
//!    producing per-instance sample vectors (concatenated back in shard =
//!    instance order) and integer (`u64`/`i64` epoch-and-toot)
//!    accumulators (merged by exact addition) — so the merged output is
//!    **bit-identical to the naive reference at any shard count**;
//! 2. a **group-sharded fold** for Table 1: AS groups fan out across
//!    threads, each running the same boundary-event sweep as the naive
//!    detector.
//!
//! The worst-day blackout drops from `O(days · instances · outages)` to
//! `O(outages + days)`: each outage range-adds its whole-day span into a
//! per-day toot histogram (a difference array), and one scan replays the
//! naive comparison — including its pinned first-worst-day tie-break.
//!
//! [`naive_section4`] keeps the per-schedule composition as the reference
//! the differential tests and `bench_monitor` compare against.

use crate::asn::{as_failure_table, as_failure_table_arena, AsFailureRow};
use crate::daily::{daily_downtime, daily_runs, size_downtime_correlation, DailyDowntime, SizeBin};
use crate::downtime::{downtime_report, failure_exposure, DowntimeReport, FailureExposure};
use crate::outages::{
    blackout_span_add, outage_durations, worst_day_blackout, worst_day_from_histogram,
    DurationAcc, OutageDurations,
};
use fediscope_graph::par;
use fediscope_model::geo::ProviderCatalog;
use fediscope_model::instance::Instance;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena};
use fediscope_model::time::{Day, EPOCHS_PER_DAY, WINDOW_DAYS};
use fediscope_stats::{pearson, Ecdf};

/// Knobs shared by the sweep and the naive reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Fig. 8 day subsampling stride (1 = every day).
    pub day_stride: u32,
    /// Table 1 membership threshold (paper: ASes hosting ≥ 8 instances).
    pub min_as_instances: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::for_tier(fediscope_model::scale::ScaleTier::Paper2019)
    }
}

impl SweepConfig {
    /// The tier's §4 knobs — [`fediscope_model::scale::ScaleTier`] is the
    /// single source for the Table 1 threshold and the Fig. 8 stride
    /// (identical across tiers today, but a future tier change lands in
    /// one place).
    pub fn for_tier(tier: fediscope_model::scale::ScaleTier) -> Self {
        Self {
            day_stride: tier.fig08_day_stride(),
            min_as_instances: tier.table1_min_instances(),
        }
    }
}

/// Everything §4 needs (Figs. 7, 8, 10 + the blackout day + Table 1), in
/// one comparable bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutput {
    /// Fig. 7 blue line: per-instance lifetime downtime + its ECDF.
    pub downtime: DowntimeReport,
    /// Fig. 7 red lines: user/toot/boost exposure of failing instances.
    pub exposure: FailureExposure,
    /// Fig. 8: pooled instance-day downtime samples per size bin.
    pub daily: DailyDowntime,
    /// Fig. 8 inset: toot-count vs downtime correlation.
    pub size_correlation: Option<f64>,
    /// Fig. 10: continuous-outage durations and exposure.
    pub outages: OutageDurations,
    /// Worst whole-day blackout `(day, fraction of global toots)`.
    pub worst_day: (Day, f64),
    /// Table 1 rows.
    pub as_table: Vec<AsFailureRow>,
}

/// The columnar §4 engine. Borrow an arena and the instance table, pick a
/// shard budget, [`run`](Self::run).
pub struct MonitorSweep<'a> {
    arena: &'a OutageArena,
    instances: &'a [Instance],
    shards: Option<usize>,
}

/// Per-shard accumulator. Sample vectors are per-instance-ordered within
/// the shard; integer counters merge exactly.
struct ShardAcc {
    fraction: Vec<Option<f64>>,
    exp_users: Vec<f64>,
    exp_toots: Vec<f64>,
    exp_boosts: Vec<f64>,
    bins: [Vec<f64>; 4],
    overall: Vec<f64>,
    corr_toots: Vec<f64>,
    corr_down: Vec<f64>,
    durations: DurationAcc,
    black_diff: Vec<i64>,
}

impl ShardAcc {
    fn new() -> Self {
        Self {
            fraction: Vec::new(),
            exp_users: Vec::new(),
            exp_toots: Vec::new(),
            exp_boosts: Vec::new(),
            bins: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            overall: Vec::new(),
            corr_toots: Vec::new(),
            corr_down: Vec::new(),
            durations: DurationAcc::default(),
            black_diff: vec![0i64; WINDOW_DAYS as usize + 1],
        }
    }
}

impl<'a> MonitorSweep<'a> {
    /// New sweep over `arena` (one entry per instance, aligned with
    /// `instances`).
    pub fn new(arena: &'a OutageArena, instances: &'a [Instance]) -> Self {
        assert_eq!(
            arena.len(),
            instances.len(),
            "arena/instances length mismatch"
        );
        Self {
            arena,
            instances,
            shards: None,
        }
    }

    /// Pin the shard count (default: `par::thread_budget()`). Output is
    /// bit-identical at any value; this only affects scheduling.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        self.shards = Some(shards);
        self
    }

    /// Fold the whole §4 workload out of one pass over the arena.
    pub fn run(&self, providers: &ProviderCatalog, cfg: &SweepConfig) -> SweepOutput {
        assert!(cfg.day_stride >= 1);
        let n = self.instances.len();
        let shards = self.shards.unwrap_or_else(par::thread_budget).max(1);
        let chunk = n.div_ceil(shards.min(n.max(1)).max(1)).max(1);
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|lo| (lo, (lo + chunk).min(n)))
            .collect();

        let accs = par::parallel_map(&ranges, |&(lo, hi)| self.fold_range(lo, hi, cfg.day_stride));
        let as_table =
            as_failure_table_arena(self.instances, self.arena, providers, cfg.min_as_instances);
        self.merge(accs, as_table)
    }

    /// Stream one contiguous instance range through every per-instance
    /// figure fold.
    fn fold_range(&self, lo: usize, hi: usize, day_stride: u32) -> ShardAcc {
        let mut acc = ShardAcc::new();
        // Exact reservations from the arena's geometry: sample counts per
        // bin (one per sampled live day) and one duration per interval.
        acc.fraction.reserve(hi - lo);
        let mut n_outages = 0usize;
        let mut bin_days = [0usize; 4];
        for i in lo..hi {
            let v = self.arena.view(i);
            n_outages += v.outage_count();
            if v.birth.0 < v.death.0 {
                let first = v.birth.0 / EPOCHS_PER_DAY;
                let last = (v.death.0 - 1) / EPOCHS_PER_DAY + 1;
                let sampled =
                    (last.div_ceil(day_stride) - first.div_ceil(day_stride)) as usize;
                bin_days[SizeBin::of(self.instances[i].toot_count).index()] += sampled;
            }
        }
        acc.durations.durations.reserve(n_outages);
        acc.overall.reserve(bin_days.iter().sum());
        for (b, days) in acc.bins.iter_mut().zip(bin_days) {
            b.reserve(days);
        }

        for i in lo..hi {
            let v = self.arena.view(i);
            let inst = &self.instances[i];
            let life = v.lifetime_epochs();
            // One interval-column scan serves Fig. 7's fraction and the
            // correlation input (the expression is pure, so reusing the
            // value is bit-identical to naive's two evaluations).
            let downtime_fraction = v.downtime_fraction();

            // Fig. 7: lifetime downtime fraction (same ≥1-day guard as
            // `downtime_report`) and failure exposure.
            acc.fraction
                .push((life >= EPOCHS_PER_DAY).then_some(downtime_fraction));
            if v.outage_count() > 0 {
                acc.exp_users.push(inst.user_count as f64);
                acc.exp_toots.push(inst.toot_count as f64);
                acc.exp_boosts.push(inst.boosted_toots as f64);
            }

            // Fig. 8: daily samples via the run-length interval fold
            // (never per-day interval queries).
            let samples = &mut acc.bins[SizeBin::of(inst.toot_count).index()];
            let overall = &mut acc.overall;
            daily_runs(
                v.birth.0,
                v.death.0,
                v.outage_count(),
                |k| (v.starts[k].0, v.ends[k].0),
                day_stride,
                |frac, count| {
                    if count == 1 {
                        samples.push(frac);
                        overall.push(frac);
                    } else {
                        samples.resize(samples.len() + count, frac);
                        overall.resize(overall.len() + count, frac);
                    }
                },
            );

            // Fig. 8 inset: correlation inputs (same guard as
            // `size_downtime_correlation`).
            if life != 0 {
                acc.corr_toots.push(inst.toot_count as f64);
                acc.corr_down.push(downtime_fraction);
            }

            // Fig. 10: durations + integer day/month classification.
            acc.durations.fold_instance(
                inst,
                life,
                v.starts.iter().zip(v.ends.iter()).map(|(s, e)| e.0 - s.0),
            );

            // Blackout: per-outage whole-day span range-adds.
            for (s, e) in v.starts.iter().zip(v.ends.iter()) {
                blackout_span_add(
                    &mut acc.black_diff,
                    v.birth.0,
                    v.death.0,
                    s.0,
                    e.0,
                    inst.toot_count,
                );
            }
        }
        acc
    }

    /// Merge shard accumulators in shard order (= instance order) and
    /// finalise every figure. The first shard's vectors are *moved* (at
    /// one shard no sample byte is copied); later shards append in order.
    fn merge(&self, accs: Vec<ShardAcc>, as_table: Vec<AsFailureRow>) -> SweepOutput {
        let mut accs = accs.into_iter();
        let first = accs.next().unwrap_or_else(ShardAcc::new);
        let ShardAcc {
            mut fraction,
            mut exp_users,
            mut exp_toots,
            mut exp_boosts,
            mut bins,
            mut overall,
            mut corr_toots,
            mut corr_down,
            mut durations,
            mut black_diff,
        } = first;
        for acc in accs {
            fraction.extend(acc.fraction);
            exp_users.extend(acc.exp_users);
            exp_toots.extend(acc.exp_toots);
            exp_boosts.extend(acc.exp_boosts);
            for (dst, src) in bins.iter_mut().zip(acc.bins) {
                dst.extend(src);
            }
            overall.extend(acc.overall);
            corr_toots.extend(acc.corr_toots);
            corr_down.extend(acc.corr_down);
            durations.absorb(acc.durations);
            for (dst, src) in black_diff.iter_mut().zip(acc.black_diff) {
                *dst += src;
            }
        }

        let cdf = Ecdf::new(fraction.iter().flatten().copied().collect());
        let downtime = DowntimeReport { fraction, cdf };
        let exposure = FailureExposure {
            failing_instances: exp_users.len(),
            users: Ecdf::new(exp_users),
            toots: Ecdf::new(exp_toots),
            boosts: Ecdf::new(exp_boosts),
        };
        let mut bins = bins.into_iter();
        let daily = DailyDowntime {
            per_bin: SizeBin::ALL
                .iter()
                .map(|&b| (b, bins.next().unwrap()))
                .collect(),
            overall,
        };
        let size_correlation = pearson(&corr_toots, &corr_down);

        let total_toots: u64 = self.instances.iter().map(|i| i.toot_count).sum();
        let mut dark = 0i64;
        for d in black_diff.iter_mut() {
            dark += *d;
            *d = dark;
        }
        let worst_day = worst_day_from_histogram(&black_diff, total_toots);

        SweepOutput {
            downtime,
            exposure,
            daily,
            size_correlation,
            outages: durations.finish(),
            worst_day,
            as_table,
        }
    }
}

/// The kept naive §4 reference: the per-schedule module functions composed
/// exactly as the pre-arena pipeline ran them, bundled into the same
/// [`SweepOutput`] so differential tests and `bench_monitor` can compare
/// the engines with one `==`.
pub fn naive_section4(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
    providers: &ProviderCatalog,
    cfg: &SweepConfig,
) -> SweepOutput {
    SweepOutput {
        downtime: downtime_report(schedules),
        exposure: failure_exposure(instances, schedules),
        daily: daily_downtime(instances, schedules, cfg.day_stride),
        size_correlation: size_downtime_correlation(instances, schedules),
        outages: outage_durations(instances, schedules),
        worst_day: worst_day_blackout(instances, schedules),
        as_table: as_failure_table(instances, schedules, providers, cfg.min_as_instances),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::Epoch;
    use fediscope_worldgen::{Generator, WorldConfig};

    #[test]
    fn sweep_matches_naive_on_generated_world() {
        let mut cfg = WorldConfig::tiny(31);
        cfg.n_instances = 300;
        cfg.n_users = 2_000;
        let w = Generator::generate_world(cfg);
        let arena = OutageArena::from_schedules(&w.schedules);
        let sweep_cfg = SweepConfig {
            day_stride: 1,
            min_as_instances: 3,
        };
        let naive = naive_section4(&w.instances, &w.schedules, &w.providers, &sweep_cfg);
        for shards in [1usize, 2, 3, 8] {
            let got = MonitorSweep::new(&arena, &w.instances)
                .with_shards(shards)
                .run(&w.providers, &sweep_cfg);
            assert!(got == naive, "diverged at {shards} shards");
        }
    }

    #[test]
    fn sweep_matches_naive_with_stride() {
        let mut cfg = WorldConfig::tiny(37);
        cfg.n_instances = 150;
        cfg.n_users = 1_000;
        let w = Generator::generate_world(cfg);
        let arena = OutageArena::from_schedules(&w.schedules);
        let sweep_cfg = SweepConfig {
            day_stride: 7,
            min_as_instances: 2,
        };
        let naive = naive_section4(&w.instances, &w.schedules, &w.providers, &sweep_cfg);
        let got = MonitorSweep::new(&arena, &w.instances)
            .with_shards(4)
            .run(&w.providers, &sweep_cfg);
        assert!(got == naive);
    }

    #[test]
    fn empty_world_sweep() {
        let arena = OutageArena::from_schedules(&[]);
        let providers = fediscope_model::geo::ProviderCatalog::with_tail(5);
        let out = MonitorSweep::new(&arena, &[]).run(&providers, &SweepConfig::default());
        assert!(out.downtime.cdf.is_empty());
        assert_eq!(out.worst_day, (Day(0), 0.0));
        assert!(out.as_table.is_empty());
        assert_eq!(out.outages.any_outage_frac, 0.0);
    }

    #[test]
    fn sweep_reproduces_blackout_tie_break() {
        // Two equal-toot instances blacked out on different days: the
        // sharded histogram fold must return the FIRST worst day, like the
        // naive strictly-greater scan.
        use fediscope_model::certs::{Certificate, CertificateAuthority};
        use fediscope_model::geo::Country;
        use fediscope_model::ids::{AsId, InstanceId};
        use fediscope_model::instance::{OperatorKind, Registration, Software};
        use fediscope_model::taxonomy::{CategorySet, PolicySet};
        let mk = |i: u32| Instance {
            id: InstanceId(i),
            domain: format!("i{i}"),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: false,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(1),
            provider_index: 0,
            ip: i,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: 1,
            toot_count: 500,
            boosted_toots: 0,
            active_user_pct: 50.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        };
        let instances = vec![mk(0), mk(1)];
        let mut s0 = AvailabilitySchedule::always_up();
        s0.add_outage(Day(200).start_epoch(), Day(201).start_epoch(), OutageCause::Organic);
        let mut s1 = AvailabilitySchedule::always_up();
        s1.add_outage(Epoch(Day(30).start_epoch().0), Day(31).start_epoch(), OutageCause::Organic);
        let schedules = vec![s0, s1];
        let providers = ProviderCatalog::with_tail(3);
        let arena = OutageArena::from_schedules(&schedules);
        for shards in [1usize, 2] {
            let out = MonitorSweep::new(&arena, &instances)
                .with_shards(shards)
                .run(&providers, &SweepConfig::default());
            assert_eq!(out.worst_day.0, Day(30), "shards {shards}");
            assert!((out.worst_day.1 - 0.5).abs() < 1e-12);
        }
    }
}
