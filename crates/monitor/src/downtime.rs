//! Lifetime downtime distributions and failure exposure (Fig. 7).

use fediscope_model::instance::Instance;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena};
use fediscope_model::time::EPOCHS_PER_DAY;
use fediscope_stats::Ecdf;

/// Per-instance downtime report.
#[derive(Debug, Clone, PartialEq)]
pub struct DowntimeReport {
    /// Downtime fraction per instance (lifetime-normalised), aligned with
    /// the input slice. Instances with less than one day of lifetime are
    /// `None`.
    pub fraction: Vec<Option<f64>>,
    /// ECDF over the defined fractions (the Fig. 7 blue line).
    pub cdf: Ecdf,
}

/// Compute lifetime downtime for every instance.
pub fn downtime_report(schedules: &[AvailabilitySchedule]) -> DowntimeReport {
    let fraction: Vec<Option<f64>> = schedules
        .iter()
        .map(|s| {
            (s.lifetime_epochs() >= EPOCHS_PER_DAY).then(|| s.downtime_fraction())
        })
        .collect();
    let cdf = Ecdf::new(fraction.iter().flatten().copied().collect());
    DowntimeReport { fraction, cdf }
}

/// [`downtime_report`] over the columnar [`OutageArena`]: bit-identical
/// fractions, read from flat interval columns.
pub fn downtime_report_arena(arena: &OutageArena) -> DowntimeReport {
    let fraction: Vec<Option<f64>> = arena
        .views()
        .map(|v| (v.lifetime_epochs() >= EPOCHS_PER_DAY).then(|| v.downtime_fraction()))
        .collect();
    let cdf = Ecdf::new(fraction.iter().flatten().copied().collect());
    DowntimeReport { fraction, cdf }
}

/// Fig. 7's red lines: the exposure of users/toots/boosts to instance
/// failures — for every instance that fails at least once, how many users,
/// toots and boosted toots become unavailable when it goes down.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureExposure {
    /// Users per failing instance.
    pub users: Ecdf,
    /// Toots per failing instance.
    pub toots: Ecdf,
    /// Boosted toots per failing instance.
    pub boosts: Ecdf,
    /// Number of instances that failed at least once.
    pub failing_instances: usize,
}

/// Compute the exposure distributions.
pub fn failure_exposure(
    instances: &[Instance],
    schedules: &[AvailabilitySchedule],
) -> FailureExposure {
    let mut users = Vec::new();
    let mut toots = Vec::new();
    let mut boosts = Vec::new();
    for (inst, sched) in instances.iter().zip(schedules) {
        if sched.outage_count() > 0 {
            users.push(inst.user_count as f64);
            toots.push(inst.toot_count as f64);
            boosts.push(inst.boosted_toots as f64);
        }
    }
    FailureExposure {
        failing_instances: users.len(),
        users: Ecdf::new(users),
        toots: Ecdf::new(toots),
        boosts: Ecdf::new(boosts),
    }
}

/// [`failure_exposure`] over the columnar [`OutageArena`].
pub fn failure_exposure_arena(instances: &[Instance], arena: &OutageArena) -> FailureExposure {
    let mut users = Vec::new();
    let mut toots = Vec::new();
    let mut boosts = Vec::new();
    for (inst, v) in instances.iter().zip(arena.views()) {
        if v.outage_count() > 0 {
            users.push(inst.user_count as f64);
            toots.push(inst.toot_count as f64);
            boosts.push(inst.boosted_toots as f64);
        }
    }
    FailureExposure {
        failing_instances: users.len(),
        users: Ecdf::new(users),
        toots: Ecdf::new(toots),
        boosts: Ecdf::new(boosts),
    }
}

/// Headline §4.4 numbers derived from a [`DowntimeReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DowntimeHeadlines {
    /// Fraction of instances with <5% downtime (paper ≈ 0.5).
    pub below_5pct: f64,
    /// Fraction with >50% downtime (paper ≈ 0.11).
    pub above_50pct: f64,
    /// Fraction with ≥99.5% uptime (paper ≈ 0.045).
    pub high_avail: f64,
    /// Mean downtime (paper ≈ 0.1095).
    pub mean: f64,
}

/// Extract the headlines.
pub fn headlines(report: &DowntimeReport) -> DowntimeHeadlines {
    let vals: Vec<f64> = report.fraction.iter().flatten().copied().collect();
    let n = vals.len().max(1) as f64;
    DowntimeHeadlines {
        below_5pct: vals.iter().filter(|&&d| d < 0.05).count() as f64 / n,
        above_50pct: vals.iter().filter(|&&d| d > 0.5).count() as f64 / n,
        high_avail: vals.iter().filter(|&&d| d <= 0.005).count() as f64 / n,
        mean: vals.iter().sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::{Day, Epoch};

    fn sched_with_downtime(days_down: u32, lifetime_days: u32) -> AvailabilitySchedule {
        let mut s = AvailabilitySchedule::new(Day(0), Some(Day(lifetime_days)));
        s.add_outage(
            Epoch(0),
            Day(days_down).start_epoch(),
            OutageCause::Organic,
        );
        s
    }

    #[test]
    fn fractions_computed() {
        let schedules = vec![
            sched_with_downtime(1, 10), // 10%
            sched_with_downtime(5, 10), // 50%
            AvailabilitySchedule::always_up(),
        ];
        let r = downtime_report(&schedules);
        assert!((r.fraction[0].unwrap() - 0.1).abs() < 1e-9);
        assert!((r.fraction[1].unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(r.fraction[2], Some(0.0));
        assert_eq!(r.cdf.len(), 3);
    }

    #[test]
    fn short_lived_instances_excluded() {
        let s = AvailabilitySchedule::new(Day(0), Some(Day(0)));
        let r = downtime_report(&[s]);
        assert_eq!(r.fraction[0], None);
        assert!(r.cdf.is_empty());
    }

    #[test]
    fn headlines_from_known_mixture() {
        let mut schedules = Vec::new();
        for _ in 0..6 {
            schedules.push(AvailabilitySchedule::always_up()); // 0% downtime
        }
        for _ in 0..3 {
            schedules.push(sched_with_downtime(40, 100)); // 40%
        }
        schedules.push(sched_with_downtime(80, 100)); // 80%
        let h = headlines(&downtime_report(&schedules));
        assert!((h.below_5pct - 0.6).abs() < 1e-9);
        assert!((h.above_50pct - 0.1).abs() < 1e-9);
        assert!((h.high_avail - 0.6).abs() < 1e-9);
        assert!((h.mean - 0.2).abs() < 1e-9);
    }

    #[test]
    fn arena_variants_match_naive_on_generated_world() {
        use fediscope_model::schedule::OutageArena;
        use fediscope_worldgen::{Generator, WorldConfig};
        let mut cfg = WorldConfig::tiny(53);
        cfg.n_instances = 250;
        cfg.n_users = 1_500;
        let w = Generator::generate_world(cfg);
        let arena = OutageArena::from_schedules(&w.schedules);
        assert_eq!(downtime_report_arena(&arena), downtime_report(&w.schedules));
        assert_eq!(
            failure_exposure_arena(&w.instances, &arena),
            failure_exposure(&w.instances, &w.schedules)
        );
    }

    #[test]
    fn exposure_only_counts_failing() {
        use fediscope_model::certs::{Certificate, CertificateAuthority};
        use fediscope_model::geo::Country;
        use fediscope_model::ids::{AsId, InstanceId};
        use fediscope_model::instance::{OperatorKind, Registration, Software};
        use fediscope_model::taxonomy::{CategorySet, PolicySet};
        let mk = |i: u32, users: u32| Instance {
            id: InstanceId(i),
            domain: format!("i{i}"),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: false,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(1),
            provider_index: 0,
            ip: i,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: users,
            toot_count: users as u64 * 10,
            boosted_toots: users as u64,
            active_user_pct: 50.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        };
        let instances = vec![mk(0, 100), mk(1, 7)];
        let mut bad = AvailabilitySchedule::always_up();
        bad.add_outage(Epoch(0), Epoch(10), OutageCause::Organic);
        let schedules = vec![bad, AvailabilitySchedule::always_up()];
        let exp = failure_exposure(&instances, &schedules);
        assert_eq!(exp.failing_instances, 1);
        assert_eq!(exp.users.max(), Some(100.0));
        assert_eq!(exp.toots.max(), Some(1000.0));
    }
}
