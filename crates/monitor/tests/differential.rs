//! Differential tests: the columnar §4 engine (`MonitorSweep` over an
//! `OutageArena`) versus the kept naive per-schedule path, across random
//! worlds × shard counts — every figure, the blackout day, and every
//! Table 1 row must agree bit-for-bit.

use fediscope_model::certs::{Certificate, CertificateAuthority};
use fediscope_model::geo::{Country, ProviderCatalog};
use fediscope_model::ids::{AsId, InstanceId};
use fediscope_model::instance::{Instance, OperatorKind, Registration, Software};
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena, OutageCause};
use fediscope_model::taxonomy::{CategorySet, PolicySet};
use fediscope_model::time::{Day, Epoch};
use fediscope_monitor::{naive_section4, MonitorSweep, SweepConfig};
use proptest::prelude::*;

fn mk_inst(i: u32, users: u32, toots: u64, asn: u32) -> Instance {
    Instance {
        id: InstanceId(i),
        domain: format!("i{i}"),
        software: Software::Mastodon,
        registration: Registration::Open,
        declares_categories: false,
        categories: CategorySet::empty(),
        policies: PolicySet::unstated(),
        country: Country::Japan,
        asn: AsId(asn),
        provider_index: 0,
        ip: i,
        certificate: Certificate {
            ca: CertificateAuthority::LetsEncrypt,
            issued: Day(0),
            auto_renew: true,
        },
        created: Day(0),
        operator: OperatorKind::Individual,
        user_count: users,
        toot_count: toots,
        boosted_toots: toots / 10,
        active_user_pct: 50.0,
        crawl_allowed: true,
        private_toot_frac: 0.0,
    }
}

proptest! {
    /// Random synthetic worlds: per instance a random lifetime, outage
    /// soup, size, and AS assignment (few ASes, so Table 1 groups form);
    /// the sweep must equal the naive reference at 1/2/3/7 shards with
    /// Fig. 8 strides 1 and 11.
    #[test]
    fn sweep_equals_naive_everywhere(
        per_inst in proptest::collection::vec(
            ((0u32..460,          // created day
              0u32..900,          // retired day; ≥472 ⇒ never
              0u64..2_000_000),   // toot count (spans all four size bins)
             (0u32..4,            // AS assignment out of 3 small ASes
              proptest::collection::vec((0u32..135_000, 1u32..20_000), 0..10))),
            0..14),
        stride_pick in 0usize..2,
    ) {
        let mut instances = Vec::new();
        let mut schedules = Vec::new();
        for (i, ((created, retired, toots), (asn, ivs))) in per_inst.into_iter().enumerate() {
            instances.push(mk_inst(i as u32, (toots / 100) as u32 + 1, toots, asn));
            let retired = (retired < 472).then(|| Day(created.max(retired)));
            let mut s = AvailabilitySchedule::new(Day(created), retired);
            for &(start, len) in &ivs {
                s.add_outage(Epoch(start), Epoch(start + len), OutageCause::Organic);
            }
            schedules.push(s);
        }
        let providers = ProviderCatalog::with_tail(6);
        let cfg = SweepConfig {
            day_stride: [1u32, 11][stride_pick],
            min_as_instances: 2,
        };
        let naive = naive_section4(&instances, &schedules, &providers, &cfg);
        let arena = OutageArena::from_schedules(&schedules);
        for shards in [1usize, 2, 3, 7] {
            let got = MonitorSweep::new(&arena, &instances)
                .with_shards(shards)
                .run(&providers, &cfg);
            prop_assert!(got == naive, "diverged at {} shards", shards);
        }
    }
}

/// End-to-end through the measurement side: ground truth → synthetic
/// 5-minute poll feed → batch reconstruction → columnar sweep. The sweep
/// over *observed* data must equal the naive path over the *reconstructed*
/// schedules (observation itself may legitimately differ from ground truth
/// — trailing failures become retirements).
#[test]
fn sweep_on_reconstructed_polls_matches_naive_on_them() {
    use fediscope_monitor::observe::{arena_from_polls, schedules_from_polls};
    use fediscope_worldgen::observatory::SyntheticObservatory;
    use fediscope_worldgen::{Generator, WorldConfig};

    let mut cfg = WorldConfig::tiny(47);
    cfg.n_instances = 40;
    cfg.n_users = 400;
    let w = Generator::generate_world(cfg);

    let obs = SyntheticObservatory::new(&w.schedules);
    let mut feed = Vec::with_capacity(w.schedules.len());
    obs.for_each_series(|_, s| feed.push(s.clone()));

    let reconstructed = schedules_from_polls(&feed);
    let arena = arena_from_polls(&feed);
    assert_eq!(arena, OutageArena::from_schedules(&reconstructed));

    let sweep_cfg = SweepConfig {
        day_stride: 1,
        min_as_instances: 2,
    };
    let naive = naive_section4(&w.instances, &reconstructed, &w.providers, &sweep_cfg);
    for shards in [1usize, 3] {
        let got = MonitorSweep::new(&arena, &w.instances)
            .with_shards(shards)
            .run(&w.providers, &sweep_cfg);
        assert!(got == naive, "observed-data sweep diverged at {shards} shards");
    }
}
