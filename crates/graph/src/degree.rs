//! Degree sequences and their distributions (Fig. 11).

use crate::digraph::DiGraph;

/// Out-degree sequence.
pub fn out_degrees(g: &DiGraph) -> Vec<u32> {
    g.nodes().map(|v| g.out_degree(v)).collect()
}

/// In-degree sequence.
pub fn in_degrees(g: &DiGraph) -> Vec<u32> {
    g.nodes().map(|v| g.in_degree(v)).collect()
}

/// Total-degree sequence.
pub fn total_degrees(g: &DiGraph) -> Vec<u32> {
    g.nodes().map(|v| g.degree(v)).collect()
}

/// Degree distribution as `(degree, count)` pairs sorted by degree.
pub fn degree_histogram(degrees: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    for &d in degrees {
        *counts.entry(d).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Mean degree.
pub fn mean_degree(degrees: &[u32]) -> f64 {
    if degrees.is_empty() {
        return 0.0;
    }
    degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64
}

/// Top `k` nodes by a degree sequence, descending, ties broken by node id
/// ascending (deterministic).
pub fn top_k_by_degree(degrees: &[u32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..degrees.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        degrees[b as usize]
            .cmp(&degrees[a as usize])
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> DiGraph {
        // hub 0 follows 1..=4
        DiGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn sequences() {
        let g = star();
        assert_eq!(out_degrees(&g), vec![4, 0, 0, 0, 0]);
        assert_eq!(in_degrees(&g), vec![0, 1, 1, 1, 1]);
        assert_eq!(total_degrees(&g), vec![4, 1, 1, 1, 1]);
    }

    #[test]
    fn histogram() {
        let g = star();
        assert_eq!(degree_histogram(&out_degrees(&g)), vec![(0, 4), (4, 1)]);
    }

    #[test]
    fn mean() {
        let g = star();
        assert!((mean_degree(&out_degrees(&g)) - 0.8).abs() < 1e-12);
        assert_eq!(mean_degree(&[]), 0.0);
    }

    #[test]
    fn top_k_deterministic_ties() {
        let degrees = vec![3, 5, 5, 1];
        assert_eq!(top_k_by_degree(&degrees, 3), vec![1, 2, 0]);
        assert_eq!(top_k_by_degree(&degrees, 10).len(), 4);
    }
}
