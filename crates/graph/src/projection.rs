//! Quotient-graph projections.
//!
//! The paper derives the instance federation graph `GF(I, E)` from the user
//! follower graph `G(V, E)`: "a directed edge Eab exists between instances
//! Ia and Ib if there is at least one user on Ia who follows a user on Ib"
//! (§3). The same operation with a country partition yields the Fig. 6
//! Sankey weights.

use crate::digraph::DiGraph;

/// Project a graph through a node partition: nodes with the same
/// `partition[v]` collapse into one super-node; an edge exists between two
/// distinct super-nodes if any underlying edge crosses them.
///
/// `n_groups` is the number of super-nodes; every `partition[v]` must be
/// `< n_groups`. Intra-group edges are dropped (federation is only about
/// *remote* links).
pub fn project(g: &DiGraph, partition: &[u32], n_groups: u32) -> DiGraph {
    assert_eq!(partition.len(), g.node_count(), "partition length mismatch");
    let mut edges = Vec::new();
    for (a, b) in g.edges() {
        let ga = partition[a as usize];
        let gb = partition[b as usize];
        assert!(ga < n_groups && gb < n_groups, "partition id out of range");
        if ga != gb {
            edges.push((ga, gb));
        }
    }
    DiGraph::from_edges(n_groups, edges)
}

/// Count the underlying cross-group edges between each pair of groups,
/// i.e. the *weighted* projection. Returns a dense `n_groups × n_groups`
/// row-major matrix where entry `[a][b]` is the number of user-level edges
/// from group `a` to group `b`. Intra-group counts land on the diagonal —
/// Fig. 6 needs them ("32% of federated links are with instances in the same
/// country" refers to instance-level subscriptions whose endpoints share a
/// country).
pub fn projection_weights(g: &DiGraph, partition: &[u32], n_groups: u32) -> Vec<Vec<u64>> {
    assert_eq!(partition.len(), g.node_count(), "partition length mismatch");
    let mut mat = vec![vec![0u64; n_groups as usize]; n_groups as usize];
    for (a, b) in g.edges() {
        let ga = partition[a as usize] as usize;
        let gb = partition[b as usize] as usize;
        mat[ga][gb] += 1;
    }
    mat
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Users 0,1 on instance 0; users 2,3 on instance 1; user 4 on instance 2.
    fn user_graph() -> (DiGraph, Vec<u32>) {
        let g = DiGraph::from_edges(
            5,
            [
                (0, 1), // intra-instance: no federation edge
                (0, 2), // inst0 -> inst1
                (1, 3), // inst0 -> inst1 (same super-edge)
                (3, 4), // inst1 -> inst2
                (4, 0), // inst2 -> inst0
            ],
        );
        let partition = vec![0, 0, 1, 1, 2];
        (g, partition)
    }

    #[test]
    fn project_collapses_and_dedupes() {
        let (g, part) = user_graph();
        let fed = project(&g, &part, 3);
        assert_eq!(fed.node_count(), 3);
        // edges: 0->1, 1->2, 2->0
        assert_eq!(fed.edge_count(), 3);
        assert!(fed.has_edge(0, 1));
        assert!(fed.has_edge(1, 2));
        assert!(fed.has_edge(2, 0));
        assert!(!fed.has_edge(1, 0));
    }

    #[test]
    fn intra_group_edges_dropped() {
        let (g, part) = user_graph();
        let fed = project(&g, &part, 3);
        assert!(!fed.has_edge(0, 0));
    }

    #[test]
    fn weights_count_multiplicity() {
        let (g, part) = user_graph();
        let w = projection_weights(&g, &part, 3);
        assert_eq!(w[0][1], 2); // two user-level edges inst0 -> inst1
        assert_eq!(w[0][0], 1); // the intra-instance follow on the diagonal
        assert_eq!(w[1][2], 1);
        assert_eq!(w[2][0], 1);
        assert_eq!(w[2][1], 0);
    }

    #[test]
    fn projection_of_empty_graph() {
        let g = DiGraph::from_edges(0, []);
        let fed = project(&g, &[], 4);
        assert_eq!(fed.node_count(), 4);
        assert_eq!(fed.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_partition_length_panics() {
        let g = DiGraph::from_edges(2, [(0, 1)]);
        let _ = project(&g, &[0], 1);
    }

    #[test]
    fn two_level_projection_composes() {
        // users -> instances -> countries
        let (g, user_to_inst) = user_graph();
        let fed = project(&g, &user_to_inst, 3);
        // instances 0,1 in country 0; instance 2 in country 1
        let inst_to_country = vec![0u32, 0, 1];
        let country = project(&fed, &inst_to_country, 2);
        assert!(country.has_edge(0, 1));
        assert!(country.has_edge(1, 0));
        assert_eq!(country.edge_count(), 2);
    }
}
