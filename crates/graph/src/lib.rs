//! # fediscope-graph
//!
//! Directed-graph substrate for the fediscope toolkit, written from scratch
//! (no petgraph): compressed sparse-row storage, connected components, degree
//! statistics, and the node-removal resilience sweeps of §5.1 of the paper.
//!
//! Nodes are dense `u32` indices; callers keep their own `UserId`/
//! `InstanceId` ↔ node mappings (they are dense already, so the mapping is
//! the identity in practice).
//!
//! - [`DiGraph`] / [`GraphBuilder`]: CSR storage with out- and in-adjacency,
//! - [`components`]: weakly connected components via union-find, strongly
//!   connected components via an iterative Tarjan,
//! - [`degree`]: degree sequences and CDFs (Fig. 11),
//! - [`removal`]: iterative top-degree removal (Fig. 12) and ranked/grouped
//!   removal sweeps (Fig. 13) — incremental, allocation-free engines with a
//!   naive reference kept for differential testing (see `README.md` for the
//!   complexity model),
//! - [`par`]: deterministic parallel fan-out for independent sweeps,
//! - [`par_unionfind`]: shard-and-merge union-find — parallelism *inside*
//!   one connectivity evaluation, with bit-identical output at any thread
//!   count,
//! - [`projection`]: quotient graphs (user graph → instance federation
//!   graph → country graph; Figs. 6, 13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod degree;
pub mod digraph;
pub mod par;
pub mod par_unionfind;
pub mod projection;
pub mod removal;
pub mod unionfind;

pub use components::{
    strongly_connected, weakly_connected, ComponentInfo, ComponentScratch, WccSummary,
};
pub use digraph::{DiGraph, GraphBuilder};
pub use par_unionfind::{parallel_wcc, EpochUnionFind, ParBatchUnion, ParWccSummary};
pub use removal::{RemovalSweep, SweepPoint};
pub use unionfind::{UnionFind, WeightedUnionFind};
