//! Disjoint-set union with path compression and union by size.

/// Union-find over `0..n`.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Reinitialise to `n` singleton sets, reusing the existing buffers
    /// (no allocation once grown to `n`).
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.size.clear();
        self.size.resize(n, 1);
        self.components = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Total number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the largest set (0 when empty).
    pub fn largest(&mut self) -> u32 {
        let n = self.len() as u32;
        let mut best = 0;
        for x in 0..n {
            if self.find(x) == x {
                best = best.max(self.size[x as usize]);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert_eq!(uf.size_of(3), 1);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.size_of(0), 2);
    }

    #[test]
    fn transitive_connection() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.connected(0, 3));
        assert_eq!(uf.size_of(3), 4);
        assert_eq!(uf.largest(), 4);
        assert_eq!(uf.component_count(), 3); // {0,1,2,3} {4} {5}
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        assert_eq!(uf.largest(), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// component_count + merges == n, and find is idempotent.
        #[test]
        fn count_invariant(edges in proptest::collection::vec((0u32..50, 0u32..50), 0..100)) {
            let mut uf = UnionFind::new(50);
            let mut merges = 0;
            for &(a, b) in &edges {
                if uf.union(a, b) {
                    merges += 1;
                }
            }
            prop_assert_eq!(uf.component_count(), 50 - merges);
            for x in 0..50u32 {
                let r = uf.find(x);
                prop_assert_eq!(uf.find(r), r);
            }
            // sizes of roots sum to n
            let mut total = 0u32;
            for x in 0..50u32 {
                if uf.find(x) == x {
                    total += uf.size_of(x);
                }
            }
            prop_assert_eq!(total, 50);
        }
    }
}
