//! Disjoint-set union with path compression and union by size, plus a
//! weight-carrying variant used by the reverse removal sweeps.

/// Union-find over `0..n`.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Reinitialise to `n` singleton sets, reusing the existing buffers
    /// (no allocation once grown to `n`).
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.size.clear();
        self.size.resize(n, 1);
        self.components = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Representative of `x`'s set **without** path compression — usable
    /// through a shared reference, so read-only consumers (the sharded
    /// edge-scan workers of `par_unionfind`) can query a forest that
    /// another phase owns mutably. The walk is `O(depth)`; depth stays
    /// near-constant in practice because every mutating operation halves
    /// paths as it goes.
    pub fn find_root(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Total number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the largest set (0 when empty).
    pub fn largest(&mut self) -> u32 {
        let n = self.len() as u32;
        let mut best = 0;
        for x in 0..n {
            if self.find(x) == x {
                best = best.max(self.size[x as usize]);
            }
        }
        best
    }
}

/// Union-find that additionally carries one `f64` accumulator per root —
/// the total caller-provided weight of the set.
///
/// This is what lets the reverse (additive) removal sweeps report the
/// *weighted* LCC (Fig. 13's user- and toot-normalised curves) in the same
/// near-linear pass that produces the sizes: each merge folds the two root
/// accumulators together, so reading any component's weight is `O(α)`.
///
/// The accumulator is a plain running sum, so its value can differ from a
/// node-order summation by floating-point association. With integer-valued
/// weights (user counts, toot counts — everything this repo sweeps) every
/// partial sum below 2^53 is exact and the association order is
/// unobservable.
///
/// Constructed with an empty weight slice, the structure degrades to a
/// plain [`UnionFind`] and skips all weight bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct WeightedUnionFind {
    uf: UnionFind,
    weight: Vec<f64>,
}

impl WeightedUnionFind {
    /// `weights.len()` singleton sets, each starting at its own weight.
    pub fn new(weights: &[f64]) -> Self {
        Self {
            uf: UnionFind::new(weights.len()),
            weight: weights.to_vec(),
        }
    }

    /// `n` singleton sets with no weight tracking ([`Self::weight_of`]
    /// returns 0 everywhere).
    pub fn unweighted(n: usize) -> Self {
        Self {
            uf: UnionFind::new(n),
            weight: Vec::new(),
        }
    }

    /// Whether weight accumulators are being maintained.
    pub fn is_weighted(&self) -> bool {
        !self.weight.is_empty()
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        self.uf.find(x)
    }

    /// Read-only representative lookup (no path compression); see
    /// [`UnionFind::find_root`].
    pub fn find_root(&self, x: u32) -> u32 {
        self.uf.find_root(x)
    }

    /// Merge the sets of `a` and `b`. Returns `Some((root, merged_weight))`
    /// when they were distinct (`merged_weight` is 0 when unweighted).
    pub fn union(&mut self, a: u32, b: u32) -> Option<(u32, f64)> {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return None;
        }
        let merged = if self.weight.is_empty() {
            0.0
        } else {
            self.weight[ra as usize] + self.weight[rb as usize]
        };
        self.uf.union(a, b);
        let root = self.uf.find(a);
        if !self.weight.is_empty() {
            self.weight[root as usize] = merged;
        }
        Some((root, merged))
    }

    /// Total weight of the set containing `x` (0 when unweighted).
    pub fn weight_of(&mut self, x: u32) -> f64 {
        if self.weight.is_empty() {
            return 0.0;
        }
        let r = self.uf.find(x);
        self.weight[r as usize]
    }

    /// Size (node count) of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> u32 {
        self.uf.size_of(x)
    }

    /// Total number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.uf.component_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_union_accumulates() {
        let mut uf = WeightedUnionFind::new(&[1.0, 2.0, 4.0, 8.0]);
        assert!(uf.is_weighted());
        let (_, w) = uf.union(0, 1).unwrap();
        assert_eq!(w, 3.0);
        assert_eq!(uf.weight_of(1), 3.0);
        assert!(uf.union(1, 0).is_none());
        let (root, w) = uf.union(2, 3).unwrap();
        assert_eq!(w, 12.0);
        assert_eq!(uf.weight_of(root), 12.0);
        let (_, w) = uf.union(0, 3).unwrap();
        assert_eq!(w, 15.0);
        assert_eq!(uf.size_of(2), 4);
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn unweighted_variant_reports_zero_weight() {
        let mut uf = WeightedUnionFind::unweighted(3);
        assert!(!uf.is_weighted());
        let (_, w) = uf.union(0, 2).unwrap();
        assert_eq!(w, 0.0);
        assert_eq!(uf.weight_of(0), 0.0);
        assert_eq!(uf.size_of(0), 2);
        assert_eq!(uf.find(0), uf.find(2));
    }

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert_eq!(uf.size_of(3), 1);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.size_of(0), 2);
    }

    #[test]
    fn find_root_agrees_with_find() {
        let mut uf = UnionFind::new(8);
        for (a, b) in [(0u32, 1), (1, 2), (3, 4), (2, 4), (6, 7)] {
            uf.union(a, b);
        }
        for x in 0..8u32 {
            assert_eq!(uf.find_root(x), uf.find(x), "node {x}");
        }
        let mut wuf = WeightedUnionFind::new(&[1.0; 6]);
        wuf.union(0, 5);
        wuf.union(5, 3);
        assert_eq!(wuf.find_root(0), wuf.find(3));
    }

    #[test]
    fn transitive_connection() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.connected(0, 3));
        assert_eq!(uf.size_of(3), 4);
        assert_eq!(uf.largest(), 4);
        assert_eq!(uf.component_count(), 3); // {0,1,2,3} {4} {5}
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        assert_eq!(uf.largest(), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// component_count + merges == n, and find is idempotent.
        #[test]
        fn count_invariant(edges in proptest::collection::vec((0u32..50, 0u32..50), 0..100)) {
            let mut uf = UnionFind::new(50);
            let mut merges = 0;
            for &(a, b) in &edges {
                if uf.union(a, b) {
                    merges += 1;
                }
            }
            prop_assert_eq!(uf.component_count(), 50 - merges);
            for x in 0..50u32 {
                let r = uf.find(x);
                prop_assert_eq!(uf.find(r), r);
            }
            // sizes of roots sum to n
            let mut total = 0u32;
            for x in 0..50u32 {
                if uf.find(x) == x {
                    total += uf.size_of(x);
                }
            }
            prop_assert_eq!(total, 50);
        }

        /// A root's weight accumulator always equals the sum of its
        /// members' initial weights (integer weights: exact equality).
        #[test]
        fn weights_track_membership(
            edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
            raw in proptest::collection::vec(0u32..1000, 40)
        ) {
            let weights: Vec<f64> = raw.iter().map(|&w| w as f64).collect();
            let mut uf = WeightedUnionFind::new(&weights);
            for &(a, b) in &edges {
                uf.union(a, b);
            }
            let mut by_root = vec![0.0f64; 40];
            for x in 0..40u32 {
                let r = uf.find(x);
                by_root[r as usize] += weights[x as usize];
            }
            for x in 0..40u32 {
                let r = uf.find(x);
                prop_assert_eq!(uf.weight_of(x), by_root[r as usize]);
            }
        }
    }
}
