//! Deterministic parallel fan-out helpers.
//!
//! The resilience analyses run several *independent* sweeps (Fig. 12's
//! Mastodon vs. Twitter attack, Fig. 13's four ranked/grouped orders,
//! random-baseline Monte-Carlo trials). These helpers run such independent
//! jobs on OS threads via `std::thread::scope`.
//!
//! The signatures intentionally mirror `rayon::join` / a slice `map`, so
//! swapping in rayon (unavailable in this offline build environment — see
//! the workspace manifest's vendor notes) is a mechanical change. Results
//! are returned **in input order** regardless of scheduling, so any
//! seed-derived output is reproducible run-over-run.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Explicit thread-count override (0 = follow the machine), set by
/// [`set_thread_override`]. Bench bins use this to pin `--threads N`
/// runs; library code never writes it.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker-thread budget process-wide (`None` restores the
/// machine default). Intended for bench/CLI drivers that want to record
/// wall-clock at a pinned thread count; the engines' output is
/// bit-identical at any setting, so this only affects scheduling.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Run two closures, potentially in parallel, returning both results.
///
/// `b` runs on a spawned scoped thread while `a` runs on the caller's
/// thread, so the call adds at most one thread of overhead and never
/// deadlocks under nesting.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        // Re-raise the worker's own panic payload so assertion messages
        // from fanned-out jobs survive the thread boundary.
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Number of worker threads used by [`parallel_map`] and
/// [`parallel_map_with`]: the machine's available parallelism, unless
/// pinned via [`set_thread_override`].
pub fn thread_budget() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        t => t,
    }
}

/// Map `f` over `items` on up to [`thread_budget`] threads, returning
/// results in input order (deterministic regardless of scheduling).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_budget().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    // Interleaved assignment balances heavy-tailed workloads better than
    // contiguous chunking; each worker writes into its own slot vector and
    // the slots are stitched back in input order afterwards.
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for slots in &mut per_worker {
        for (i, r) in slots.drain(..) {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

/// [`parallel_map`] with one caller-owned scratch per worker: worker `w`
/// gets exclusive `&mut` access to `scratches[w]` for the whole call, so
/// expensive working memory (e.g. a graph-sized union-find arena) is
/// allocated once and reused across every item that worker processes —
/// and across repeated calls.
///
/// At most `scratches.len()` workers run. Results are returned **in input
/// order**; each item's result must not depend on *which* scratch
/// processed it (the contract is that `f` fully re-initialises whatever
/// scratch state it reads), so output never depends on scheduling.
pub fn parallel_map_with<S, T, R, F>(scratches: &mut [S], items: &[T], f: F) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, &T) -> R + Sync,
{
    assert!(!scratches.is_empty(), "need at least one scratch");
    let workers = scratches.len().min(items.len()).max(1);
    if workers <= 1 || items.len() <= 1 {
        let s = &mut scratches[0];
        return items.iter().map(|item| f(s, item)).collect();
    }
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = scratches[..workers]
            .iter_mut()
            .enumerate()
            .map(|(w, scratch)| {
                s.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, item)| (i, f(scratch, item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for slots in &mut per_worker {
        for (i, r) in slots.drain(..) {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_nests() {
        let ((a, b), c) = join(|| join(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_with_reuses_scratches_in_order() {
        // Each worker's scratch accumulates privately; results come back
        // in input order regardless of the worker interleave.
        let items: Vec<u64> = (0..101).collect();
        for workers in [1usize, 2, 5] {
            let mut scratches = vec![0u64; workers];
            let out = parallel_map_with(&mut scratches, &items, |acc, &x| {
                *acc += 1;
                x * 2
            });
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
            // every item was processed exactly once, across all scratches
            assert_eq!(scratches.iter().sum::<u64>(), items.len() as u64);
        }
    }

    #[test]
    fn parallel_map_with_empty_items() {
        let mut scratches = vec![(); 3];
        let out: Vec<u32> = parallel_map_with(&mut scratches, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_override_round_trips() {
        // No other test in this binary touches the override, and this test
        // restores the default before returning.
        set_thread_override(Some(3));
        assert_eq!(thread_budget(), 3);
        set_thread_override(None);
        assert!(thread_budget() >= 1);
    }
}
