//! Deterministic parallel fan-out helpers.
//!
//! The resilience analyses run several *independent* sweeps (Fig. 12's
//! Mastodon vs. Twitter attack, Fig. 13's four ranked/grouped orders,
//! random-baseline Monte-Carlo trials). These helpers run such independent
//! jobs on OS threads via `std::thread::scope`.
//!
//! The signatures intentionally mirror `rayon::join` / a slice `map`, so
//! swapping in rayon (unavailable in this offline build environment — see
//! the workspace manifest's vendor notes) is a mechanical change. Results
//! are returned **in input order** regardless of scheduling, so any
//! seed-derived output is reproducible run-over-run.

use std::num::NonZeroUsize;

/// Run two closures, potentially in parallel, returning both results.
///
/// `b` runs on a spawned scoped thread while `a` runs on the caller's
/// thread, so the call adds at most one thread of overhead and never
/// deadlocks under nesting.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        // Re-raise the worker's own panic payload so assertion messages
        // from fanned-out jobs survive the thread boundary.
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Number of worker threads used by [`parallel_map`].
pub fn thread_budget() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `items` on up to [`thread_budget`] threads, returning
/// results in input order (deterministic regardless of scheduling).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_budget().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    // Interleaved assignment balances heavy-tailed workloads better than
    // contiguous chunking; each worker writes into its own slot vector and
    // the slots are stitched back in input order afterwards.
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for slots in &mut per_worker {
        for (i, r) in slots.drain(..) {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_nests() {
        let ((a, b), c) = join(|| join(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }
}
