//! Connected components: weak (union-find) and strong (iterative Tarjan).
//!
//! The paper's resilience metrics are (i) the size of the Largest Connected
//! Component and (ii) the number of components, computed on graphs with
//! nodes progressively removed (Figs. 12, 13). Both are supported over an
//! `alive` mask so the removal sweeps do not need to rebuild the CSR.
//!
//! Callers that evaluate components repeatedly over the same graph can use
//! [`ComponentScratch`], which keeps every working buffer (union-find
//! arrays, label tables, Tarjan stacks, weight accumulators) alive across
//! evaluations so the steady-state hot path performs **zero heap
//! allocations per round**. The one-shot [`weakly_connected`] /
//! [`strongly_connected`] functions are thin wrappers over a fresh scratch
//! and produce byte-for-byte the same labels and sizes. (The removal
//! sweeps themselves now evaluate all rounds in one reverse union-find
//! pass — see `removal.rs` — and only reach for per-round passes when SCC
//! counts are requested.)
//!
//! For headline numbers only (LCC size / count / heaviest weight) on big
//! graphs, [`crate::par_unionfind::parallel_wcc`] computes the same
//! metrics through the sharded edge scan — `O((N+E)/threads)` wall-clock
//! — without materialising labels; this serial labelling path is kept
//! untouched as the differential baseline the parallel engine is tested
//! against.

use crate::digraph::DiGraph;
use crate::unionfind::UnionFind;

/// Labelled components of a (masked) graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentInfo {
    /// Component label per node (`u32::MAX` for removed nodes).
    pub labels: Vec<u32>,
    /// Size (node count) per component label.
    pub sizes: Vec<u32>,
}

impl ComponentInfo {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 when none).
    pub fn largest(&self) -> u32 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Label of the largest component, if any.
    pub fn largest_label(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i as u32)
    }

    /// Sum of `weights` over the nodes of the *heaviest* component.
    ///
    /// Fig. 13 measures the LCC both by instances (unweighted) and by the
    /// users those instances host (weighted); the paper's "LCC covers 96% of
    /// users" style numbers come from here.
    pub fn largest_weight(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.labels.len(), "weight length mismatch");
        let mut acc = vec![0.0; self.sizes.len()];
        for (node, &label) in self.labels.iter().enumerate() {
            if label != u32::MAX {
                acc[label as usize] += weights[node];
            }
        }
        acc.into_iter().fold(0.0, f64::max)
    }

    /// Fraction of alive nodes inside the largest component.
    pub fn largest_fraction(&self) -> f64 {
        let alive: u32 = self.sizes.iter().sum();
        if alive == 0 {
            return 0.0;
        }
        self.largest() as f64 / alive as f64
    }
}

/// Reusable working memory for repeated component computations.
///
/// All buffers grow to the graph size on first use and are then recycled:
/// after warm-up, [`ComponentScratch::weakly_connected`],
/// [`ComponentScratch::largest_weight`], and
/// [`ComponentScratch::strongly_connected_count`] allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct ComponentScratch {
    // union-find over node ids
    uf: UnionFind,
    // per-node compact component label (u32::MAX = removed)
    labels: Vec<u32>,
    // per-label component size
    sizes: Vec<u32>,
    // root -> compact label (u32::MAX = unassigned), reset per run
    label_of_root: Vec<u32>,
    // per-label weight accumulator for largest_weight
    weight_acc: Vec<f64>,
    // iterative Tarjan state
    tarjan_index: Vec<u32>,
    tarjan_lowlink: Vec<u32>,
    tarjan_on_stack: Vec<bool>,
    tarjan_stack: Vec<u32>,
    tarjan_work: Vec<(u32, usize)>,
    // SCC labelling output (separate from the WCC label buffers so a
    // weak/strong evaluation pair can share one scratch)
    scc_labels: Vec<u32>,
    scc_sizes: Vec<u32>,
}

/// Headline numbers of one weak-components run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WccSummary {
    /// Size of the largest component (0 when no node is alive).
    pub largest: u32,
    /// Number of components.
    pub count: usize,
}

impl ComponentScratch {
    /// Fresh, empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Weakly connected components of the `alive`-induced subgraph.
    ///
    /// Labels and sizes are left in the scratch (see [`Self::labels`] /
    /// [`Self::sizes`]) for follow-up queries; the return value carries the
    /// two numbers every caller wants. Identical output to
    /// [`weakly_connected`].
    pub fn weakly_connected(&mut self, g: &DiGraph, alive: Option<&[bool]>) -> WccSummary {
        let n = g.node_count();
        if let Some(mask) = alive {
            assert_eq!(mask.len(), n, "mask length mismatch");
        }
        let is_alive = |v: u32| alive.is_none_or(|m| m[v as usize]);

        self.uf.reset(n);
        for (a, b) in g.edges() {
            if is_alive(a) && is_alive(b) {
                self.uf.union(a, b);
            }
        }

        // Assign compact labels to alive roots, in node order (the same
        // first-encounter order the one-shot implementation produces).
        self.labels.clear();
        self.labels.resize(n, u32::MAX);
        self.sizes.clear();
        self.label_of_root.clear();
        self.label_of_root.resize(n, u32::MAX);
        let mut largest = 0u32;
        for v in 0..n as u32 {
            if !is_alive(v) {
                continue;
            }
            let r = self.uf.find(v);
            let mut label = self.label_of_root[r as usize];
            if label == u32::MAX {
                label = self.sizes.len() as u32;
                self.label_of_root[r as usize] = label;
                self.sizes.push(0);
            }
            self.labels[v as usize] = label;
            self.sizes[label as usize] += 1;
            largest = largest.max(self.sizes[label as usize]);
        }
        WccSummary {
            largest,
            count: self.sizes.len(),
        }
    }

    /// Component labels of the most recent run (`u32::MAX` = removed).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Component sizes of the most recent run.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Weight of the heaviest component of the most recent
    /// [`Self::weakly_connected`] run. Accumulation order matches
    /// [`ComponentInfo::largest_weight`] exactly, so results are
    /// bit-identical.
    pub fn largest_weight(&mut self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.labels.len(), "weight length mismatch");
        self.weight_acc.clear();
        self.weight_acc.resize(self.sizes.len(), 0.0);
        for (node, &label) in self.labels.iter().enumerate() {
            if label != u32::MAX {
                self.weight_acc[label as usize] += weights[node];
            }
        }
        self.weight_acc.iter().copied().fold(0.0, f64::max)
    }

    /// Number of strongly connected components of the `alive`-induced
    /// subgraph (iterative Tarjan over recycled stacks). The full
    /// labelling is left in internal SCC buffers; the one-shot
    /// [`strongly_connected`] function is a thin wrapper over this, so
    /// there is exactly one Tarjan implementation in the crate.
    pub fn strongly_connected_count(&mut self, g: &DiGraph, alive: Option<&[bool]>) -> usize {
        let n = g.node_count();
        if let Some(mask) = alive {
            assert_eq!(mask.len(), n, "mask length mismatch");
        }
        let is_alive = |v: u32| alive.is_none_or(|m| m[v as usize]);

        const UNVISITED: u32 = u32::MAX;
        self.tarjan_index.clear();
        self.tarjan_index.resize(n, UNVISITED);
        self.tarjan_lowlink.clear();
        self.tarjan_lowlink.resize(n, 0);
        self.tarjan_on_stack.clear();
        self.tarjan_on_stack.resize(n, false);
        self.tarjan_stack.clear();
        self.tarjan_work.clear();
        self.scc_labels.clear();
        self.scc_labels.resize(n, u32::MAX);
        self.scc_sizes.clear();

        let index = &mut self.tarjan_index;
        let lowlink = &mut self.tarjan_lowlink;
        let on_stack = &mut self.tarjan_on_stack;
        let stack = &mut self.tarjan_stack;
        let work = &mut self.tarjan_work;
        let labels = &mut self.scc_labels;
        let sizes = &mut self.scc_sizes;
        let mut next_index = 0u32;

        for start in 0..n as u32 {
            if !is_alive(start) || index[start as usize] != UNVISITED {
                continue;
            }
            work.push((start, 0));
            index[start as usize] = next_index;
            lowlink[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some(&mut (v, ref mut off)) = work.last_mut() {
                let neighbors = g.out_neighbors(v);
                let mut advanced = false;
                while *off < neighbors.len() {
                    let w = neighbors[*off];
                    *off += 1;
                    if !is_alive(w) {
                        continue;
                    }
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        work.push((w, 0));
                        advanced = true;
                        break;
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                }
                if advanced {
                    continue;
                }
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let label = sizes.len() as u32;
                    sizes.push(0);
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        labels[w as usize] = label;
                        sizes[label as usize] += 1;
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
        sizes.len()
    }
}

/// Weakly connected components of the subgraph induced by `alive` nodes.
///
/// Edge direction is ignored. Pass `None` for the full graph. One-shot
/// wrapper over [`ComponentScratch`]; use the scratch directly in hot loops.
pub fn weakly_connected(g: &DiGraph, alive: Option<&[bool]>) -> ComponentInfo {
    let mut scratch = ComponentScratch::new();
    scratch.weakly_connected(g, alive);
    ComponentInfo {
        labels: std::mem::take(&mut scratch.labels),
        sizes: std::mem::take(&mut scratch.sizes),
    }
}

/// Strongly connected components of the subgraph induced by `alive` nodes,
/// via an iterative Tarjan (explicit stack; safe on 1M-node graphs).
/// One-shot wrapper over [`ComponentScratch::strongly_connected_count`];
/// use the scratch directly in hot loops.
pub fn strongly_connected(g: &DiGraph, alive: Option<&[bool]>) -> ComponentInfo {
    let mut scratch = ComponentScratch::new();
    scratch.strongly_connected_count(g, alive);
    ComponentInfo {
        labels: std::mem::take(&mut scratch.scc_labels),
        sizes: std::mem::take(&mut scratch.scc_sizes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcc_two_islands() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let c = weakly_connected(&g, None);
        assert_eq!(c.count(), 2);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
    }

    #[test]
    fn wcc_ignores_direction() {
        let g = DiGraph::from_edges(3, [(1, 0), (1, 2)]);
        let c = weakly_connected(&g, None);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest(), 3);
    }

    #[test]
    fn wcc_masked_removal_splits() {
        // 0 - 1 - 2: removing node 1 disconnects 0 and 2.
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let alive = vec![true, false, true];
        let c = weakly_connected(&g, Some(&alive));
        assert_eq!(c.count(), 2);
        assert_eq!(c.largest(), 1);
        assert_eq!(c.labels[1], u32::MAX);
    }

    #[test]
    fn scc_cycle_detected() {
        // cycle 0->1->2->0 plus a pendant 2->3
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = strongly_connected(&g, None);
        assert_eq!(c.count(), 2);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[1], c.labels[2]);
        assert_ne!(c.labels[3], c.labels[0]);
    }

    #[test]
    fn scc_dag_is_all_singletons() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let c = strongly_connected(&g, None);
        assert_eq!(c.count(), 4);
        assert_eq!(c.largest(), 1);
    }

    #[test]
    fn scc_masked() {
        // two 2-cycles joined by a mask-removed node
        let g = DiGraph::from_edges(5, [(0, 1), (1, 0), (3, 4), (4, 3), (1, 2), (2, 3)]);
        let alive = vec![true, true, false, true, true];
        let c = strongly_connected(&g, Some(&alive));
        assert_eq!(c.count(), 2);
        assert_eq!(c.largest(), 2);
    }

    #[test]
    fn largest_weight_uses_weights_not_counts() {
        // component {0,1} (2 nodes, weight 1) vs {2} (1 node, weight 100)
        let g = DiGraph::from_edges(3, [(0, 1)]);
        let c = weakly_connected(&g, None);
        let w = c.largest_weight(&[0.5, 0.5, 100.0]);
        assert_eq!(w, 100.0);
        assert_eq!(c.largest(), 2); // by count, the pair wins
    }

    #[test]
    fn largest_fraction_on_empty_mask() {
        let g = DiGraph::from_edges(2, [(0, 1)]);
        let alive = vec![false, false];
        let c = weakly_connected(&g, Some(&alive));
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest_fraction(), 0.0);
        assert_eq!(c.largest_label(), None);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // A 200k-node path would overflow a recursive Tarjan.
        let n = 200_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n, edges);
        let scc = strongly_connected(&g, None);
        assert_eq!(scc.count(), n as usize);
        let wcc = weakly_connected(&g, None);
        assert_eq!(wcc.count(), 1);
    }

    #[test]
    fn big_cycle_single_scc() {
        let n = 100_000u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = DiGraph::from_edges(n, edges);
        let scc = strongly_connected(&g, None);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.largest(), n);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive WCC by BFS for cross-checking.
    fn naive_wcc(n: u32, edges: &[(u32, u32)], alive: &[bool]) -> Vec<u32> {
        let mut adj = vec![Vec::new(); n as usize];
        for &(a, b) in edges {
            if a != b && alive[a as usize] && alive[b as usize] {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        let mut label = vec![u32::MAX; n as usize];
        let mut next = 0;
        for s in 0..n {
            if !alive[s as usize] || label[s as usize] != u32::MAX {
                continue;
            }
            let mut queue = vec![s];
            label[s as usize] = next;
            while let Some(v) = queue.pop() {
                for &w in &adj[v as usize] {
                    if label[w as usize] == u32::MAX {
                        label[w as usize] = next;
                        queue.push(w);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// Is there a directed path u -> v through alive nodes? (for SCC check)
    fn reachable(g: &DiGraph, alive: &[bool], u: u32, v: u32) -> bool {
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![u];
        seen[u as usize] = true;
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            for &w in g.out_neighbors(x) {
                if alive[w as usize] && !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    proptest! {
        /// union-find WCC agrees with BFS on partition structure.
        #[test]
        fn wcc_matches_bfs(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..120),
            alive in proptest::collection::vec(any::<bool>(), 25)
        ) {
            let g = DiGraph::from_edges(25, edges.clone());
            let ours = weakly_connected(&g, Some(&alive));
            let naive = naive_wcc(25, &edges, &alive);
            // same-partition iff same-label in both.
            for a in 0..25usize {
                for b in 0..25usize {
                    if !alive[a] || !alive[b] { continue; }
                    let same_ours = ours.labels[a] == ours.labels[b];
                    let same_naive = naive[a] == naive[b];
                    prop_assert_eq!(same_ours, same_naive, "nodes {} {}", a, b);
                }
            }
        }

        /// Tarjan SCC: u,v share a component iff mutually reachable.
        #[test]
        fn scc_matches_reachability(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..60),
            alive in proptest::collection::vec(any::<bool>(), 12)
        ) {
            let g = DiGraph::from_edges(12, edges);
            let scc = strongly_connected(&g, Some(&alive));
            for a in 0..12u32 {
                for b in 0..12u32 {
                    if !alive[a as usize] || !alive[b as usize] { continue; }
                    let same = scc.labels[a as usize] == scc.labels[b as usize];
                    let mutual = reachable(&g, &alive, a, b) && reachable(&g, &alive, b, a);
                    prop_assert_eq!(same, mutual, "nodes {} {}", a, b);
                }
            }
        }

        /// Component sizes sum to the number of alive nodes.
        #[test]
        fn sizes_sum(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
            alive in proptest::collection::vec(any::<bool>(), 30)
        ) {
            let g = DiGraph::from_edges(30, edges);
            let alive_count = alive.iter().filter(|&&x| x).count() as u32;
            let wcc = weakly_connected(&g, Some(&alive));
            let scc = strongly_connected(&g, Some(&alive));
            prop_assert_eq!(wcc.sizes.iter().sum::<u32>(), alive_count);
            prop_assert_eq!(scc.sizes.iter().sum::<u32>(), alive_count);
        }
    }
}
