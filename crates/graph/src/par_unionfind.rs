//! Shard-and-merge union-find: parallelism *inside* one connectivity
//! evaluation.
//!
//! PRs 1–3 made the resilience sweeps evaluate every round out of one
//! reverse union-find pass — which left a serial `O(N+E)` floor per sweep
//! (ROADMAP "intra-round parallelism"). This module breaks that floor:
//!
//! 1. **Shard.** The edge scan of a batch of re-added nodes is split into
//!    chunks of roughly equal edge work. Each chunk is processed by a
//!    worker that resolves both endpoints to their *current global roots*
//!    (read-only [`UnionFind::find_root`] walks on the shared forest —
//!    the global structure is never written while workers run) and unions
//!    the root pairs into a thread-local [`EpochUnionFind`].
//! 2. **Merge.** Each chunk emits only its *survivor* edges — the pairs
//!    that actually joined two locally-distinct components (a spanning
//!    forest of the chunk, never larger than the chunk's distinct root
//!    set). The survivor lists are then applied to the global forest in
//!    chunk order, a deterministic reduction bounded by
//!    `O(M·α·shards)` for `M` true merges (each real merge can be
//!    rediscovered by at most every shard).
//!
//! The chunk layout depends only on the batch (a fixed edge-work target,
//! never the thread count), and survivor lists are applied in chunk
//! order, so the merged forest — and every metric derived from it (LCC
//! size, component count, per-root weight mass) — is **bit-identical at
//! any thread count**, including the float weight accumulators: the same
//! union sequence runs no matter how many workers executed the scan.
//! Relative to the *serial* engine the union sequence may differ (shards
//! dedup locally), which is observable only through float association in
//! the weight sums — exact for the integer-valued user/toot counts every
//! analysis sweeps, as pinned by the differential proptests below.

use crate::digraph::DiGraph;
use crate::par;
use crate::unionfind::WeightedUnionFind;

/// An epoch-stamped union-find over `0..n` with `O(1)` reset: a node
/// whose stamp is stale is implicitly a singleton, so clearing the
/// structure between batches costs one counter bump instead of an
/// `O(n)` re-fill. Workers keep one of these per thread and reuse it for
/// every chunk they process.
#[derive(Debug, Clone, Default)]
pub struct EpochUnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochUnionFind {
    /// Structure over `0..n`, initially all singletons.
    pub fn new(n: usize) -> Self {
        Self {
            parent: vec![0; n],
            size: vec![0; n],
            stamp: vec![0; n],
            // Stamps start at 0, so the live epoch must not: a node is a
            // singleton until its stamp catches up to the current epoch.
            epoch: 1,
        }
    }

    /// Forget every union in `O(1)` (amortised: a full stamp flush runs
    /// once every `u32::MAX` resets).
    pub fn reset(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    #[inline]
    fn ensure(&mut self, x: u32) {
        if self.stamp[x as usize] != self.epoch {
            self.stamp[x as usize] = self.epoch;
            self.parent[x as usize] = x;
            self.size[x as usize] = 1;
        }
    }

    /// Representative of `x`'s set this epoch (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        self.ensure(x);
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }
}

/// Which adjacency slices a batch scan visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeScan {
    /// Out-neighbours only — correct when *every* alive node is in the
    /// batch (a full-graph pass), where the out-CSR alone covers each
    /// edge exactly once.
    OutOnly,
    /// Out- and in-neighbours — the incremental case, where a re-added
    /// node must reach alive nodes on both sides. Edges whose other
    /// endpoint is also in the batch are claimed by the out-scan of their
    /// source (the in-scan skips batch-internal sources), so no edge is
    /// visited twice.
    Incident,
}

/// Default edge-work target per chunk. Small enough to load-balance the
/// heavy-tailed hub batches of a power-law attack, big enough that the
/// per-chunk survivor buffers and scoped-thread handoff stay noise.
const DEFAULT_CHUNK_EDGES: usize = 32 * 1024;

/// Shard-and-merge executor for batched incremental unions. One instance
/// holds every per-worker scratch (epoch union-finds over the node
/// space, batch-membership stamps, chunk tables), so a whole reverse
/// sweep allocates its parallel working memory exactly once.
pub struct ParBatchUnion {
    /// Node-space size (worker arenas are sized to this, lazily).
    n: usize,
    /// Worker count the lazily-built scratch set targets.
    workers: usize,
    /// One local forest per worker thread, reused across batches —
    /// allocated on the **first multi-chunk batch** only, so sweeps
    /// whose batches all fit one chunk never pay the
    /// `workers × 3 × N × 4` bytes.
    scratches: Vec<EpochUnionFind>,
    /// Stamp marking batch membership (epoch-controlled, `O(1)` clear;
    /// lazily sized alongside the scratches).
    batch_stamp: Vec<u32>,
    batch_epoch: u32,
    /// Chunk boundaries over the current batch (index ranges).
    chunks: Vec<(usize, usize)>,
    /// Edge-work target per chunk.
    chunk_edges: usize,
}

impl ParBatchUnion {
    /// Executor over a graph of `n` nodes with `workers` local forests.
    pub fn new(n: usize, workers: usize) -> Self {
        Self::with_chunk_edges(n, workers, DEFAULT_CHUNK_EDGES)
    }

    /// [`Self::new`] with an explicit per-chunk edge-work target
    /// (testing/bench knob: small targets force the multi-chunk merge
    /// path even on tiny graphs).
    pub fn with_chunk_edges(n: usize, workers: usize, chunk_edges: usize) -> Self {
        Self {
            n,
            workers: workers.max(1),
            scratches: Vec::new(),
            batch_stamp: Vec::new(),
            batch_epoch: 0,
            chunks: Vec::new(),
            chunk_edges: chunk_edges.max(1),
        }
    }

    /// Union every edge incident to the `batch` nodes whose other
    /// endpoint is `alive` into `uf`, applying each effective merge
    /// through `apply` (which receives `uf` and the edge endpoints in the
    /// same `(re-added node, neighbour)` orientation as the serial
    /// engine). `alive` must already be `true` for every batch node.
    ///
    /// Single-chunk batches skip the scatter/merge machinery and union
    /// directly — the survivor protocol is exactly equivalent (a locally
    /// redundant edge is a global no-op), so output does not depend on
    /// which path ran.
    pub fn union_batch(
        &mut self,
        g: &DiGraph,
        alive: &[bool],
        batch: &[u32],
        scan: EdgeScan,
        uf: &mut WeightedUnionFind,
        mut apply: impl FnMut(&mut WeightedUnionFind, u32, u32),
    ) {
        // ---- chunk layout: fixed edge-work target, thread-agnostic ----
        self.chunks.clear();
        let mut lo = 0usize;
        let mut work = 0usize;
        for (i, &v) in batch.iter().enumerate() {
            work += match scan {
                EdgeScan::OutOnly => g.out_degree(v) as usize,
                EdgeScan::Incident => g.degree(v) as usize,
            };
            if work >= self.chunk_edges {
                self.chunks.push((lo, i + 1));
                lo = i + 1;
                work = 0;
            }
        }
        if lo < batch.len() {
            self.chunks.push((lo, batch.len()));
        }

        if self.chunks.len() <= 1 {
            // Serial fast path: no local dedup needed, identical effect.
            for &v in batch {
                for &w in g.out_neighbors(v) {
                    if alive[w as usize] {
                        apply(uf, v, w);
                    }
                }
                if scan == EdgeScan::Incident {
                    for &w in g.in_neighbors(v) {
                        if alive[w as usize] {
                            apply(uf, v, w);
                        }
                    }
                }
            }
            return;
        }

        // ---- first multi-chunk batch: build the worker arenas ---------
        if self.scratches.is_empty() {
            self.scratches = (0..self.workers).map(|_| EpochUnionFind::new(self.n)).collect();
            self.batch_stamp = vec![0; self.n];
        }

        // ---- mark batch membership (Incident scans dedup against it) --
        if scan == EdgeScan::Incident {
            self.batch_epoch = match self.batch_epoch.checked_add(1) {
                Some(e) => e,
                None => {
                    self.batch_stamp.fill(0);
                    1
                }
            };
            for &v in batch {
                self.batch_stamp[v as usize] = self.batch_epoch;
            }
        }

        // ---- sharded scan: local dedup against current global roots ---
        let global: &WeightedUnionFind = uf;
        let batch_stamp = &self.batch_stamp;
        let batch_epoch = self.batch_epoch;
        let survivors: Vec<Vec<(u32, u32)>> = par::parallel_map_with(
            &mut self.scratches,
            &self.chunks,
            |local: &mut EpochUnionFind, &(clo, chi)| {
                local.reset();
                let mut out: Vec<(u32, u32)> = Vec::new();
                let mut try_edge = |local: &mut EpochUnionFind, a: u32, b: u32| {
                    let ra = global.find_root(a);
                    let rb = global.find_root(b);
                    if ra != rb && local.union(ra, rb) {
                        out.push((a, b));
                    }
                };
                for &v in &batch[clo..chi] {
                    for &w in g.out_neighbors(v) {
                        if alive[w as usize] {
                            try_edge(local, v, w);
                        }
                    }
                    if scan == EdgeScan::Incident {
                        for &w in g.in_neighbors(v) {
                            // A batch-internal source is claimed by its own
                            // out-scan; skipping it here halves intra-batch
                            // edge work without dropping connectivity.
                            if alive[w as usize]
                                && batch_stamp[w as usize] != batch_epoch
                            {
                                try_edge(local, v, w);
                            }
                        }
                    }
                }
                out
            },
        );

        // ---- deterministic merge: chunk order, then edge order --------
        for chunk in survivors {
            for (a, b) in chunk {
                apply(uf, a, b);
            }
        }
    }
}

/// Headline connectivity metrics of one parallel whole-graph pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParWccSummary {
    /// Size of the largest weakly connected component (0 when empty).
    pub largest: u32,
    /// Number of components among alive nodes.
    pub count: usize,
    /// Weight of the heaviest component (0 when no weights were given).
    pub largest_weight: f64,
}

/// Weakly connected components of the `alive`-induced subgraph in one
/// shard-and-merge pass: `O((N+E)/threads)` scan wall-clock plus the
/// deterministic merge. Metrics are bit-identical to the serial
/// [`crate::components::weakly_connected`] evaluation (weight mass too,
/// whenever weights are integer-valued — every paper figure's case).
pub fn parallel_wcc(
    g: &DiGraph,
    alive: Option<&[bool]>,
    weights: Option<&[f64]>,
) -> ParWccSummary {
    let n = g.node_count();
    if let Some(mask) = alive {
        assert_eq!(mask.len(), n, "mask length mismatch");
    }
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "weight length mismatch");
    }
    let all_alive = vec![true; n];
    let mask = alive.unwrap_or(&all_alive);
    let batch: Vec<u32> = (0..n as u32).filter(|&v| mask[v as usize]).collect();

    let mut uf = match weights {
        Some(w) => WeightedUnionFind::new(w),
        None => WeightedUnionFind::unweighted(n),
    };
    let mut merges = 0usize;
    let mut largest = if batch.is_empty() { 0u32 } else { 1 };
    let mut largest_weight = 0.0f64;
    if weights.is_some() {
        for &v in &batch {
            largest_weight = largest_weight.max(uf.weight_of(v));
        }
    }
    let mut engine = ParBatchUnion::new(n, par::thread_budget());
    engine.union_batch(
        g,
        mask,
        &batch,
        EdgeScan::OutOnly,
        &mut uf,
        |uf, a, b| {
            if let Some((root, merged_w)) = uf.union(a, b) {
                merges += 1;
                if uf.is_weighted() {
                    largest_weight = largest_weight.max(merged_w);
                }
                largest = largest.max(uf.size_of(root));
            }
        },
    );
    ParWccSummary {
        largest,
        count: batch.len() - merges,
        largest_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::weakly_connected;

    #[test]
    fn epoch_reset_forgets_unions() {
        let mut uf = EpochUnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        uf.reset();
        assert_ne!(uf.find(0), uf.find(1));
        assert!(uf.union(0, 1));
    }

    #[test]
    fn epoch_union_matches_plain_union_find() {
        let mut a = EpochUnionFind::new(10);
        let mut b = crate::unionfind::UnionFind::new(10);
        for (x, y) in [(0u32, 3), (3, 7), (1, 2), (5, 5), (2, 0), (8, 9)] {
            assert_eq!(a.union(x, y), b.union(x, y), "edge {x}-{y}");
        }
        for x in 0..10u32 {
            for y in 0..10u32 {
                assert_eq!(a.find(x) == a.find(y), b.find(x) == b.find(y));
            }
        }
    }

    #[test]
    fn parallel_wcc_matches_serial_on_islands() {
        let g = DiGraph::from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 5)]);
        let weights: Vec<f64> = (0..7).map(|i| (i + 1) as f64).collect();
        let got = parallel_wcc(&g, None, Some(&weights));
        let want = weakly_connected(&g, None);
        assert_eq!(got.largest, want.largest());
        assert_eq!(got.count, want.count());
        assert_eq!(got.largest_weight, want.largest_weight(&weights));
    }

    #[test]
    fn parallel_wcc_respects_mask() {
        // 0-1-2 path; killing 1 splits it.
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let alive = vec![true, false, true];
        let got = parallel_wcc(&g, Some(&alive), None);
        assert_eq!(got.largest, 1);
        assert_eq!(got.count, 2);
        assert_eq!(got.largest_weight, 0.0);
    }

    #[test]
    fn parallel_wcc_empty_mask() {
        let g = DiGraph::from_edges(2, [(0, 1)]);
        let got = parallel_wcc(&g, Some(&[false, false]), None);
        assert_eq!(got.largest, 0);
        assert_eq!(got.count, 0);
    }

    /// Force the multi-chunk merge path on a small graph and check the
    /// merged forest against the serial union of the same edges.
    #[test]
    fn multi_chunk_merge_equals_serial() {
        let n = 40u32;
        let edges: Vec<(u32, u32)> = (0..n - 1)
            .map(|i| (i, (i * 7 + 3) % n))
            .chain((0..n / 2).map(|i| (i, i + n / 2)))
            .collect();
        let g = DiGraph::from_edges(n, edges);
        let alive = vec![true; n as usize];
        let batch: Vec<u32> = (0..n).collect();

        let mut serial = WeightedUnionFind::unweighted(n as usize);
        for (a, b) in g.edges() {
            serial.union(a, b);
        }

        for chunk_edges in [1usize, 3, 8, 1024] {
            for workers in [1usize, 2, 5] {
                let mut uf = WeightedUnionFind::unweighted(n as usize);
                let mut engine = ParBatchUnion::with_chunk_edges(n as usize, workers, chunk_edges);
                engine.union_batch(
                    &g,
                    &alive,
                    &batch,
                    EdgeScan::OutOnly,
                    &mut uf,
                    |uf, a, b| {
                        uf.union(a, b);
                    },
                );
                for x in 0..n {
                    for y in 0..n {
                        assert_eq!(
                            uf.find(x) == uf.find(y),
                            serial.find(x) == serial.find(y),
                            "chunk {chunk_edges} workers {workers} nodes {x},{y}"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::components::weakly_connected;
    use proptest::prelude::*;

    /// Canonical per-component representative (min node id), so two
    /// forests can be compared independently of their internal roots.
    fn canonical_roots(find: &mut dyn FnMut(u32) -> u32, n: u32) -> Vec<u32> {
        let mut min_of_root = vec![u32::MAX; n as usize];
        for v in 0..n {
            let r = find(v) as usize;
            min_of_root[r] = min_of_root[r].min(v);
        }
        (0..n).map(|v| min_of_root[find(v) as usize]).collect()
    }

    proptest! {
        /// Shard-and-merge over random graphs × chunk sizes × worker
        /// counts × weighted/unweighted: the merged forest's partition,
        /// LCC size, component count, and per-root weight mass are
        /// bit-identical to the serial pass.
        #[test]
        fn shard_merge_bit_identical_to_serial(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..150),
            raw_weights in proptest::collection::vec(0u32..1000, 30),
            chunk_edges in 1usize..64,
            workers in 1usize..5,
            weighted in any::<bool>(),
        ) {
            let n = 30u32;
            let g = DiGraph::from_edges(n, edges);
            let weights: Vec<f64> = raw_weights.iter().map(|&w| w as f64).collect();
            let alive = vec![true; n as usize];
            let batch: Vec<u32> = (0..n).collect();

            let mk = || if weighted {
                WeightedUnionFind::new(&weights)
            } else {
                WeightedUnionFind::unweighted(n as usize)
            };

            let mut serial = mk();
            for (a, b) in g.edges() {
                serial.union(a, b);
            }

            let mut sharded = mk();
            let mut engine = ParBatchUnion::with_chunk_edges(n as usize, workers, chunk_edges);
            engine.union_batch(&g, &alive, &batch, EdgeScan::OutOnly, &mut sharded, |uf, a, b| {
                uf.union(a, b);
            });

            // identical partitions (canonicalised roots)…
            let ser = canonical_roots(&mut |x| serial.find(x), n);
            let par = canonical_roots(&mut |x| sharded.find(x), n);
            prop_assert_eq!(&ser, &par);
            // …identical per-component size and weight mass
            for v in 0..n {
                prop_assert_eq!(serial.size_of(v), sharded.size_of(v), "size at {}", v);
                prop_assert_eq!(serial.weight_of(v), sharded.weight_of(v), "weight at {}", v);
            }
        }

        /// The one-shot parallel WCC agrees with the serial component
        /// labelling on masked random graphs, weights included.
        #[test]
        fn parallel_wcc_matches_components(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..120),
            alive in proptest::collection::vec(any::<bool>(), 25),
            raw_weights in proptest::collection::vec(0u32..500, 25),
        ) {
            let g = DiGraph::from_edges(25, edges);
            let weights: Vec<f64> = raw_weights.iter().map(|&w| w as f64).collect();
            let got = parallel_wcc(&g, Some(&alive), Some(&weights));
            let want = weakly_connected(&g, Some(&alive));
            prop_assert_eq!(got.largest, want.largest());
            prop_assert_eq!(got.count, want.count());
            prop_assert_eq!(got.largest_weight, want.largest_weight(&weights));
        }

        /// Incremental protocol: adding node batches one at a time with
        /// `Incident` scans reaches the same partition as one serial
        /// full-graph pass, at every chunk granularity.
        #[test]
        fn incremental_batches_converge(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..100),
            cut in 1usize..19,
            chunk_edges in 1usize..32,
        ) {
            let n = 20u32;
            let g = DiGraph::from_edges(n, edges);

            let mut serial = WeightedUnionFind::unweighted(n as usize);
            for (a, b) in g.edges() {
                serial.union(a, b);
            }

            let mut alive = vec![false; n as usize];
            let mut uf = WeightedUnionFind::unweighted(n as usize);
            let mut engine = ParBatchUnion::with_chunk_edges(n as usize, 3, chunk_edges);
            let first: Vec<u32> = (0..cut as u32).collect();
            let second: Vec<u32> = (cut as u32..n).collect();
            for batch in [first, second] {
                for &v in &batch {
                    alive[v as usize] = true;
                }
                engine.union_batch(&g, &alive, &batch, EdgeScan::Incident, &mut uf, |uf, a, b| {
                    uf.union(a, b);
                });
            }
            for x in 0..n {
                for y in 0..n {
                    prop_assert_eq!(
                        uf.find(x) == uf.find(y),
                        serial.find(x) == serial.find(y),
                        "nodes {} {}", x, y
                    );
                }
            }
        }
    }
}
