//! Node-removal resilience sweeps (§5.1, Figs. 12 and 13).
//!
//! Three methodologies from the paper:
//!
//! 1. **Iterative top-degree removal** (Fig. 12): "We proceed in rounds,
//!    removing the top 1% of remaining nodes in each iteration" — the
//!    ranking is recomputed on the surviving subgraph every round.
//! 2. **Ranked removal** (Fig. 13a): remove the top-N instances in a fixed
//!    external order (by #users or #toots) and evaluate the LCC after each
//!    removal. Implemented with the reverse (additive) union-find trick so a
//!    full sweep costs `O(E α)` rather than `O(N·E)`.
//! 3. **Grouped removal** (Fig. 13b): remove whole groups of nodes at once
//!    (all instances of an AS).
//!
//! All sweeps report the LCC in nodes and (optionally) in caller-provided
//! node weights — the paper variously normalises by instances, users, and
//! toots.

use crate::components::{strongly_connected, weakly_connected};
use crate::digraph::DiGraph;
use crate::par;
use crate::par_unionfind::{EdgeScan, ParBatchUnion};
use crate::unionfind::WeightedUnionFind;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One evaluation point of a removal sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Cumulative number of nodes removed at this point.
    pub removed: usize,
    /// For grouped sweeps: number of groups removed (equals `removed`
    /// otherwise meaningless; 0 for ungrouped sweeps).
    pub groups_removed: usize,
    /// Largest weakly connected component, in nodes.
    pub lcc_nodes: u32,
    /// LCC as a fraction of the graph's *original* node count.
    pub lcc_node_frac: f64,
    /// LCC's total weight (sum of caller weights), when weights were given.
    pub lcc_weight: f64,
    /// LCC weight as a fraction of total original weight (0 if no weights).
    pub lcc_weight_frac: f64,
    /// Number of weakly connected components among surviving nodes.
    pub wcc_count: usize,
    /// Number of strongly connected components (only when SCC computation
    /// is enabled; 0 otherwise).
    pub scc_count: usize,
}

/// How the iterative sweep ranks nodes for removal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankBy {
    /// Highest total degree in the *surviving* subgraph (the paper's attack
    /// model).
    DegreeIterative,
    /// Uniformly random surviving nodes (the error-tolerance baseline).
    Random {
        /// RNG seed for determinism.
        seed: u64,
    },
}

/// Merge the components of `a` and `b`, maintaining the merge count and the
/// running size/weight maxima used by the reverse sweep. The per-root
/// weight accumulators live inside the [`WeightedUnionFind`].
fn union_alive(
    uf: &mut WeightedUnionFind,
    a: u32,
    b: u32,
    merges: &mut usize,
    max_size: &mut u32,
    max_weight: &mut f64,
) {
    if let Some((root, merged_w)) = uf.union(a, b) {
        *merges += 1;
        if uf.is_weighted() {
            *max_weight = max_weight.max(merged_w);
        }
        *max_size = (*max_size).max(uf.size_of(root));
    }
}

/// Configurable removal-sweep runner over a borrowed graph.
pub struct RemovalSweep<'g> {
    g: &'g DiGraph,
    weights: Option<&'g [f64]>,
    compute_scc: bool,
    /// Worker threads for the sharded reverse pass (0 = follow
    /// [`par::thread_budget`]; 1 = force the serial engine).
    threads: usize,
    /// Edge-work target per shard chunk (0 = library default).
    chunk_edges: usize,
}

impl<'g> RemovalSweep<'g> {
    /// New sweep over `g`.
    pub fn new(g: &'g DiGraph) -> Self {
        Self {
            g,
            weights: None,
            compute_scc: false,
            threads: 0,
            chunk_edges: 0,
        }
    }

    /// Pin the reverse pass to `threads` shard workers (0 restores the
    /// machine default). The shard layout is derived from the batch,
    /// never the thread count, so every setting `≥ 2` replays the same
    /// union sequence and is bit-identical to every other; `1` routes
    /// through the serial engine (zero parallel overhead), whose union
    /// *sequence* differs from the sharded one — observable only through
    /// float association in non-integer weight sums (integer-valued
    /// weights, every paper figure's case, are exact at all settings).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the sharded pass's per-chunk edge-work target (testing /
    /// bench knob: tiny targets force the shard-merge path even on small
    /// graphs; 0 restores the default). Bit-identical at any value.
    pub fn with_chunk_edges(mut self, chunk_edges: usize) -> Self {
        self.chunk_edges = chunk_edges;
        self
    }

    /// Attach per-node weights (users, toots, …) for weighted-LCC reporting.
    ///
    /// The slice is borrowed, not cloned — a graph-sized weight vector can
    /// back many concurrent sweeps for free. Weights must be finite and
    /// non-negative (they are counts in every paper figure); the offline
    /// weighted engine maintains a running maximum over merged component
    /// weights, which is only monotone under that assumption.
    pub fn with_weights(mut self, w: &'g [f64]) -> Self {
        assert_eq!(w.len(), self.g.node_count(), "weight length mismatch");
        assert!(
            w.iter().all(|x| x.is_finite() && *x >= 0.0),
            "weights must be finite and non-negative"
        );
        self.weights = Some(w);
        self
    }

    /// Also compute SCC counts at every evaluation point (costly).
    pub fn with_scc(mut self, yes: bool) -> Self {
        self.compute_scc = yes;
        self
    }

    fn total_weight(&self) -> f64 {
        self.weights
            .as_ref()
            .map(|w| w.iter().sum())
            .unwrap_or(0.0)
    }

    /// Reference evaluation used only by the naive engine. Deliberately
    /// NOT delegated to `point_scratch`: it routes through
    /// `ComponentInfo`'s own metric assembly (`largest`, `largest_weight`,
    /// `count`), keeping one evaluation path that is independent of the
    /// scratch buffers so the differential tests compare two genuinely
    /// separate implementations.
    fn point_from_mask(&self, alive: &[bool], removed: usize, groups: usize) -> SweepPoint {
        let n = self.g.node_count();
        let wcc = weakly_connected(self.g, Some(alive));
        let lcc_nodes = wcc.largest();
        let (lcc_weight, lcc_weight_frac) = match &self.weights {
            Some(w) => {
                let total = self.total_weight();
                // weight of the heaviest component
                let heaviest = wcc.largest_weight(w);
                (heaviest, if total > 0.0 { heaviest / total } else { 0.0 })
            }
            None => (0.0, 0.0),
        };
        let scc_count = if self.compute_scc {
            strongly_connected(self.g, Some(alive)).count()
        } else {
            0
        };
        SweepPoint {
            removed,
            groups_removed: groups,
            lcc_nodes,
            lcc_node_frac: if n > 0 { lcc_nodes as f64 / n as f64 } else { 0.0 },
            lcc_weight,
            lcc_weight_frac,
            wcc_count: wcc.count(),
            scc_count,
        }
    }

    /// SCC count at every boundary (removal-count prefix of `order`).
    ///
    /// Tarjan is inherently serial *within* one evaluation, but the
    /// per-boundary evaluations are independent pure functions, so they are
    /// sharded across OS threads via [`par::parallel_map`]: with `t`
    /// threads the wall-clock cost of the worst (SCC-enabled) path drops
    /// from `rounds·O(N+E)` serial to `O((N+E)/t)` per round. Results come
    /// back in boundary order, so output never depends on scheduling.
    fn scc_counts_at(&self, order: &[u32], boundaries: &[usize]) -> Vec<usize> {
        par::parallel_map(boundaries, |&b| {
            let mut alive = vec![true; self.g.node_count()];
            for &v in &order[..b.min(order.len())] {
                alive[v as usize] = false;
            }
            strongly_connected(self.g, Some(&alive)).count()
        })
    }

    /// Fig. 12 methodology: in each of `steps` rounds remove `frac` of the
    /// *remaining* nodes (at least 1), ranked per `rank`. Returns one point
    /// per round, including a round-0 baseline with nothing removed.
    ///
    /// The engine is incremental and two-phase:
    ///
    /// 1. **Victim selection** maintains survivor degrees by decrementing
    ///    the CSR neighbours of each removed node (`O(k·d̄)` per round
    ///    instead of an `O(E)` edge rescan) and picks the top-`k` with
    ///    `select_nth_unstable` (`O(survivors)` instead of a full sort).
    ///    The selection never depends on component metrics, so the whole
    ///    removal schedule is known before anything is evaluated.
    /// 2. **Evaluation**: all rounds — weighted or not — are evaluated in
    ///    one reverse union-find pass costing `O((E+N)·α)` *total*; the
    ///    per-root weight accumulators ride along inside
    ///    [`WeightedUnionFind`], so the weighted Fig. 13-style metrics cost
    ///    the same near-linear pass as the unweighted ones. When SCC counts
    ///    are requested, the independent per-round Tarjan evaluations are
    ///    sharded across threads (see [`Self::scc_counts_at`]).
    ///
    /// Output is bit-identical to [`Self::iterative_fraction_naive`]: every
    /// unweighted metric is integer-derived, and the weighted metrics sum
    /// the same weight multisets (exactly the same bits whenever weights
    /// are integer-valued, as all the paper's user/toot counts are — the
    /// reverse pass merges accumulators in union order rather than node
    /// order, which is invisible below 2^53). The differential property
    /// tests below pin equality in all configurations.
    pub fn iterative_fraction(&self, frac: f64, steps: usize, rank: RankBy) -> Vec<SweepPoint> {
        assert!((0.0..=1.0).contains(&frac), "frac out of range");
        let n = self.g.node_count();
        let mut alive = vec![true; n];
        let mut alive_count = n;
        let mut rng = rand::rngs::StdRng::seed_from_u64(match rank {
            RankBy::Random { seed } => seed,
            RankBy::DegreeIterative => 0,
        });

        // ---- phase 1: removal schedule via incremental degrees ----------
        // With every node alive, per-node total degree equals the edge-scan
        // count the naive implementation starts from.
        let mut deg: Vec<u32> = (0..n as u32).map(|v| self.g.degree(v)).collect();
        // Survivor ids, ascending, maintained incrementally: `retain`
        // after each round keeps exactly the nodes an `(0..n).filter`
        // rescan would produce (same order, same content), but costs
        // `O(survivors)` instead of `O(N)` per round.
        let mut survivors: Vec<u32> = (0..n as u32).collect();
        // Reused candidate buffer: cleared, never shrunk.
        let mut cands: Vec<u32> = Vec::with_capacity(n);
        // Concatenated victims of every round, plus the cumulative removal
        // count after round r at boundaries[r] (boundaries[0] = 0 is the
        // intact baseline).
        let mut order: Vec<u32> = Vec::new();
        let mut boundaries: Vec<usize> = Vec::with_capacity(steps + 1);
        boundaries.push(0);

        for _ in 0..steps {
            if alive_count == 0 {
                break;
            }
            let k = ((alive_count as f64 * frac).round() as usize)
                .max(1)
                .min(alive_count);
            cands.clear();
            cands.extend_from_slice(&survivors);
            match rank {
                RankBy::DegreeIterative => {
                    // Partition so cands[..k] holds the k highest-degree
                    // survivors (ties broken by ascending id). The selected
                    // *set* equals the full-sort-then-truncate set because
                    // the comparator is a total order, which is all the
                    // evaluation can observe.
                    if k < cands.len() {
                        cands.select_nth_unstable_by(k - 1, |&a, &b| {
                            deg[b as usize]
                                .cmp(&deg[a as usize])
                                .then(a.cmp(&b))
                        });
                        cands.truncate(k);
                    }
                }
                RankBy::Random { .. } => {
                    // Shuffle the full survivor list (not just a k-prefix)
                    // so the RNG stream matches the naive implementation.
                    cands.shuffle(&mut rng);
                    cands.truncate(k);
                }
            }
            for &v in &cands {
                alive[v as usize] = false;
            }
            // Decrement surviving neighbours once per incident edge. Edges
            // between two victims touch no survivor and are skipped by the
            // alive check, matching the naive both-endpoints-alive count.
            for &v in &cands {
                for &w in self.g.out_neighbors(v) {
                    if alive[w as usize] {
                        deg[w as usize] -= 1;
                    }
                }
                for &w in self.g.in_neighbors(v) {
                    if alive[w as usize] {
                        deg[w as usize] -= 1;
                    }
                }
            }
            alive_count -= k;
            survivors.retain(|&v| alive[v as usize]);
            order.extend_from_slice(&cands);
            boundaries.push(order.len());
        }

        // ---- phase 2: evaluate every round ------------------------------
        // One near-linear reverse union-find pass over all boundaries; the
        // weighted metrics ride along in per-root accumulators and SCC
        // counts (when enabled) are sharded across threads.
        self.reverse_sweep(&order, &boundaries, None)
    }

    /// Reference implementation of [`Self::iterative_fraction`]: rescans
    /// every edge to recompute degrees and full-sorts the survivors each
    /// round. Kept public for differential tests and the speedup benches;
    /// do not use in production paths.
    pub fn iterative_fraction_naive(
        &self,
        frac: f64,
        steps: usize,
        rank: RankBy,
    ) -> Vec<SweepPoint> {
        assert!((0.0..=1.0).contains(&frac), "frac out of range");
        let n = self.g.node_count();
        let mut alive = vec![true; n];
        let mut alive_count = n;
        let mut removed = 0usize;
        let mut out = Vec::with_capacity(steps + 1);
        out.push(self.point_from_mask(&alive, 0, 0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(match rank {
            RankBy::Random { seed } => seed,
            RankBy::DegreeIterative => 0,
        });
        for _ in 0..steps {
            if alive_count == 0 {
                break;
            }
            let k = ((alive_count as f64 * frac).round() as usize).max(1).min(alive_count);
            let victims: Vec<u32> = match rank {
                RankBy::DegreeIterative => {
                    // degree within the surviving subgraph
                    let mut deg = vec![0u32; n];
                    for (a, b) in self.g.edges() {
                        if alive[a as usize] && alive[b as usize] {
                            deg[a as usize] += 1;
                            deg[b as usize] += 1;
                        }
                    }
                    let mut cands: Vec<u32> =
                        (0..n as u32).filter(|&v| alive[v as usize]).collect();
                    cands.sort_by(|&a, &b| {
                        deg[b as usize].cmp(&deg[a as usize]).then(a.cmp(&b))
                    });
                    cands.truncate(k);
                    cands
                }
                RankBy::Random { .. } => {
                    let mut cands: Vec<u32> =
                        (0..n as u32).filter(|&v| alive[v as usize]).collect();
                    cands.shuffle(&mut rng);
                    cands.truncate(k);
                    cands
                }
            };
            for v in victims {
                alive[v as usize] = false;
            }
            alive_count -= k;
            removed += k;
            out.push(self.point_from_mask(&alive, removed, 0));
        }
        out
    }

    /// Fig. 13a methodology: remove nodes in the fixed `order`, evaluating
    /// after each prefix length in `checkpoints` (ascending; a checkpoint of
    /// 0 evaluates the intact graph). Uses reverse union-find, so the whole
    /// sweep is near-linear — unless SCC counting is enabled, in which case
    /// each checkpoint additionally pays one Tarjan pass (sharded across
    /// threads, see [`Self::scc_counts_at`]).
    pub fn ranked(&self, order: &[u32], checkpoints: &[usize]) -> Vec<SweepPoint> {
        assert!(
            checkpoints.windows(2).all(|w| w[0] < w[1]),
            "checkpoints must be strictly ascending"
        );
        let boundaries: Vec<usize> = checkpoints
            .iter()
            .map(|&c| c.min(order.len()))
            .collect();
        self.reverse_sweep(order, &boundaries, None)
    }

    /// Fig. 13b methodology: remove whole `groups` (e.g. every instance of
    /// an AS) in order, evaluating after each group. Group `i`'s evaluation
    /// point has `groups_removed == i + 1`; a leading baseline point with
    /// nothing removed is included.
    pub fn grouped(&self, groups: &[Vec<u32>]) -> Vec<SweepPoint> {
        let mut order = Vec::new();
        let mut boundaries = vec![0usize];
        for g in groups {
            order.extend_from_slice(g);
            boundaries.push(order.len());
        }
        self.reverse_sweep(&order, &boundaries, Some(()))
    }

    /// Shared reverse-incremental implementation. `boundaries` are removal
    /// counts (prefix lengths of `order`) at which to evaluate, ascending,
    /// possibly starting at 0. When `grouped` is set, `groups_removed` is
    /// the boundary's index.
    ///
    /// With more than one worker thread available (see
    /// [`Self::with_threads`]), the edge scans — the initial bulk union
    /// over the surviving subgraph and each boundary's re-add batch — run
    /// through the shard-and-merge [`ParBatchUnion`] engine:
    /// `O((N+E)/threads)` scan wall-clock inside the single pass, with
    /// the surviving merges applied in a deterministic chunk order so
    /// output is bit-identical at every thread count. One worker routes
    /// through the exact serial loops (no parallel overhead at all).
    fn reverse_sweep(
        &self,
        order: &[u32],
        boundaries: &[usize],
        grouped: Option<()>,
    ) -> Vec<SweepPoint> {
        let n = self.g.node_count();
        if boundaries.is_empty() {
            return Vec::new();
        }
        let max_removed = *boundaries.last().unwrap();

        // If SCC counts are requested, evaluate the independent
        // per-boundary Tarjan passes on worker threads (Tarjan cannot be
        // run incrementally, but each boundary is a pure function).
        let scc_counts: Vec<usize> = if self.compute_scc {
            self.scc_counts_at(order, boundaries)
        } else {
            Vec::new()
        };

        // Start fully removed at max boundary, then add nodes back.
        let mut alive = vec![true; n];
        for &v in &order[..max_removed] {
            alive[v as usize] = false;
        }
        let mut alive_count = alive.iter().filter(|&&a| a).count();

        let mut uf = match self.weights {
            Some(w) => WeightedUnionFind::new(w),
            None => WeightedUnionFind::unweighted(n),
        };
        let mut merges = 0usize;
        let mut max_size = if alive_count > 0 { 1u32 } else { 0 };
        let mut max_weight: f64 = 0.0;

        let threads = match self.threads {
            0 => par::thread_budget(),
            t => t,
        };
        let mut engine = (threads > 1).then(|| match self.chunk_edges {
            0 => ParBatchUnion::new(n, threads),
            c => ParBatchUnion::with_chunk_edges(n, threads, c),
        });
        let mut batch_buf: Vec<u32> = Vec::new();

        // Add edges among initially-alive nodes. Every alive node is in
        // this bulk batch, so scanning out-adjacency alone covers each
        // edge exactly once — the same sequence `g.edges()` yields.
        if let Some(eng) = engine.as_mut() {
            batch_buf.extend((0..n as u32).filter(|&v| alive[v as usize]));
            eng.union_batch(
                self.g,
                &alive,
                &batch_buf,
                EdgeScan::OutOnly,
                &mut uf,
                |uf, a, b| union_alive(uf, a, b, &mut merges, &mut max_size, &mut max_weight),
            );
        } else {
            for (a, b) in self.g.edges() {
                if alive[a as usize] && alive[b as usize] {
                    union_alive(&mut uf, a, b, &mut merges, &mut max_size, &mut max_weight);
                }
            }
        }
        if uf.is_weighted() {
            for v in 0..n as u32 {
                if alive[v as usize] {
                    max_weight = max_weight.max(uf.weight_of(v));
                }
            }
        }

        let total_weight = self.total_weight();
        let mut results: Vec<SweepPoint> = Vec::with_capacity(boundaries.len());
        let mut cursor = max_removed;
        for (bi, &b) in boundaries.iter().enumerate().rev() {
            // Re-add nodes order[b..cursor].
            if let Some(eng) = engine.as_mut() {
                // Sharded path: mark the whole batch alive first, then
                // union its incident edges in one shard-and-merge pass.
                // An intra-batch edge is unioned from its out-endpoint
                // (instead of whichever node re-adds second, as the
                // serial loop does) — a different union *sequence* over
                // the same edge set, observable only through float
                // association in non-integer weight sums (exact for the
                // integer counts every figure sweeps).
                let start = cursor;
                while cursor > b {
                    cursor -= 1;
                    let v = order[cursor];
                    alive[v as usize] = true;
                    alive_count += 1;
                    max_size = max_size.max(1);
                    if uf.is_weighted() {
                        max_weight = max_weight.max(uf.weight_of(v));
                    }
                }
                batch_buf.clear();
                batch_buf.extend(order[b..start].iter().rev());
                eng.union_batch(
                    self.g,
                    &alive,
                    &batch_buf,
                    EdgeScan::Incident,
                    &mut uf,
                    |uf, a, w| union_alive(uf, a, w, &mut merges, &mut max_size, &mut max_weight),
                );
            } else {
                while cursor > b {
                    cursor -= 1;
                    let v = order[cursor];
                    alive[v as usize] = true;
                    alive_count += 1;
                    max_size = max_size.max(1);
                    if uf.is_weighted() {
                        max_weight = max_weight.max(uf.weight_of(v));
                    }
                    for &w in self.g.out_neighbors(v) {
                        if alive[w as usize] {
                            union_alive(&mut uf, v, w, &mut merges, &mut max_size, &mut max_weight);
                        }
                    }
                    for &w in self.g.in_neighbors(v) {
                        if alive[w as usize] {
                            union_alive(&mut uf, v, w, &mut merges, &mut max_size, &mut max_weight);
                        }
                    }
                }
            }
            let lcc_nodes = if alive_count == 0 { 0 } else { max_size };
            results.push(SweepPoint {
                removed: b,
                groups_removed: if grouped.is_some() { bi } else { 0 },
                lcc_nodes,
                lcc_node_frac: if n > 0 {
                    lcc_nodes as f64 / n as f64
                } else {
                    0.0
                },
                lcc_weight: max_weight,
                lcc_weight_frac: if total_weight > 0.0 {
                    max_weight / total_weight
                } else {
                    0.0
                },
                wcc_count: alive_count - merges,
                scc_count: if self.compute_scc {
                    scc_counts[bi]
                } else {
                    0
                },
            });
        }
        results.reverse();
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hub-and-spoke graph: node 0 connects to everyone.
    fn star(n: u32) -> DiGraph {
        DiGraph::from_edges(n, (1..n).map(|i| (0, i)))
    }

    #[test]
    fn iterative_degree_attack_kills_star() {
        let g = star(11);
        let sweep = RemovalSweep::new(&g);
        let pts = sweep.iterative_fraction(0.09, 1, RankBy::DegreeIterative);
        // baseline: LCC = 11
        assert_eq!(pts[0].lcc_nodes, 11);
        assert_eq!(pts[0].wcc_count, 1);
        // one round removes ceil(0.09 * 11) = 1 node = the hub
        assert_eq!(pts[1].removed, 1);
        assert_eq!(pts[1].lcc_nodes, 1);
        assert_eq!(pts[1].wcc_count, 10);
    }

    #[test]
    fn random_removal_is_gentler_than_attack_on_star() {
        let g = star(101);
        let sweep = RemovalSweep::new(&g);
        let atk = sweep.iterative_fraction(0.01, 1, RankBy::DegreeIterative);
        let rnd = sweep.iterative_fraction(0.01, 1, RankBy::Random { seed: 7 });
        // attack removes the hub and shatters; random almost surely removes a leaf
        assert!(atk[1].lcc_nodes < rnd[1].lcc_nodes);
    }

    #[test]
    fn ranked_sweep_matches_direct_masking() {
        // path 0-1-2-3-4 (undirected-ish via WCC)
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let order = vec![2u32, 0, 4];
        let sweep = RemovalSweep::new(&g);
        let pts = sweep.ranked(&order, &[0, 1, 2, 3]);
        assert_eq!(pts.len(), 4);
        // 0 removed: single path, LCC 5
        assert_eq!(pts[0].lcc_nodes, 5);
        assert_eq!(pts[0].wcc_count, 1);
        // remove node 2: {0,1} {3,4}
        assert_eq!(pts[1].lcc_nodes, 2);
        assert_eq!(pts[1].wcc_count, 2);
        // remove node 0 as well: {1} {3,4}
        assert_eq!(pts[2].lcc_nodes, 2);
        assert_eq!(pts[2].wcc_count, 2);
        // remove node 4 too: {1} {3}
        assert_eq!(pts[3].lcc_nodes, 1);
        assert_eq!(pts[3].wcc_count, 2);
    }

    #[test]
    fn ranked_sweep_weighted_lcc() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let weights = vec![10.0, 1.0, 5.0, 5.0];
        let sweep = RemovalSweep::new(&g).with_weights(&weights);
        let pts = sweep.ranked(&[0], &[0, 1]);
        // intact: comp {0,1} weight 11 vs {2,3} weight 10 -> 11
        assert!((pts[0].lcc_weight - 11.0).abs() < 1e-9);
        assert!((pts[0].lcc_weight_frac - 11.0 / 21.0).abs() < 1e-9);
        // after removing 0: {1}=1, {2,3}=10 -> 10
        assert!((pts[1].lcc_weight - 10.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_sweep_reports_group_indices() {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let groups = vec![vec![1u32, 2], vec![4u32]];
        let sweep = RemovalSweep::new(&g);
        let pts = sweep.grouped(&groups);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].groups_removed, 0);
        assert_eq!(pts[0].lcc_nodes, 6);
        // group 0 removes {1,2}: components {0} {3,4,5}
        assert_eq!(pts[1].groups_removed, 1);
        assert_eq!(pts[1].removed, 2);
        assert_eq!(pts[1].lcc_nodes, 3);
        assert_eq!(pts[1].wcc_count, 2);
        // group 1 removes {4}: {0} {3} {5}
        assert_eq!(pts[2].lcc_nodes, 1);
        assert_eq!(pts[2].wcc_count, 3);
    }

    #[test]
    fn scc_counts_when_enabled() {
        // 2-cycle {0,1} plus bridge to 2
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let sweep = RemovalSweep::new(&g).with_scc(true);
        let pts = sweep.ranked(&[0], &[0, 1]);
        assert_eq!(pts[0].scc_count, 2); // {0,1} and {2}
        assert_eq!(pts[1].scc_count, 2); // {1} and {2}
        let pts2 = RemovalSweep::new(&g)
            .with_scc(true)
            .iterative_fraction(0.4, 1, RankBy::DegreeIterative);
        assert!(pts2[0].scc_count > 0);
    }

    #[test]
    fn full_wipeout_in_one_round() {
        // frac = 1.0 removes every survivor in the first round.
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (4, 5)]);
        let pts = RemovalSweep::new(&g).iterative_fraction(1.0, 3, RankBy::DegreeIterative);
        // baseline + one wipeout round; later rounds have nobody to remove
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].removed, 6);
        assert_eq!(pts[1].lcc_nodes, 0);
        assert_eq!(pts[1].wcc_count, 0);
        assert_eq!(pts[1].lcc_node_frac, 0.0);
        let naive = RemovalSweep::new(&g).iterative_fraction_naive(1.0, 3, RankBy::DegreeIterative);
        assert_eq!(pts, naive);
    }

    #[test]
    fn weighted_full_wipeout_matches_naive() {
        // frac = 1.0 with weights: the offline weighted pass must agree
        // with the naive engine through the wipeout round (LCC weight 0).
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (4, 5)]);
        let weights: Vec<f64> = (0..6).map(|i| (i * 3 + 1) as f64).collect();
        let sweep = RemovalSweep::new(&g).with_weights(&weights);
        let fast = sweep.iterative_fraction(1.0, 2, RankBy::DegreeIterative);
        let naive = sweep.iterative_fraction_naive(1.0, 2, RankBy::DegreeIterative);
        assert_eq!(fast, naive);
        assert_eq!(fast.last().unwrap().lcc_weight, 0.0);
        assert_eq!(fast.last().unwrap().lcc_weight_frac, 0.0);
    }

    #[test]
    fn weighted_all_equal_weights_track_node_counts() {
        // With all-equal weights the weighted curve is a scaled copy of the
        // node curve: lcc_weight == w * lcc_nodes at every round.
        let g = DiGraph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6)]);
        let weights = vec![3.0; 7];
        let sweep = RemovalSweep::new(&g).with_weights(&weights);
        let fast = sweep.iterative_fraction(0.2, 4, RankBy::DegreeIterative);
        let naive = sweep.iterative_fraction_naive(0.2, 4, RankBy::DegreeIterative);
        assert_eq!(fast, naive);
        for p in &fast {
            assert_eq!(p.lcc_weight, 3.0 * p.lcc_nodes as f64);
        }
    }

    #[test]
    fn weighted_single_surviving_node() {
        // Remove everything but node 3: the LCC weight collapses to that
        // node's own weight.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let weights = vec![5.0, 6.0, 7.0, 8.0];
        let sweep = RemovalSweep::new(&g).with_weights(&weights);
        let pts = sweep.ranked(&[0, 1, 2], &[0, 3]);
        assert_eq!(pts[1].lcc_nodes, 1);
        assert_eq!(pts[1].lcc_weight, 8.0);
        assert!((pts[1].lcc_weight_frac - 8.0 / 26.0).abs() < 1e-12);
        // the iterative engine agrees with the naive one on the same shape
        let fast = sweep.iterative_fraction(0.34, 3, RankBy::DegreeIterative);
        let naive = sweep.iterative_fraction_naive(0.34, 3, RankBy::DegreeIterative);
        assert_eq!(fast, naive);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_rejected() {
        let g = DiGraph::from_edges(2, [(0, 1)]);
        let weights = vec![1.0, -2.0];
        let _ = RemovalSweep::new(&g).with_weights(&weights);
    }

    #[test]
    fn weighted_sweep_with_all_zero_weights() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let weights = vec![0.0; 4];
        let sweep = RemovalSweep::new(&g).with_weights(&weights);
        let pts = sweep.iterative_fraction(0.5, 2, RankBy::DegreeIterative);
        for p in &pts {
            assert_eq!(p.lcc_weight, 0.0);
            // zero total weight must not divide by zero
            assert_eq!(p.lcc_weight_frac, 0.0);
        }
        let ranked = sweep.ranked(&[1, 2], &[0, 1, 2]);
        for p in &ranked {
            assert_eq!(p.lcc_weight, 0.0);
            assert_eq!(p.lcc_weight_frac, 0.0);
        }
    }

    #[test]
    fn empty_order_with_checkpoint_zero() {
        // Exercised by tests/resilience_invariants.rs: an empty removal
        // order with checkpoint 0 must evaluate the intact graph.
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let pts = RemovalSweep::new(&g)
            .with_weights(&weights)
            .ranked(&[], &[0]);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].removed, 0);
        assert_eq!(pts[0].lcc_nodes, 2);
        assert_eq!(pts[0].wcc_count, 2);
        assert!((pts[0].lcc_weight - 7.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_naive_with_scc_and_weights() {
        let g = DiGraph::from_edges(
            8,
            [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (5, 6), (6, 7)],
        );
        let weights: Vec<f64> = (0..8).map(|i| (i + 1) as f64).collect();
        let sweep = RemovalSweep::new(&g).with_weights(&weights).with_scc(true);
        let fast = sweep.iterative_fraction(0.25, 4, RankBy::DegreeIterative);
        let naive = sweep.iterative_fraction_naive(0.25, 4, RankBy::DegreeIterative);
        assert_eq!(fast, naive);
    }

    #[test]
    fn checkpoint_beyond_order_clamps() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let sweep = RemovalSweep::new(&g);
        let pts = sweep.ranked(&[0, 1], &[0, 5]);
        assert_eq!(pts[1].removed, 2);
    }

    #[test]
    fn empty_checkpoints_empty_result() {
        let g = DiGraph::from_edges(2, [(0, 1)]);
        let pts = RemovalSweep::new(&g).ranked(&[0], &[]);
        assert!(pts.is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The fast reverse sweep agrees with direct per-checkpoint masking.
        #[test]
        fn reverse_equals_direct(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..80),
            perm_seed in 0u64..1000
        ) {
            let g = DiGraph::from_edges(20, edges);
            // deterministic pseudo-random removal order
            let mut order: Vec<u32> = (0..20).collect();
            let mut s = perm_seed;
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let weights: Vec<f64> = (0..20).map(|i| (i % 5) as f64 + 1.0).collect();
            let checkpoints: Vec<usize> = vec![0, 3, 7, 12, 20];
            let sweep = RemovalSweep::new(&g).with_weights(&weights);
            let fast = sweep.ranked(&order, &checkpoints);

            for (pt, &k) in fast.iter().zip(&checkpoints) {
                let mut alive = vec![true; 20];
                for &v in &order[..k.min(order.len())] {
                    alive[v as usize] = false;
                }
                let direct = weakly_connected(&g, Some(&alive));
                prop_assert_eq!(pt.lcc_nodes, direct.largest(), "k = {}", k);
                prop_assert_eq!(pt.wcc_count, direct.count(), "k = {}", k);
                let dw = direct.largest_weight(&weights);
                prop_assert!((pt.lcc_weight - dw).abs() < 1e-9, "k = {} weight", k);
            }
        }

        /// The incremental engine reproduces the naive rescan-everything
        /// sweep exactly: same victims, same LCC sizes, weights, and
        /// component counts at every round, for both ranking modes.
        #[test]
        fn incremental_equals_naive(
            edges in proptest::collection::vec((0u32..24, 0u32..24), 0..100),
            seed in 0u64..500
        ) {
            let g = DiGraph::from_edges(24, edges);
            let weights: Vec<f64> = (0..24).map(|i| ((i * 7) % 11) as f64).collect();
            // Unweighted sweep: exercises the reverse union-find fast path.
            let plain = RemovalSweep::new(&g);
            // Weighted sweep: exercises the offline weighted reverse pass.
            let weighted = RemovalSweep::new(&g).with_weights(&weights);
            for rank in [RankBy::DegreeIterative, RankBy::Random { seed }] {
                for sweep in [&plain, &weighted] {
                    let fast = sweep.iterative_fraction(0.1, 6, rank);
                    let slow = sweep.iterative_fraction_naive(0.1, 6, rank);
                    prop_assert_eq!(&fast, &slow, "rank {:?}", rank);
                }
            }
        }

        /// The weighted offline reverse pass reproduces the naive engine
        /// bit-for-bit on random graphs with random integer-valued weights
        /// (integer weights make float summation order unobservable, so
        /// exact equality is the right assertion), across both ranking
        /// modes and with SCC counting on and off.
        #[test]
        fn weighted_offline_equals_naive(
            edges in proptest::collection::vec((0u32..18, 0u32..18), 0..90),
            raw_weights in proptest::collection::vec(0u32..10_000, 18),
            seed in 0u64..300,
            frac_i in 0usize..3
        ) {
            let frac = [0.1, 0.34, 1.0][frac_i];
            let g = DiGraph::from_edges(18, edges);
            let weights: Vec<f64> = raw_weights.iter().map(|&w| w as f64).collect();
            for scc in [false, true] {
                let sweep = RemovalSweep::new(&g).with_weights(&weights).with_scc(scc);
                for rank in [RankBy::DegreeIterative, RankBy::Random { seed }] {
                    let fast = sweep.iterative_fraction(frac, 5, rank);
                    let slow = sweep.iterative_fraction_naive(frac, 5, rank);
                    prop_assert_eq!(&fast, &slow, "scc {} rank {:?} frac {}", scc, rank, frac);
                }
            }
        }

        /// Incrementally maintained survivor degrees agree with a full
        /// recount after every round of removals.
        #[test]
        fn incremental_degrees_match_recount(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..120),
            kill_seed in 0u64..1000
        ) {
            let n = 20u32;
            let g = DiGraph::from_edges(n, edges);
            let mut alive = vec![true; n as usize];
            let mut deg: Vec<u32> = (0..n).map(|v| g.degree(v)).collect();
            let mut s = kill_seed;
            for _round in 0..6 {
                // pick ~3 pseudo-random victims among survivors
                let survivors: Vec<u32> =
                    (0..n).filter(|&v| alive[v as usize]).collect();
                if survivors.is_empty() { break; }
                let mut victims = Vec::new();
                for _ in 0..3usize.min(survivors.len()) {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let v = survivors[(s >> 33) as usize % survivors.len()];
                    if !victims.contains(&v) { victims.push(v); }
                }
                for &v in &victims { alive[v as usize] = false; }
                for &v in &victims {
                    for &w in g.out_neighbors(v) {
                        if alive[w as usize] { deg[w as usize] -= 1; }
                    }
                    for &w in g.in_neighbors(v) {
                        if alive[w as usize] { deg[w as usize] -= 1; }
                    }
                }
                // recount from scratch, the way the naive sweep does
                let mut expect = vec![0u32; n as usize];
                for (a, b) in g.edges() {
                    if alive[a as usize] && alive[b as usize] {
                        expect[a as usize] += 1;
                        expect[b as usize] += 1;
                    }
                }
                for v in 0..n as usize {
                    if alive[v] {
                        prop_assert_eq!(deg[v], expect[v], "node {}", v);
                    }
                }
            }
        }

        /// The sharded reverse pass is bit-identical to the naive engine
        /// at every thread count × chunk granularity, weighted and not,
        /// for both ranking modes. Tiny chunk targets force multi-chunk
        /// shard merges even on these 22-node graphs, so the
        /// survivor-list protocol (not just the serial fallback) is what
        /// is being pinned.
        #[test]
        fn sharded_reverse_pass_equals_naive(
            edges in proptest::collection::vec((0u32..22, 0u32..22), 0..110),
            raw_weights in proptest::collection::vec(0u32..5000, 22),
            threads in 2usize..6,
            chunk_edges in 1usize..24,
            seed in 0u64..200,
        ) {
            let g = DiGraph::from_edges(22, edges);
            let weights: Vec<f64> = raw_weights.iter().map(|&w| w as f64).collect();
            for weighted in [false, true] {
                let base = RemovalSweep::new(&g);
                let base = if weighted { base.with_weights(&weights) } else { base };
                let naive = base.iterative_fraction_naive(0.12, 5, RankBy::DegreeIterative);
                let sharded = RemovalSweep::new(&g)
                    .with_threads(threads)
                    .with_chunk_edges(chunk_edges);
                let sharded = if weighted { sharded.with_weights(&weights) } else { sharded };
                let fast = sharded.iterative_fraction(0.12, 5, RankBy::DegreeIterative);
                prop_assert_eq!(&fast, &naive, "weighted {} threads {}", weighted, threads);
                let rnd_fast = sharded.iterative_fraction(0.12, 4, RankBy::Random { seed });
                let rnd_naive = base.iterative_fraction_naive(0.12, 4, RankBy::Random { seed });
                prop_assert_eq!(&rnd_fast, &rnd_naive, "random mode, weighted {}", weighted);
            }
        }

        /// `ranked` checkpoints through the sharded pass agree with
        /// direct per-checkpoint masking at forced multi-chunk layouts.
        #[test]
        fn sharded_ranked_equals_direct(
            edges in proptest::collection::vec((0u32..18, 0u32..18), 0..80),
            perm_seed in 0u64..500,
            chunk_edges in 1usize..16,
        ) {
            let g = DiGraph::from_edges(18, edges);
            let mut order: Vec<u32> = (0..18).collect();
            let mut s = perm_seed;
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let weights: Vec<f64> = (0..18).map(|i| ((i * 3) % 7) as f64).collect();
            let checkpoints: Vec<usize> = vec![0, 2, 5, 9, 18];
            let pts = RemovalSweep::new(&g)
                .with_weights(&weights)
                .with_threads(4)
                .with_chunk_edges(chunk_edges)
                .ranked(&order, &checkpoints);
            for (pt, &k) in pts.iter().zip(&checkpoints) {
                let mut alive = vec![true; 18];
                for &v in &order[..k.min(order.len())] {
                    alive[v as usize] = false;
                }
                let direct = weakly_connected(&g, Some(&alive));
                prop_assert_eq!(pt.lcc_nodes, direct.largest(), "k = {}", k);
                prop_assert_eq!(pt.wcc_count, direct.count(), "k = {}", k);
                prop_assert_eq!(pt.lcc_weight, direct.largest_weight(&weights), "k = {}", k);
            }
        }

        /// LCC never grows as more nodes are removed along a fixed order.
        #[test]
        fn lcc_monotone_decreasing(
            edges in proptest::collection::vec((0u32..15, 0u32..15), 0..60)
        ) {
            let g = DiGraph::from_edges(15, edges);
            let order: Vec<u32> = (0..15).collect();
            let checkpoints: Vec<usize> = (0..=15).collect();
            let pts = RemovalSweep::new(&g).ranked(&order, &checkpoints);
            for w in pts.windows(2) {
                prop_assert!(w[1].lcc_nodes <= w[0].lcc_nodes);
            }
        }
    }
}
