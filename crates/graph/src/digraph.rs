//! Compressed sparse-row directed graph.

/// Incrementally collects edges, then freezes them into a [`DiGraph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Builder for a graph with `n` nodes (`0..n`).
    pub fn new(n: u32) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Builder with room for `edges` edges pre-reserved, avoiding
    /// reallocation churn during bulk loads.
    pub fn with_capacity(n: u32, edges: usize) -> Self {
        Self {
            n,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a directed edge `a → b`. Self-loops are ignored (the follower
    /// semantics of the study have no self-follows). Out-of-range endpoints
    /// panic.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        assert!(a < self.n && b < self.n, "edge ({a},{b}) out of range");
        if a != b {
            self.edges.push((a, b));
        }
    }

    /// Bulk-add edges.
    pub fn extend<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) {
        for (a, b) in iter {
            self.add_edge(a, b);
        }
    }

    /// Number of edges buffered so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into a [`DiGraph`], deduplicating parallel edges.
    pub fn build(mut self) -> DiGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n as usize;
        let m = self.edges.len();

        // One scratch cursor vector serves both CSR fill passes instead of
        // cloning each (n+1)-length offset array.
        let mut cursor = vec![0u32; n];

        let mut out_offsets = vec![0u32; n + 1];
        for &(a, _) in &self.edges {
            out_offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = vec![0u32; m];
        cursor.copy_from_slice(&out_offsets[..n]);
        for &(a, b) in &self.edges {
            out_targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
        }

        // In-adjacency (reverse CSR).
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, b) in &self.edges {
            in_offsets[b as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0u32; m];
        cursor.copy_from_slice(&in_offsets[..n]);
        for &(a, b) in &self.edges {
            in_sources[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }

        DiGraph {
            n: self.n,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }
}

/// An immutable directed graph in CSR form with both directions indexed.
#[derive(Debug, Clone, PartialEq)]
pub struct DiGraph {
    n: u32,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
}

impl DiGraph {
    /// Build directly from an edge list over `0..n`.
    pub fn from_edges(n: u32, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let iter = edges.into_iter();
        let mut b = GraphBuilder::with_capacity(n, iter.size_hint().0);
        b.extend(iter);
        b.build()
    }

    /// Assemble a CSR graph from pre-sorted per-node adjacency blocks —
    /// the sharded-worldgen ingest path. Each block covers a contiguous
    /// node range starting at `start`; node `start + k`'s out-targets are
    /// `targets[offsets[k] as usize..offsets[k + 1] as usize]` and must
    /// already be **ascending, deduplicated, and self-free** (the
    /// canonical per-user form the social cursor emits). Blocks must
    /// arrive in node order and cover `0..n` exactly.
    ///
    /// Because [`GraphBuilder::build`] sorts edges lexicographically, its
    /// out-CSR is exactly the concatenation of such blocks and its
    /// in-CSR fill visits sources in ascending order — so this
    /// constructor reproduces `build()`'s output bit-for-bit with no
    /// global sort (differential-tested below and in the worldgen
    /// sharding proptests).
    pub fn from_sorted_blocks<'a>(
        n: u32,
        blocks: impl IntoIterator<Item = (u32, &'a [u32], &'a [u32])> + Clone,
    ) -> Self {
        let n = n as usize;
        let mut out_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0u32);
        let mut m = 0usize;
        for (start, offsets, targets) in blocks.clone() {
            assert_eq!(
                start as usize + 1,
                out_offsets.len(),
                "blocks out of order or non-contiguous"
            );
            debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
            let base = m as u32;
            for w in offsets.windows(2) {
                debug_assert!(w[0] <= w[1]);
                out_offsets.push(base + w[1]);
            }
            m += targets.len();
        }
        assert_eq!(out_offsets.len(), n + 1, "blocks must cover every node");

        let mut out_targets = Vec::with_capacity(m);
        let mut in_offsets = vec![0u32; n + 1];
        for (_, _, targets) in blocks.clone() {
            for &t in targets {
                debug_assert!((t as usize) < n, "target {t} out of range");
                in_offsets[t as usize + 1] += 1;
            }
            out_targets.extend_from_slice(targets);
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        // Sources are visited in ascending order, so each target's source
        // list comes out ascending — the same order build()'s
        // lexicographic edge sort produces.
        let mut in_sources = vec![0u32; m];
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        for (start, offsets, targets) in blocks {
            for k in 0..offsets.len() - 1 {
                let a = start + k as u32;
                for &t in &targets[offsets[k] as usize..offsets[k + 1] as usize] {
                    in_sources[cursor[t as usize] as usize] = a;
                    cursor[t as usize] += 1;
                }
            }
        }
        DiGraph {
            n: n as u32,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n as usize
    }

    /// Number of (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbours of `v` (sorted ascending).
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbours of `v`.
    pub fn in_neighbors(&self, v: u32) -> &[u32] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> u32 {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: u32) -> u32 {
        self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]
    }

    /// Total degree (in + out) of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Does the edge `a → b` exist?
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.out_neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate all edges `(a, b)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n).flat_map(move |a| self.out_neighbors(a).iter().map(move |&b| (a, b)))
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = u32> {
        0..self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.degree(3), 2);
    }

    #[test]
    fn sorted_blocks_match_builder_exactly() {
        // Random sorted-unique per-node adjacency, split into blocks at
        // several granularities: from_sorted_blocks must equal build().
        let n = 97u32;
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut adjacency: Vec<Vec<u32>> = Vec::new();
        for v in 0..n {
            let mut targets: Vec<u32> = Vec::new();
            for _ in 0..(s % 7) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let t = (s >> 33) as u32 % n;
                if t != v {
                    targets.push(t);
                }
            }
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            targets.sort_unstable();
            targets.dedup();
            adjacency.push(targets);
        }
        let reference = DiGraph::from_edges(
            n,
            adjacency
                .iter()
                .enumerate()
                .flat_map(|(a, ts)| ts.iter().map(move |&t| (a as u32, t))),
        );
        for block in [1usize, 5, 32, 200] {
            let mut blocks: Vec<(u32, Vec<u32>, Vec<u32>)> = Vec::new();
            let mut lo = 0usize;
            while lo < n as usize {
                let hi = (lo + block).min(n as usize);
                let mut offsets = vec![0u32];
                let mut targets = Vec::new();
                for adj in &adjacency[lo..hi] {
                    targets.extend_from_slice(adj);
                    offsets.push(targets.len() as u32);
                }
                blocks.push((lo as u32, offsets, targets));
                lo = hi;
            }
            let g = DiGraph::from_sorted_blocks(
                n,
                blocks.iter().map(|(s, o, t)| (*s, o.as_slice(), t.as_slice())),
            );
            assert_eq!(g, reference, "block size {block}");
        }
    }

    #[test]
    fn parallel_edges_dedup() {
        let g = DiGraph::from_edges(2, [(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let g = DiGraph::from_edges(3, [(0, 0), (1, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn has_edge_works() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 0));
    }

    #[test]
    fn edges_iterator_round_trips() {
        let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        let g = DiGraph::from_edges(4, edges.clone());
        let got: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(got, edges);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, []);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn isolated_nodes_have_no_neighbors() {
        let g = DiGraph::from_edges(5, [(0, 1)]);
        assert!(g.out_neighbors(3).is_empty());
        assert!(g.in_neighbors(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// CSR round-trips an arbitrary edge set exactly (after dedup and
        /// self-loop removal).
        #[test]
        fn csr_round_trip(edges in proptest::collection::vec((0u32..40, 0u32..40), 0..300)) {
            let expect: BTreeSet<(u32, u32)> = edges
                .iter()
                .copied()
                .filter(|(a, b)| a != b)
                .collect();
            let g = DiGraph::from_edges(40, edges);
            let got: BTreeSet<(u32, u32)> = g.edges().collect();
            prop_assert_eq!(got, expect);
        }

        /// Degree sums equal edge count in both directions.
        #[test]
        fn degree_sums(edges in proptest::collection::vec((0u32..40, 0u32..40), 0..300)) {
            let g = DiGraph::from_edges(40, edges);
            let out_sum: u32 = g.nodes().map(|v| g.out_degree(v)).sum();
            let in_sum: u32 = g.nodes().map(|v| g.in_degree(v)).sum();
            prop_assert_eq!(out_sum as usize, g.edge_count());
            prop_assert_eq!(in_sum as usize, g.edge_count());
        }

        /// in_neighbors is exactly the transpose of out_neighbors.
        #[test]
        fn transpose_consistency(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..200)) {
            let g = DiGraph::from_edges(30, edges);
            for (a, b) in g.edges() {
                prop_assert!(g.in_neighbors(b).contains(&a));
            }
            for v in g.nodes() {
                for &s in g.in_neighbors(v) {
                    prop_assert!(g.has_edge(s, v));
                }
            }
        }
    }
}
