//! Scenario-facing generation streams: keyed per-instance draws layered
//! on top of an already-generated world.
//!
//! The correlated-failure scenario engine
//! (`fediscope_replication::scenario`) consumes world facts the base
//! generator does not decide — most importantly *rebirth*: the paper's
//! churn model (§4, 4.5% of instances retiring per month) only records
//! when an instance disappears, but a scenario that models churn as
//! permanent loss overstates damage, because some retired instances come
//! back under the same domain. This module generates those extra streams
//! deterministically: every draw is keyed by `(master seed, instance id)`
//! via [`sub_seed`], so the stream is independent of evaluation order and
//! of every other stream derived from the same master seed.

use crate::config::sub_seed;
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::{Day, WINDOW_DAYS};
use rand::prelude::*;

/// Stream tag for rebirth draws (keeps them out of phase with the base
/// generator's per-instance streams derived from the same master seed).
const REBIRTH_STREAM: u64 = 0x5265_4269_7274_6800;

/// Default fraction of churned instances that come back before the end
/// of the window.
pub const DEFAULT_REBIRTH_FRAC: f64 = 0.25;

/// For each instance, the day it comes back from retirement — `None` for
/// instances that never retired or stay gone. Each retired instance is
/// reborn with probability `rebirth_frac`, on a uniform day in
/// `(retired, WINDOW_DAYS)`; instances retiring on the window's last day
/// have no room to return and stay gone.
///
/// Deterministic and order-independent: instance `i`'s draw depends only
/// on `(seed, i)`, never on how many other instances retired.
pub fn rebirth_days(
    schedules: &[AvailabilitySchedule],
    seed: u64,
    rebirth_frac: f64,
) -> Vec<Option<Day>> {
    rebirth_days_with_block(schedules, seed, rebirth_frac, crate::shard::INSTANCE_BLOCK)
}

/// [`rebirth_days`] with an explicit block size, fanned out over
/// [`fediscope_graph::par::parallel_map`]. The keyed per-instance draws
/// make any partition bit-identical to the serial walk.
pub fn rebirth_days_with_block(
    schedules: &[AvailabilitySchedule],
    seed: u64,
    rebirth_frac: f64,
    block: usize,
) -> Vec<Option<Day>> {
    let frac = rebirth_frac.clamp(0.0, 1.0);
    let segments = fediscope_graph::par::parallel_map(
        &crate::shard::blocks(schedules.len(), block),
        |&(lo, hi)| {
            schedules[lo..hi]
                .iter()
                .enumerate()
                .map(|(k, sch)| rebirth_one(sch, seed, frac, lo + k))
                .collect::<Vec<_>>()
        },
    );
    segments.into_iter().flatten().collect()
}

fn rebirth_one(
    sch: &AvailabilitySchedule,
    seed: u64,
    frac: f64,
    i: usize,
) -> Option<Day> {
    let retired = sch.retired?;
    if retired.0 + 1 >= WINDOW_DAYS {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(sub_seed(seed, REBIRTH_STREAM ^ i as u64));
    if !rng.gen_bool(frac) {
        return None;
    }
    Some(Day(rng.gen_range(retired.0 + 1..WINDOW_DAYS)))
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Generator, WorldConfig};

    fn schedules(seed: u64) -> Vec<AvailabilitySchedule> {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 64;
        cfg.n_users = 400;
        Generator::generate_world(cfg).schedules
    }

    #[test]
    fn rebirth_only_follows_retirement() {
        let scheds = schedules(5);
        let rebirth = rebirth_days(&scheds, 99, 1.0);
        assert_eq!(rebirth.len(), scheds.len());
        let mut reborn = 0;
        for (sch, rb) in scheds.iter().zip(&rebirth) {
            match (sch.retired, rb) {
                (None, Some(_)) => panic!("rebirth without retirement"),
                (Some(ret), Some(day)) => {
                    assert!(day.0 > ret.0);
                    assert!(day.0 < WINDOW_DAYS);
                    reborn += 1;
                }
                _ => {}
            }
        }
        assert!(reborn > 0, "frac 1.0 revives every eligible instance");
    }

    #[test]
    fn frac_zero_revives_nothing_and_frac_bounds_are_clamped() {
        let scheds = schedules(7);
        assert!(rebirth_days(&scheds, 99, 0.0).iter().all(Option::is_none));
        assert!(rebirth_days(&scheds, 99, -3.0).iter().all(Option::is_none));
        // > 1.0 clamps to certainty rather than panicking in gen_bool
        let all = rebirth_days(&scheds, 99, 7.5);
        let eligible = scheds
            .iter()
            .filter(|s| s.retired.is_some_and(|r| r.0 + 1 < WINDOW_DAYS))
            .count();
        assert_eq!(all.iter().filter(|r| r.is_some()).count(), eligible);
    }

    #[test]
    fn block_size_is_unobservable() {
        let scheds = schedules(13);
        let a = rebirth_days_with_block(&scheds, 42, 0.5, 1);
        let b = rebirth_days_with_block(&scheds, 42, 0.5, 17);
        assert_eq!(a, b);
        assert_eq!(a, rebirth_days(&scheds, 42, 0.5));
    }

    #[test]
    fn deterministic_and_order_independent() {
        let scheds = schedules(11);
        let a = rebirth_days(&scheds, 42, 0.5);
        let b = rebirth_days(&scheds, 42, 0.5);
        assert_eq!(a, b);
        // a different master seed moves the draws
        assert_ne!(a, rebirth_days(&scheds, 43, 0.5));
        // keyed streams: instance i's draw survives truncating the table
        let half = rebirth_days(&scheds[..32], 42, 0.5);
        assert_eq!(&a[..32], &half[..]);
    }
}
