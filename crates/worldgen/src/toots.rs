//! Stage 6: per-user toot streams for the delivery simulator.
//!
//! The user table only carries *lifetime* toot counts (Fig. 2a's
//! distribution over the 472-day measurement window). The federation
//! simulator needs those counts turned into timestamped events over its
//! much shorter horizon. This stage spreads each user's lifetime rate
//! uniformly over the simulation window: a user with `toot_count` lifetime
//! toots posts at `toot_count / WINDOW_EPOCHS` toots per tick, scaled by
//! the tier's [`ScaleTier::fedsim_rate_scale`] knob.
//!
//! Determinism follows the repo's counter-derived-stream idiom
//! (`replication::weighted`): every user gets an RNG seeded from
//! `sub_seed(seed, 6) ^ mix(user_id)`, so the event stream for user *u*
//! never depends on how many events users `0..u` drew — sharding the loop
//! or regenerating a single user's stream yields bit-identical events.

use crate::config::{sub_seed, WorldConfig};
use fediscope_model::time::WINDOW_EPOCHS;
use fediscope_model::traffic::TootArena;
use fediscope_model::user::UserProfile;
use fediscope_model::ScaleTier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The worldgen stream id for this stage (stages 1–5 are taken by
/// instances/users/social/availability/twitter).
const TOOT_STAGE: u64 = 6;

/// Counter-derived per-user stream seed, same mixer as
/// `replication::weighted::user_stream_rng`.
fn user_rng(stage_seed: u64, user: u32) -> StdRng {
    StdRng::seed_from_u64(stage_seed ^ (user as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Generate every user's toot events over `horizon` ticks and pack them
/// into a canonical [`TootArena`].
///
/// Expected events for user `u` = `toot_count / WINDOW_EPOCHS × horizon ×
/// rate_scale`; the fractional part is resolved with one Bernoulli draw so
/// the population total is unbiased. Event ticks are uniform over the
/// horizon (the paper gives no intra-day shape; uniformity keeps the
/// per-tick load interpretable as the mean rate).
pub fn generate(cfg: &WorldConfig, users: &[UserProfile], horizon: u32, rate_scale: f64) -> TootArena {
    generate_with_block(cfg, users, horizon, rate_scale, crate::shard::DEFAULT_BLOCK)
}

/// [`generate`] with an explicit user-block size: each block's events are
/// drawn independently from the per-user streams and concatenated. The
/// arena canonicalises per-tick author order, so output is bit-identical
/// at any block size (the sharding proptests pin this).
pub fn generate_with_block(
    cfg: &WorldConfig,
    users: &[UserProfile],
    horizon: u32,
    rate_scale: f64,
    block: usize,
) -> TootArena {
    assert!(horizon > 0, "toot horizon must be positive");
    let stage_seed = sub_seed(cfg.seed, TOOT_STAGE);
    let per_tick = rate_scale * horizon as f64 / WINDOW_EPOCHS as f64;
    let segments = fediscope_graph::par::parallel_map(
        &crate::shard::blocks(users.len(), block),
        |&(lo, hi)| {
            let mut events: Vec<(u32, u32)> = Vec::new();
            for u in &users[lo..hi] {
                if u.toot_count == 0 {
                    continue;
                }
                let expect = u.toot_count as f64 * per_tick;
                let mut rng = user_rng(stage_seed, u.id.0);
                let mut count = expect.floor() as u64;
                if rng.gen_bool(expect.fract()) {
                    count += 1;
                }
                for _ in 0..count {
                    events.push((rng.gen_range(0..horizon), u.id.0));
                }
            }
            events
        },
    );
    TootArena::from_events(horizon, segments.into_iter().flatten())
}

/// Tier-knob convenience: horizon and rate scale from [`ScaleTier`].
pub fn generate_for_tier(cfg: &WorldConfig, users: &[UserProfile], tier: ScaleTier) -> TootArena {
    generate(cfg, users, tier.fedsim_horizon_epochs(), tier.fedsim_rate_scale())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Generator;

    #[test]
    fn deterministic_and_rate_calibrated() {
        let cfg = WorldConfig::tiny(11);
        let w = Generator::generate_world(cfg.clone());
        let a = generate(&cfg, &w.users, 288, 1.0);
        let b = generate(&cfg, &w.users, 288, 1.0);
        assert_eq!(a, b);
        // Expected total = total lifetime toots × horizon / window.
        let expect = w.total_toots() as f64 * 288.0 / WINDOW_EPOCHS as f64;
        let got = a.n_toots() as f64;
        assert!(
            got > expect * 0.5 && got < expect * 2.0,
            "total {got} vs expected {expect}"
        );
        // Scaling the rate scales the volume.
        let double = generate(&cfg, &w.users, 288, 2.0);
        assert!(double.n_toots() > a.n_toots());
    }

    #[test]
    fn per_user_streams_are_independent_of_population() {
        // Dropping the silent users must not perturb anyone else's events:
        // the per-user counter-derived streams make the stage shardable.
        let cfg = WorldConfig::tiny(13);
        let w = Generator::generate_world(cfg.clone());
        let full = generate(&cfg, &w.users, 64, 1.0);
        let tooting: Vec<_> = w.users.iter().filter(|u| u.has_tooted()).copied().collect();
        let only_tooting = generate(&cfg, &tooting, 64, 1.0);
        assert_eq!(full, only_tooting);
    }
}
