//! The synthetic observatory: a mnm.social-style poll feed derived from
//! ground-truth schedules.
//!
//! §3 of the paper describes 5-minute polls of every instance over the
//! 472-day window (≈0.5B poll outcomes at 2019 scale, ≈4B at the modern
//! 30k-instance tier). This module replays that feed from a generated
//! world's schedules: per instance, one [`ObservedSeries`] with a poll at
//! every `poll_stride` epochs from the instance's creation day to the end
//! of the window (retired instances keep being polled and answer `Down`,
//! like dead seed-list entries in the real monitor).
//!
//! The feed exists so the measurement path can be exercised end to end:
//! `monitor::observe::arena_from_polls` streams these series back into a
//! columnar `OutageArena` and the §4 sweep runs identically on ground
//! truth and on "observed" data. A full-resolution full-window series is
//! ~136K polls per instance, so the API is streaming: [`series_into`]
//! fills a caller-owned scratch series, and [`for_each_series`] walks the
//! whole population with a single reused buffer — the modern tier never
//! materialises the 4-billion-poll feed at once.
//!
//! [`series_into`]: SyntheticObservatory::series_into
//! [`for_each_series`]: SyntheticObservatory::for_each_series

use fediscope_model::datasets::{InstanceApiInfo, ObservedSeries, PollResult};
use fediscope_model::ids::InstanceId;
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::{Epoch, WINDOW_EPOCHS};

/// A poll feed over a generated world's ground-truth schedules.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticObservatory<'a> {
    schedules: &'a [AvailabilitySchedule],
    poll_stride: u32,
    unknown_prob: f64,
    unknown_seed: u64,
}

impl<'a> SyntheticObservatory<'a> {
    /// Full-resolution (every 5-minute epoch) observatory.
    pub fn new(schedules: &'a [AvailabilitySchedule]) -> Self {
        Self {
            schedules,
            poll_stride: 1,
            unknown_prob: 0.0,
            unknown_seed: 0,
        }
    }

    /// Poll every `stride` epochs instead of every epoch (coarser feeds
    /// for cheap tests; reconstruction is only interval-exact at stride 1).
    pub fn with_poll_stride(mut self, stride: u32) -> Self {
        assert!(stride >= 1);
        self.poll_stride = stride;
        self
    }

    /// Degrade the feed: each poll independently becomes
    /// [`PollResult::Unknown`] with probability `prob`, chosen
    /// deterministically from `seed` and the poll's (instance, epoch)
    /// coordinates. This replays a fault-injected crawl's measurement gaps
    /// offline — no listener, no executor — so the gap-tolerant
    /// reconstruction path can be exercised at any scale.
    pub fn with_unknown_mask(mut self, prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        self.unknown_prob = prob;
        self.unknown_seed = seed;
        self
    }

    /// Number of monitored instances.
    pub fn len(&self) -> usize {
        self.schedules.len()
    }

    /// True when no instances are monitored.
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty()
    }

    /// Fill `out` with instance `i`'s poll series, reusing its buffer.
    /// The `Up` payload carries an empty [`InstanceApiInfo`] — availability
    /// reconstruction only reads the up/down bit.
    pub fn series_into(&self, i: usize, out: &mut ObservedSeries) {
        let s = &self.schedules[i];
        out.instance = InstanceId(i as u32);
        out.polls.clear();
        let from = s.birth_epoch().0;
        let mut e = from;
        while e < WINDOW_EPOCHS {
            let result = if self.masked(i, e) {
                PollResult::Unknown
            } else if s.is_up(Epoch(e)) {
                PollResult::Up(InstanceApiInfo {
                    name: String::new(),
                    version: String::new(),
                    toots: 0,
                    users: 0,
                    subscriptions: 0,
                    logins: 0,
                    registration_open: false,
                })
            } else {
                PollResult::Down
            };
            out.polls.push((Epoch(e), result));
            e += self.poll_stride;
        }
    }

    /// Does the unknown mask swallow the poll of instance `i` at epoch `e`?
    fn masked(&self, i: usize, e: u32) -> bool {
        if self.unknown_prob <= 0.0 {
            return false;
        }
        let h = splitmix(self.unknown_seed ^ ((i as u64) << 34) ^ u64::from(e));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.unknown_prob
    }

    /// Owned series for instance `i` (convenience for tests).
    pub fn series(&self, i: usize) -> ObservedSeries {
        let mut out = ObservedSeries::default();
        self.series_into(i, &mut out);
        out
    }

    /// Stream every instance's series through `f` with one reused buffer.
    pub fn for_each_series(&self, mut f: impl FnMut(usize, &ObservedSeries)) {
        let mut scratch = ObservedSeries::default();
        for i in 0..self.schedules.len() {
            self.series_into(i, &mut scratch);
            f(i, &scratch);
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::{Day, EPOCHS_PER_DAY};

    #[test]
    fn polls_cover_lifetime_and_reflect_outages() {
        let mut s = AvailabilitySchedule::new(Day(1), Some(Day(3)));
        s.add_outage(
            Day(1).start_epoch(),
            Epoch(Day(1).start_epoch().0 + 10),
            OutageCause::Organic,
        );
        let schedules = vec![s];
        let obs = SyntheticObservatory::new(&schedules);
        let series = obs.series(0);
        assert_eq!(series.instance, InstanceId(0));
        // polls run from creation to the window end
        assert_eq!(series.polls.first().unwrap().0, Day(1).start_epoch());
        assert_eq!(
            series.polls.len() as u32,
            WINDOW_EPOCHS - Day(1).start_epoch().0
        );
        // first 10 polls down, then up until retirement, then down forever
        assert!(series.polls[..10].iter().all(|(_, r)| !r.is_up()));
        assert!(series.polls[10].1.is_up());
        let death = Day(3).start_epoch().0;
        let at = |e: u32| &series.polls[(e - Day(1).start_epoch().0) as usize];
        assert!(at(death - 1).1.is_up());
        assert!(!at(death).1.is_up());
        assert!(!series.polls.last().unwrap().1.is_up());
    }

    #[test]
    fn stride_thins_the_feed() {
        let schedules = vec![AvailabilitySchedule::always_up()];
        let obs = SyntheticObservatory::new(&schedules).with_poll_stride(EPOCHS_PER_DAY);
        let series = obs.series(0);
        assert_eq!(series.polls.len() as u32, WINDOW_EPOCHS / EPOCHS_PER_DAY);
        assert!(series.polls.iter().all(|(_, r)| r.is_up()));
    }

    #[test]
    fn unknown_mask_is_deterministic_and_proportional() {
        let schedules = vec![AvailabilitySchedule::always_up()];
        let obs = SyntheticObservatory::new(&schedules)
            .with_poll_stride(13)
            .with_unknown_mask(0.2, 42);
        let a = obs.series(0);
        let b = obs.series(0);
        assert_eq!(a, b, "same seed, same mask");
        let unknown = a.polls.iter().filter(|(_, r)| !r.is_known()).count();
        let frac = unknown as f64 / a.polls.len() as f64;
        assert!((frac - 0.2).abs() < 0.03, "mask fraction {frac}");
        // surviving polls still agree with ground truth
        assert!(a
            .polls
            .iter()
            .filter(|(_, r)| r.is_known())
            .all(|(_, r)| r.is_up()));
        // a different seed masks different polls
        let other = SyntheticObservatory::new(&schedules)
            .with_poll_stride(13)
            .with_unknown_mask(0.2, 43)
            .series(0);
        assert_ne!(a, other);
    }

    #[test]
    fn for_each_reuses_scratch() {
        let schedules = vec![
            AvailabilitySchedule::always_up(),
            AvailabilitySchedule::new(Day(5), None),
        ];
        let obs = SyntheticObservatory::new(&schedules).with_poll_stride(1000);
        let mut seen = Vec::new();
        obs.for_each_series(|i, s| seen.push((i, s.instance, s.polls.len())));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1, InstanceId(0));
        assert_eq!(seen[1].1, InstanceId(1));
        assert!(seen[1].2 < seen[0].2, "later-born instance has fewer polls");
    }
}
