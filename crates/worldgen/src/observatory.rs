//! The synthetic observatory: a mnm.social-style poll feed derived from
//! ground-truth schedules.
//!
//! §3 of the paper describes 5-minute polls of every instance over the
//! 472-day window (≈0.5B poll outcomes at 2019 scale, ≈4B at the modern
//! 30k-instance tier). This module replays that feed from a generated
//! world's schedules: per instance, one [`ObservedSeries`] with a poll at
//! every `poll_stride` epochs from the instance's creation day to the end
//! of the window (retired instances keep being polled and answer `Down`,
//! like dead seed-list entries in the real monitor).
//!
//! The feed exists so the measurement path can be exercised end to end:
//! `monitor::observe::arena_from_polls` streams these series back into a
//! columnar `OutageArena` and the §4 sweep runs identically on ground
//! truth and on "observed" data. A full-resolution full-window series is
//! ~136K polls per instance, so the API is streaming: [`series_into`]
//! fills a caller-owned scratch series, and [`for_each_series`] walks the
//! whole population with a single reused buffer — the modern tier never
//! materialises the 4-billion-poll feed at once.
//!
//! [`series_into`]: SyntheticObservatory::series_into
//! [`for_each_series`]: SyntheticObservatory::for_each_series

use fediscope_model::datasets::{InstanceApiInfo, ObservedSeries, PollResult};
use fediscope_model::ids::InstanceId;
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::{Epoch, WINDOW_EPOCHS};

/// A poll feed over a generated world's ground-truth schedules.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticObservatory<'a> {
    schedules: &'a [AvailabilitySchedule],
    poll_stride: u32,
}

impl<'a> SyntheticObservatory<'a> {
    /// Full-resolution (every 5-minute epoch) observatory.
    pub fn new(schedules: &'a [AvailabilitySchedule]) -> Self {
        Self {
            schedules,
            poll_stride: 1,
        }
    }

    /// Poll every `stride` epochs instead of every epoch (coarser feeds
    /// for cheap tests; reconstruction is only interval-exact at stride 1).
    pub fn with_poll_stride(mut self, stride: u32) -> Self {
        assert!(stride >= 1);
        self.poll_stride = stride;
        self
    }

    /// Number of monitored instances.
    pub fn len(&self) -> usize {
        self.schedules.len()
    }

    /// True when no instances are monitored.
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty()
    }

    /// Fill `out` with instance `i`'s poll series, reusing its buffer.
    /// The `Up` payload carries an empty [`InstanceApiInfo`] — availability
    /// reconstruction only reads the up/down bit.
    pub fn series_into(&self, i: usize, out: &mut ObservedSeries) {
        let s = &self.schedules[i];
        out.instance = InstanceId(i as u32);
        out.polls.clear();
        let from = s.birth_epoch().0;
        let mut e = from;
        while e < WINDOW_EPOCHS {
            let result = if s.is_up(Epoch(e)) {
                PollResult::Up(InstanceApiInfo {
                    name: String::new(),
                    version: String::new(),
                    toots: 0,
                    users: 0,
                    subscriptions: 0,
                    logins: 0,
                    registration_open: false,
                })
            } else {
                PollResult::Down
            };
            out.polls.push((Epoch(e), result));
            e += self.poll_stride;
        }
    }

    /// Owned series for instance `i` (convenience for tests).
    pub fn series(&self, i: usize) -> ObservedSeries {
        let mut out = ObservedSeries::default();
        self.series_into(i, &mut out);
        out
    }

    /// Stream every instance's series through `f` with one reused buffer.
    pub fn for_each_series(&self, mut f: impl FnMut(usize, &ObservedSeries)) {
        let mut scratch = ObservedSeries::default();
        for i in 0..self.schedules.len() {
            self.series_into(i, &mut scratch);
            f(i, &scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;
    use fediscope_model::time::{Day, EPOCHS_PER_DAY};

    #[test]
    fn polls_cover_lifetime_and_reflect_outages() {
        let mut s = AvailabilitySchedule::new(Day(1), Some(Day(3)));
        s.add_outage(
            Day(1).start_epoch(),
            Epoch(Day(1).start_epoch().0 + 10),
            OutageCause::Organic,
        );
        let schedules = vec![s];
        let obs = SyntheticObservatory::new(&schedules);
        let series = obs.series(0);
        assert_eq!(series.instance, InstanceId(0));
        // polls run from creation to the window end
        assert_eq!(series.polls.first().unwrap().0, Day(1).start_epoch());
        assert_eq!(
            series.polls.len() as u32,
            WINDOW_EPOCHS - Day(1).start_epoch().0
        );
        // first 10 polls down, then up until retirement, then down forever
        assert!(series.polls[..10].iter().all(|(_, r)| !r.is_up()));
        assert!(series.polls[10].1.is_up());
        let death = Day(3).start_epoch().0;
        let at = |e: u32| &series.polls[(e - Day(1).start_epoch().0) as usize];
        assert!(at(death - 1).1.is_up());
        assert!(!at(death).1.is_up());
        assert!(!series.polls.last().unwrap().1.is_up());
    }

    #[test]
    fn stride_thins_the_feed() {
        let schedules = vec![AvailabilitySchedule::always_up()];
        let obs = SyntheticObservatory::new(&schedules).with_poll_stride(EPOCHS_PER_DAY);
        let series = obs.series(0);
        assert_eq!(series.polls.len() as u32, WINDOW_EPOCHS / EPOCHS_PER_DAY);
        assert!(series.polls.iter().all(|(_, r)| r.is_up()));
    }

    #[test]
    fn for_each_reuses_scratch() {
        let schedules = vec![
            AvailabilitySchedule::always_up(),
            AvailabilitySchedule::new(Day(5), None),
        ];
        let obs = SyntheticObservatory::new(&schedules).with_poll_stride(1000);
        let mut seen = Vec::new();
        obs.for_each_series(|i, s| seen.push((i, s.instance, s.polls.len())));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1, InstanceId(0));
        assert_eq!(seen[1].1, InstanceId(1));
        assert!(seen[1].2 < seen[0].2, "later-born instance has fewer polls");
    }
}
