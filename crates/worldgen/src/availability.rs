//! Availability-schedule generation (§4.4 calibration).
//!
//! Three failure processes are superimposed per instance:
//!
//! 1. **Organic outages.** Each instance draws a lifetime downtime budget
//!    from a log-normal (median ≈5%, σ tuned so ≈11% of instances exceed 50%
//!    downtime). The budget is spent as many short blips plus — for unlucky
//!    instances — one long multi-day/multi-week outage, reproducing Fig. 10's
//!    duration tail (25% of instances see a ≥1-day outage; 7% a >1-month one).
//! 2. **Certificate expiries** (Fig. 9b). Instances without automated renewal
//!    go down when their certificate lapses; a synchronized Let's Encrypt
//!    cohort expires together on 2018-07-23 (105 instances in the paper).
//! 3. **AS-wide failures** (Table 1). Six ASes suffer between 1 and 15
//!    simultaneous all-instance outages.
//!
//! Instance churn (21.3% permanent departures) is also applied here.
//!
//! Sharded (PR 10): every decision is keyed to the instance it concerns
//! ([`crate::shard::unit_rng`]) — churn and cert-cohort membership become
//! per-instance Bernoulli draws instead of global shuffles, and the
//! AS-wide failure intervals are precomputed per ASN independent of
//! membership — so per-instance schedules can be generated in any block
//! partition with identical output. [`generate_arena`] streams each
//! block's raw clipped intervals into the counting-sort
//! [`OutageArena::from_unsorted`] path, never materialising sorted
//! per-instance schedules.

use crate::config::{sub_seed, WorldConfig};
use crate::shard::{blocks, unit_rng, INSTANCE_BLOCK};
use fediscope_graph::par;
use fediscope_model::ids::AsId;
use fediscope_model::instance::Instance;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena, OutageCause};
use fediscope_model::time::{Day, Epoch, EPOCHS_PER_DAY, WINDOW_DAYS, WINDOW_EPOCHS};
use rand::prelude::*;
use rand_distr::{Distribution, LogNormal};

/// RNG stream tags: one sub-stream per decision family, so adding draws
/// to one family never shifts another.
const CHURN_TAG: u64 = 0x4348_5552_4e00_0000; // "CHURN"
const COHORT_TAG: u64 = 0x434f_484f_5254_0000; // "COHORT"
const SCHED_TAG: u64 = 0x5343_4845_4400_0000; // "SCHED"
const AS_TAG: u64 = 0x4153_4641_494c_0000; // "ASFAIL"

/// Table 1 of the paper: `(ASN, number of distinct AS-wide failures)`.
pub const AS_FAILURE_PLAN: [(u32, u32); 6] = [
    (9370, 1),   // Sakura: the 97-instance event
    (20473, 4),  // Choopa
    (8075, 7),   // Microsoft
    (12322, 15), // Free SAS
    (2516, 4),   // KDDI
    (9371, 14),  // Sakura (2)
];

/// The bulk Let's Encrypt expiry day: 2018-07-23 (window day 468).
pub fn cohort_expiry_day() -> Day {
    Day::from_civil(2018, 7, 23).expect("2018-07-23 inside window")
}

/// Per-instance size-bin downtime multiplier (Fig. 8's non-monotonic
/// pattern: `<10K`-toot instances are the flakiest, 100K–1M the most solid,
/// `>1M` slightly worse again — "instance popularity is not a good
/// predictor of availability").
fn size_multiplier(toots: u64) -> f64 {
    match toots {
        0..=9_999 => 1.2,
        10_000..=99_999 => 0.55,
        100_000..=999_999 => 0.20,
        _ => 0.5,
    }
}

/// Frozen draw context shared by every shard: distributions plus the
/// membership-independent AS-wide failure plan.
struct OutagePlanner {
    stage_seed: u64,
    churn_frac: f64,
    downtime: LogNormal,
    blip_dur: LogNormal,
    long_dur: LogNormal,
    /// `(asn, outage intervals)` — drawn per ASN from its own keyed
    /// stream, regardless of whether any instance lives there, so the
    /// plan never depends on the generated population.
    as_plan: Vec<(AsId, Vec<(Epoch, u32)>)>,
}

impl OutagePlanner {
    fn new(cfg: &WorldConfig) -> Self {
        let stage_seed = sub_seed(cfg.seed, 4);
        let as_dur = LogNormal::new((24.0f64).ln(), 0.8).unwrap();
        let as_plan = AS_FAILURE_PLAN
            .iter()
            .map(|&(asn, failures)| {
                let mut rng = unit_rng(stage_seed ^ AS_TAG, asn as u64);
                let events = (0..failures)
                    .map(|_| {
                        let start = Epoch(rng.gen_range(0..WINDOW_EPOCHS - 1));
                        // a couple of hours median, up to a day
                        let dur = (as_dur.sample(&mut rng) as u32).clamp(6, EPOCHS_PER_DAY);
                        (start, dur)
                    })
                    .collect();
                (AsId(asn), events)
            })
            .collect();
        Self {
            stage_seed,
            churn_frac: cfg.churn_frac,
            downtime: LogNormal::new(cfg.downtime_median.ln(), cfg.downtime_sigma).unwrap(),
            // Blip durations: median ≈8 hours, capped below one day
            // (day-plus outages come exclusively from the long-outage path
            // so Fig. 10's 25%-with-a-day-outage calibration holds).
            blip_dur: LogNormal::new((96.0f64).ln(), 1.3).unwrap(),
            // long outages: median ~3 days, heavy upper tail (weeks+).
            long_dur: LogNormal::new((3.0 * EPOCHS_PER_DAY as f64).ln(), 1.0).unwrap(),
            as_plan,
        }
    }

    /// Draw instance `i`'s lifetime and its full clipped interval list —
    /// sorted-builder and unsorted-arena paths both consume exactly this.
    fn draw_instance(
        &self,
        inst: &Instance,
        i: usize,
    ) -> (Day, Option<Day>, Vec<(Epoch, Epoch, OutageCause)>) {
        let created = inst.created;
        let mut churn_rng = unit_rng(self.stage_seed ^ CHURN_TAG, i as u64);
        let retired = if churn_rng.gen_bool(self.churn_frac) {
            let earliest = created.0 + 14;
            if earliest >= WINDOW_DAYS - 1 {
                Some(Day(WINDOW_DAYS - 1))
            } else {
                Some(Day(churn_rng.gen_range(earliest..WINDOW_DAYS)))
            }
        } else {
            None
        };
        let birth = created.start_epoch().0;
        let death = retired
            .map(|d| d.start_epoch().0)
            .unwrap_or(WINDOW_EPOCHS)
            .min(WINDOW_EPOCHS);
        let life = death.saturating_sub(birth) as f64;

        let mut out: Vec<(Epoch, Epoch, OutageCause)> = Vec::new();
        // The add_outage clip rule, applied at emission so both builder
        // paths see the identical surviving-interval stream.
        let emit = |start: f64, end: f64, cause: OutageCause, out: &mut Vec<_>| {
            let lo = birth.max(start as u32);
            let hi = death.min(end as u32).min(WINDOW_EPOCHS);
            if lo < hi {
                out.push((Epoch(lo), Epoch(hi), cause));
            }
        };

        if life < EPOCHS_PER_DAY as f64 {
            return (created, retired, out);
        }
        let mut rng = unit_rng(self.stage_seed ^ SCHED_TAG, i as u64);

        // lifetime downtime target
        let mut d_target: f64 = self.downtime.sample(&mut rng) * size_multiplier(inst.toot_count);
        d_target = d_target.clamp(0.0, 0.95);
        // 2% of instances are genuinely never down (paper: 98% fail at
        // least once).
        if rng.gen_bool(0.02) {
            d_target = 0.0;
        }
        let mut budget = d_target * life;

        // Long outage(s) for badly-run instances: spend up to 80% of a large
        // budget in one continuous interval (Fig. 10's ≥1-day tail). The
        // 0.8 gate plus the budget threshold keeps the ≥1-day share near the
        // paper's 25%.
        if d_target >= 0.15 && rng.gen_bool(0.8) {
            let mut dur = self.long_dur.sample(&mut rng);
            // over-month outages only for the worst (d >= 0.3)
            if d_target >= 0.3 && rng.gen_bool(0.6) {
                dur = dur.max(32.0 * EPOCHS_PER_DAY as f64 * rng.gen_range(1.0..2.5));
            }
            let dur = dur.min(budget * 0.8).max(EPOCHS_PER_DAY as f64);
            let start = birth as f64 + rng.gen::<f64>() * (life - dur).max(1.0);
            emit(start, start + dur, OutageCause::Organic, &mut out);
            budget -= dur;
        }

        // Short blips for the remainder of the budget, placed on a jittered
        // regular grid (one blip per slot). Grid placement keeps blips from
        // coalescing into accidental multi-day runs, which would inflate the
        // Fig. 10 ≥1-day tail beyond its long-outage calibration.
        if budget > 2.0 {
            let mean_blip = 130.0; // ≈ E[clamped blip duration]
            let n_blips = ((budget / mean_blip).ceil() as u32).clamp(1, 2_000);
            let slot = life / n_blips as f64;
            for k in 0..n_blips {
                let dur = self
                    .blip_dur
                    .sample(&mut rng)
                    .clamp(2.0, (0.75 * EPOCHS_PER_DAY as f64).min(0.9 * slot));
                if dur < 1.0 {
                    continue;
                }
                let slot_start = birth as f64 + k as f64 * slot;
                let start = slot_start + rng.gen::<f64>() * (slot - dur).max(0.0);
                emit(start, start + dur, OutageCause::Organic, &mut out);
            }
        }
        // ensure "98% of instances go down at least once" even with a zero
        // budget draw
        if out.is_empty() && d_target > 0.0 {
            let start = birth + (life * rng.gen::<f64>() * 0.9) as u32;
            emit(start as f64, (start + 2) as f64, OutageCause::Organic, &mut out);
        }

        // Certificate lapses.
        if !inst.certificate.auto_renew {
            for lapse in inst.certificate.lapse_days(3, WINDOW_DAYS) {
                let start = lapse.start_epoch();
                // fixed after a few hours to a few days
                let fix_epochs = rng.gen_range(6 * 12..4 * EPOCHS_PER_DAY);
                emit(
                    start.0 as f64,
                    (start.0 + fix_epochs) as f64,
                    OutageCause::CertExpiry,
                    &mut out,
                );
            }
        }

        // AS-wide failures: splice in the precomputed plan for this
        // instance's AS (no RNG — the plan is frozen).
        for (asn, events) in &self.as_plan {
            if inst.asn == *asn {
                for &(start, dur) in events {
                    emit(
                        start.0 as f64,
                        (start.0 + dur) as f64,
                        OutageCause::AsFailure,
                        &mut out,
                    );
                }
            }
        }
        (created, retired, out)
    }
}

/// Rewrite the Let's Encrypt cohort's certificates so they all lapse on
/// the same day (auto-renew off). Membership is a per-instance keyed
/// Bernoulli draw with probability `cohort_size / n_lets_encrypt`, so it
/// never depends on iteration order.
fn apply_cert_cohort(cfg: &WorldConfig, instances: &mut [Instance]) {
    let n = instances.len();
    let cohort_size = ((n as f64) * cfg.cert_cohort_frac).round();
    let n_le = instances
        .iter()
        .filter(|i| i.certificate.ca == fediscope_model::certs::CertificateAuthority::LetsEncrypt)
        .count();
    if n_le == 0 || cohort_size <= 0.0 {
        return;
    }
    let p = (cohort_size / n_le as f64).min(1.0);
    let cohort_day = cohort_expiry_day();
    let seed = sub_seed(cfg.seed, 4) ^ COHORT_TAG;
    for (i, inst) in instances.iter_mut().enumerate() {
        if inst.certificate.ca == fediscope_model::certs::CertificateAuthority::LetsEncrypt
            && unit_rng(seed, i as u64).gen_bool(p)
        {
            inst.certificate.issued = Day(cohort_day.0 - 90);
            inst.certificate.auto_renew = false;
        }
    }
}

/// Generate schedules for all instances. `instances` is mutated only in that
/// the Let's Encrypt cohort members get their certificate rewritten to the
/// synchronized issue date (auto-renew off).
pub fn generate(cfg: &WorldConfig, instances: &mut [Instance]) -> Vec<AvailabilitySchedule> {
    generate_with_block(cfg, instances, INSTANCE_BLOCK)
}

/// [`generate`] with an explicit block size — bit-identical output at
/// any block size (the sharding proptests pin this).
pub fn generate_with_block(
    cfg: &WorldConfig,
    instances: &mut [Instance],
    block: usize,
) -> Vec<AvailabilitySchedule> {
    apply_cert_cohort(cfg, instances);
    let planner = OutagePlanner::new(cfg);
    let segments = par::parallel_map(&blocks(instances.len(), block), |&(lo, hi)| {
        instances[lo..hi]
            .iter()
            .enumerate()
            .map(|(k, inst)| {
                let (created, retired, intervals) = planner.draw_instance(inst, lo + k);
                let mut sched = AvailabilitySchedule::new(created, retired);
                for (s, e, c) in intervals {
                    sched.add_outage(s, e, c);
                }
                sched
            })
            .collect::<Vec<_>>()
    });
    let mut schedules = Vec::with_capacity(instances.len());
    for seg in segments {
        schedules.extend(seg);
    }
    schedules
}

/// Generate straight into a columnar [`OutageArena`]: every shard emits
/// its instances' raw clipped intervals in generation order, the
/// concatenated unsorted stream goes through the counting-sort
/// [`OutageArena::from_unsorted`] ingest — no per-instance sorted
/// builder anywhere on the path, and bit-identical to
/// `OutageArena::from_schedules(generate(..))` (pinned by tests here and
/// by the `from_unsorted` proptest in `fediscope_model`).
pub fn generate_arena(cfg: &WorldConfig, instances: &mut [Instance]) -> OutageArena {
    generate_arena_with_block(cfg, instances, INSTANCE_BLOCK)
}

/// [`generate_arena`] with an explicit block size.
pub fn generate_arena_with_block(
    cfg: &WorldConfig,
    instances: &mut [Instance],
    block: usize,
) -> OutageArena {
    apply_cert_cohort(cfg, instances);
    let planner = OutagePlanner::new(cfg);
    let segments = par::parallel_map(&blocks(instances.len(), block), |&(lo, hi)| {
        let mut lifetimes: Vec<(Epoch, Epoch)> = Vec::with_capacity(hi - lo);
        let mut intervals: Vec<(u32, Epoch, Epoch, OutageCause)> = Vec::new();
        for (k, inst) in instances[lo..hi].iter().enumerate() {
            let i = lo + k;
            let (created, retired, outs) = planner.draw_instance(inst, i);
            let birth = created.start_epoch();
            let death = retired
                .map(|d| d.start_epoch())
                .unwrap_or(Epoch(WINDOW_EPOCHS));
            lifetimes.push((birth, death));
            intervals.extend(outs.into_iter().map(|(s, e, c)| (i as u32, s, e, c)));
        }
        (lifetimes, intervals)
    });
    let mut lifetimes = Vec::with_capacity(instances.len());
    let mut intervals = Vec::new();
    for (l, iv) in segments {
        lifetimes.extend(l);
        intervals.extend(iv);
    }
    OutageArena::from_unsorted(&lifetimes, intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sub_seed;
    use fediscope_model::geo::ProviderCatalog;
    use rand::rngs::StdRng;

    fn build(seed: u64, n_inst: usize) -> (Vec<Instance>, Vec<AvailabilitySchedule>) {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = n_inst;
        cfg.n_users = n_inst * 20;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut r1);
        let mut instances = stage.instances;
        let _users = crate::users::generate(&cfg, &mut instances, &stage.popularity);
        let schedules = generate(&cfg, &mut instances);
        (instances, schedules)
    }

    #[test]
    fn schedules_align_with_instances() {
        let (instances, schedules) = build(3, 200);
        assert_eq!(instances.len(), schedules.len());
        for (inst, s) in instances.iter().zip(&schedules) {
            assert_eq!(s.created, inst.created);
        }
    }

    #[test]
    fn churn_fraction_applied() {
        let (_, schedules) = build(5, 1000);
        let churned = schedules.iter().filter(|s| s.retired.is_some()).count() as f64 / 1000.0;
        assert!((churned - 0.213).abs() < 0.04, "churn {churned}");
    }

    #[test]
    fn block_size_is_unobservable() {
        let seed = 31;
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 500;
        cfg.n_users = 2_000;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut r1);
        let mut base = stage.instances;
        let _users = crate::users::generate(&cfg, &mut base, &stage.popularity);
        let mut inst_a = base.clone();
        let mut inst_b = base.clone();
        let a = generate_with_block(&cfg, &mut inst_a, 1);
        let b = generate_with_block(&cfg, &mut inst_b, 137);
        assert_eq!(a, b);
        assert_eq!(inst_a, inst_b);
    }

    #[test]
    fn downtime_distribution_shape() {
        let (_, schedules) = build(7, 1500);
        let downs: Vec<f64> = schedules
            .iter()
            .filter(|s| s.lifetime_epochs() > EPOCHS_PER_DAY)
            .map(|s| s.downtime_fraction())
            .collect();
        let n = downs.len() as f64;
        let below_5pct = downs.iter().filter(|&&d| d < 0.05).count() as f64 / n;
        let above_50pct = downs.iter().filter(|&&d| d > 0.5).count() as f64 / n;
        // Paper: ~50% below 5% downtime, ~11% above 50%.
        assert!(
            (0.30..=0.70).contains(&below_5pct),
            "below-5% share {below_5pct}"
        );
        assert!(
            (0.03..=0.25).contains(&above_50pct),
            "above-50% share {above_50pct}"
        );
    }

    #[test]
    fn most_instances_fail_at_least_once() {
        let (_, schedules) = build(11, 800);
        let failed = schedules
            .iter()
            .filter(|s| s.lifetime_epochs() > EPOCHS_PER_DAY)
            .filter(|s| s.outage_count() > 0)
            .count() as f64;
        let total = schedules
            .iter()
            .filter(|s| s.lifetime_epochs() > EPOCHS_PER_DAY)
            .count() as f64;
        assert!(failed / total > 0.9, "failure rate {}", failed / total);
    }

    #[test]
    fn day_long_outages_are_a_minority_but_exist() {
        let (_, schedules) = build(13, 1500);
        let with_day_outage = schedules
            .iter()
            .filter(|s| s.outages().iter().any(|o| o.len_days() >= 1.0))
            .count() as f64
            / 1500.0;
        assert!(
            (0.08..=0.45).contains(&with_day_outage),
            "≥1-day outage share {with_day_outage}"
        );
    }

    #[test]
    fn cohort_expires_together() {
        let (instances, schedules) = build(17, 2000);
        let day = cohort_expiry_day();
        let mut down_on_day = 0;
        for (inst, s) in instances.iter().zip(&schedules) {
            if !inst.certificate.auto_renew
                && inst.certificate.expires() == day
                && s.outages()
                    .iter()
                    .any(|o| o.cause == OutageCause::CertExpiry && o.start.day() == day)
            {
                down_on_day += 1;
            }
        }
        // cohort is cert_cohort_frac of instances
        let expected = (2000.0 * (105.0 / 4328.0)) as i64;
        assert!(
            (down_on_day as i64 - expected).abs() <= expected / 2 + 2,
            "cohort size {down_on_day}, expected ≈{expected}"
        );
    }

    #[test]
    fn as_failures_hit_all_members_simultaneously() {
        let (instances, schedules) = build(19, 2000);
        for &(asn, _) in &AS_FAILURE_PLAN {
            let members: Vec<usize> = instances
                .iter()
                .enumerate()
                .filter(|(_, inst)| inst.asn == AsId(asn))
                .map(|(i, _)| i)
                .collect();
            if members.len() < 2 {
                continue;
            }
            // find an AsFailure outage in the first member and check others
            // share an overlapping AsFailure outage.
            let Some(o) = schedules[members[0]]
                .outages()
                .iter()
                .find(|o| o.cause == OutageCause::AsFailure)
                .copied()
            else {
                continue;
            };
            for &m in &members[1..] {
                // Cause tags can be rewritten when an AS outage merges into
                // an overlapping organic outage, so assert on *downtime*
                // rather than on the tag.
                if schedules[m].exists_at(o.start) {
                    let down = schedules[m].down_epochs_in(o.start, o.end);
                    assert!(down > 0, "AS{asn} member {m} missed the co-failure");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let (_, a) = build(23, 300);
        let (_, b) = build(23, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn arena_generation_matches_schedule_generation() {
        let seed = 29;
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 400;
        cfg.n_users = 2_000;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut r1);
        let mut instances = stage.instances;
        let _users = crate::users::generate(&cfg, &mut instances, &stage.popularity);

        let mut instances_b = instances.clone();
        let schedules = generate(&cfg, &mut instances);
        // The unsorted-ingest path, at a block size that forces several
        // shards, must equal the sorted-builder route exactly.
        let arena = generate_arena_with_block(&cfg, &mut instances_b, 53);

        assert_eq!(instances, instances_b, "cert-cohort rewrites must match");
        assert_eq!(arena, OutageArena::from_schedules(&schedules));
        assert_eq!(arena.len(), schedules.len());
    }
}
