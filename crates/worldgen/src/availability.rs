//! Availability-schedule generation (§4.4 calibration).
//!
//! Three failure processes are superimposed per instance:
//!
//! 1. **Organic outages.** Each instance draws a lifetime downtime budget
//!    from a log-normal (median ≈5%, σ tuned so ≈11% of instances exceed 50%
//!    downtime). The budget is spent as many short blips plus — for unlucky
//!    instances — one long multi-day/мulti-week outage, reproducing Fig. 10's
//!    duration tail (25% of instances see a ≥1-day outage; 7% a >1-month one).
//! 2. **Certificate expiries** (Fig. 9b). Instances without automated renewal
//!    go down when their certificate lapses; a synchronized Let's Encrypt
//!    cohort expires together on 2018-07-23 (105 instances in the paper).
//! 3. **AS-wide failures** (Table 1). Six ASes suffer between 1 and 15
//!    simultaneous all-instance outages.
//!
//! Instance churn (21.3% permanent departures) is also applied here.

use crate::config::WorldConfig;
use fediscope_model::ids::AsId;
use fediscope_model::instance::Instance;
use fediscope_model::schedule::{AvailabilitySchedule, OutageArena, OutageCause};
use fediscope_model::time::{Day, Epoch, EPOCHS_PER_DAY, WINDOW_DAYS, WINDOW_EPOCHS};
use rand::prelude::*;
use rand_distr::{Distribution, LogNormal};

/// Table 1 of the paper: `(ASN, number of distinct AS-wide failures)`.
pub const AS_FAILURE_PLAN: [(u32, u32); 6] = [
    (9370, 1),   // Sakura: the 97-instance event
    (20473, 4),  // Choopa
    (8075, 7),   // Microsoft
    (12322, 15), // Free SAS
    (2516, 4),   // KDDI
    (9371, 14),  // Sakura (2)
];

/// The bulk Let's Encrypt expiry day: 2018-07-23 (window day 468).
pub fn cohort_expiry_day() -> Day {
    Day::from_civil(2018, 7, 23).expect("2018-07-23 inside window")
}

/// Per-instance size-bin downtime multiplier (Fig. 8's non-monotonic
/// pattern: `<10K`-toot instances are the flakiest, 100K–1M the most solid,
/// `>1M` slightly worse again — "instance popularity is not a good
/// predictor of availability").
fn size_multiplier(toots: u64) -> f64 {
    match toots {
        0..=9_999 => 1.2,
        10_000..=99_999 => 0.55,
        100_000..=999_999 => 0.20,
        _ => 0.5,
    }
}

/// Generate schedules for all instances. `instances` is mutated only in that
/// the Let's Encrypt cohort members get their certificate rewritten to the
/// synchronized issue date (auto-renew off).
pub fn generate<R: Rng>(
    cfg: &WorldConfig,
    instances: &mut [Instance],
    rng: &mut R,
) -> Vec<AvailabilitySchedule> {
    let n = instances.len();

    // --- churn: pick the permanent leavers --------------------------------
    let mut churners: Vec<usize> = (0..n).collect();
    churners.shuffle(rng);
    let n_churn = ((n as f64) * cfg.churn_frac).round() as usize;
    let churn_set: std::collections::HashSet<usize> =
        churners.into_iter().take(n_churn).collect();

    // --- cert cohort -------------------------------------------------------
    // Rewrite certificates of the cohort so they all lapse on the same day.
    let cohort_size = ((n as f64) * cfg.cert_cohort_frac).round() as usize;
    let cohort_day = cohort_expiry_day();
    let mut cohort_members: Vec<usize> = (0..n)
        .filter(|&i| {
            instances[i].certificate.ca
                == fediscope_model::certs::CertificateAuthority::LetsEncrypt
        })
        .collect();
    cohort_members.shuffle(rng);
    cohort_members.truncate(cohort_size);
    for &i in &cohort_members {
        instances[i].certificate.issued = Day(cohort_day.0 - 90);
        instances[i].certificate.auto_renew = false;
    }

    // --- organic + cert outages per instance ------------------------------
    // Blip durations: median ≈8 hours, capped below one day (day-plus
    // outages come exclusively from the long-outage path so Fig. 10's
    // 25%-with-a-day-outage calibration holds). The scale keeps outage
    // *counts* in the tens per instance — mnm.social's resolution would
    // see a similar magnitude — so per-day cause attribution (Fig. 9b)
    // stays meaningful.
    let blip_dur = LogNormal::new((96.0f64).ln(), 1.3).unwrap();
    // long outages: median ~3 days, heavy upper tail (weeks+).
    let long_dur = LogNormal::new((3.0 * EPOCHS_PER_DAY as f64).ln(), 1.0).unwrap();

    let mut schedules = Vec::with_capacity(n);
    for (i, inst) in instances.iter().enumerate() {
        let created = inst.created;
        let retired = if churn_set.contains(&i) {
            let earliest = created.0 + 14;
            if earliest >= WINDOW_DAYS - 1 {
                Some(Day(WINDOW_DAYS - 1))
            } else {
                Some(Day(rng.gen_range(earliest..WINDOW_DAYS)))
            }
        } else {
            None
        };
        let mut sched = AvailabilitySchedule::new(created, retired);
        let life = sched.lifetime_epochs() as f64;
        if life < EPOCHS_PER_DAY as f64 {
            schedules.push(sched);
            continue;
        }

        // lifetime downtime target
        let ln = LogNormal::new(cfg.downtime_median.ln(), cfg.downtime_sigma).unwrap();
        let mut d_target: f64 = ln.sample(rng) * size_multiplier(inst.toot_count);
        d_target = d_target.clamp(0.0, 0.95);
        // 2% of instances are genuinely never down (paper: 98% fail at least
        // once).
        if rng.gen_bool(0.02) {
            d_target = 0.0;
        }
        let mut budget = d_target * life;

        // Long outage(s) for badly-run instances: spend up to 80% of a large
        // budget in one continuous interval (Fig. 10's ≥1-day tail). The
        // 0.8 gate plus the budget threshold keeps the ≥1-day share near the
        // paper's 25%.
        if d_target >= 0.15 && rng.gen_bool(0.8) {
            let mut dur = long_dur.sample(rng);
            // over-month outages only for the worst (d >= 0.3)
            if d_target >= 0.3 && rng.gen_bool(0.6) {
                dur = dur.max(32.0 * EPOCHS_PER_DAY as f64 * rng.gen_range(1.0..2.5));
            }
            let dur = dur.min(budget * 0.8).max(EPOCHS_PER_DAY as f64);
            let start = sched.birth_epoch().0 as f64
                + rng.gen::<f64>() * (life - dur).max(1.0);
            sched.add_outage(
                Epoch(start as u32),
                Epoch((start + dur) as u32),
                OutageCause::Organic,
            );
            budget -= dur;
        }

        // Short blips for the remainder of the budget, placed on a jittered
        // regular grid (one blip per slot). Grid placement keeps blips from
        // coalescing into accidental multi-day runs, which would inflate the
        // Fig. 10 ≥1-day tail beyond its long-outage calibration.
        if budget > 2.0 {
            let mean_blip = 130.0; // ≈ E[clamped blip duration]
            let n_blips = ((budget / mean_blip).ceil() as u32).clamp(1, 2_000);
            let slot = life / n_blips as f64;
            for k in 0..n_blips {
                let dur = blip_dur
                    .sample(rng)
                    .clamp(2.0, (0.75 * EPOCHS_PER_DAY as f64).min(0.9 * slot));
                if dur < 1.0 {
                    continue;
                }
                let slot_start = sched.birth_epoch().0 as f64 + k as f64 * slot;
                let start = slot_start + rng.gen::<f64>() * (slot - dur).max(0.0);
                sched.add_outage(
                    Epoch(start as u32),
                    Epoch((start + dur) as u32),
                    OutageCause::Organic,
                );
            }
        }
        // ensure "98% of instances go down at least once" even with a zero
        // budget draw
        if sched.outage_count() == 0 && d_target > 0.0 {
            let start = sched.birth_epoch().0 + (life * rng.gen::<f64>() * 0.9) as u32;
            sched.add_outage(Epoch(start), Epoch(start + 2), OutageCause::Organic);
        }

        // Certificate lapses.
        if !inst.certificate.auto_renew {
            for lapse in inst.certificate.lapse_days(3, WINDOW_DAYS) {
                let start = lapse.start_epoch();
                // fixed after a few hours to a few days
                let fix_epochs = rng.gen_range(6 * 12..4 * EPOCHS_PER_DAY);
                sched.add_outage(
                    start,
                    Epoch(start.0 + fix_epochs),
                    OutageCause::CertExpiry,
                );
            }
        }
        schedules.push(sched);
    }

    // --- AS-wide failures ---------------------------------------------------
    for &(asn, failures) in &AS_FAILURE_PLAN {
        let members: Vec<usize> = instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.asn == AsId(asn))
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        for _ in 0..failures {
            let start = Epoch(rng.gen_range(0..WINDOW_EPOCHS - 1));
            // a couple of hours median, up to a day
            let dur = (LogNormal::new((24.0f64).ln(), 0.8).unwrap().sample(rng) as u32)
                .clamp(6, EPOCHS_PER_DAY);
            for &i in &members {
                schedules[i].add_outage(
                    start,
                    Epoch(start.0 + dur),
                    OutageCause::AsFailure,
                );
            }
        }
    }

    schedules
}

/// Generate straight into a columnar [`OutageArena`]: the same RNG streams
/// and therefore bit-identical intervals as [`generate`], drained through
/// the arena builder.
///
/// The intermediate per-instance schedules cannot be skipped entirely: the
/// AS-wide failure plan splices co-failure intervals into *arbitrary*
/// already-generated instances, which needs the mergeable
/// [`AvailabilitySchedule`] representation before the columns are frozen.
/// So the full schedule list is materialised once, then drained — each
/// schedule's interval buffer is freed as its columns are appended, so the
/// transient double-storage decays over the drain rather than persisting
/// as a second full copy. (For a genuinely lazy source — e.g. per-instance
/// poll reconstruction — `observe::arena_from_polls` holds only the arena
/// plus one scratch schedule.)
pub fn generate_arena<R: Rng>(
    cfg: &WorldConfig,
    instances: &mut [Instance],
    rng: &mut R,
) -> OutageArena {
    OutageArena::from_schedule_iter(generate(cfg, instances, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sub_seed;
    use fediscope_model::geo::ProviderCatalog;
    use rand::rngs::StdRng;

    fn build(seed: u64, n_inst: usize) -> (Vec<Instance>, Vec<AvailabilitySchedule>) {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = n_inst;
        cfg.n_users = n_inst * 20;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut r1);
        let mut instances = stage.instances;
        let mut r2 = StdRng::seed_from_u64(sub_seed(seed, 2));
        let _users = crate::users::generate(&cfg, &mut instances, &stage.popularity, &mut r2);
        let mut r4 = StdRng::seed_from_u64(sub_seed(seed, 4));
        let schedules = generate(&cfg, &mut instances, &mut r4);
        (instances, schedules)
    }

    #[test]
    fn schedules_align_with_instances() {
        let (instances, schedules) = build(3, 200);
        assert_eq!(instances.len(), schedules.len());
        for (inst, s) in instances.iter().zip(&schedules) {
            assert_eq!(s.created, inst.created);
        }
    }

    #[test]
    fn churn_fraction_applied() {
        let (_, schedules) = build(5, 1000);
        let churned = schedules.iter().filter(|s| s.retired.is_some()).count() as f64 / 1000.0;
        assert!((churned - 0.213).abs() < 0.04, "churn {churned}");
    }

    #[test]
    fn downtime_distribution_shape() {
        let (_, schedules) = build(7, 1500);
        let downs: Vec<f64> = schedules
            .iter()
            .filter(|s| s.lifetime_epochs() > EPOCHS_PER_DAY)
            .map(|s| s.downtime_fraction())
            .collect();
        let n = downs.len() as f64;
        let below_5pct = downs.iter().filter(|&&d| d < 0.05).count() as f64 / n;
        let above_50pct = downs.iter().filter(|&&d| d > 0.5).count() as f64 / n;
        // Paper: ~50% below 5% downtime, ~11% above 50%.
        assert!(
            (0.30..=0.70).contains(&below_5pct),
            "below-5% share {below_5pct}"
        );
        assert!(
            (0.03..=0.25).contains(&above_50pct),
            "above-50% share {above_50pct}"
        );
    }

    #[test]
    fn most_instances_fail_at_least_once() {
        let (_, schedules) = build(11, 800);
        let failed = schedules
            .iter()
            .filter(|s| s.lifetime_epochs() > EPOCHS_PER_DAY)
            .filter(|s| s.outage_count() > 0)
            .count() as f64;
        let total = schedules
            .iter()
            .filter(|s| s.lifetime_epochs() > EPOCHS_PER_DAY)
            .count() as f64;
        assert!(failed / total > 0.9, "failure rate {}", failed / total);
    }

    #[test]
    fn day_long_outages_are_a_minority_but_exist() {
        let (_, schedules) = build(13, 1500);
        let with_day_outage = schedules
            .iter()
            .filter(|s| s.outages().iter().any(|o| o.len_days() >= 1.0))
            .count() as f64
            / 1500.0;
        assert!(
            (0.08..=0.45).contains(&with_day_outage),
            "≥1-day outage share {with_day_outage}"
        );
    }

    #[test]
    fn cohort_expires_together() {
        let (instances, schedules) = build(17, 2000);
        let day = cohort_expiry_day();
        let mut down_on_day = 0;
        for (inst, s) in instances.iter().zip(&schedules) {
            if !inst.certificate.auto_renew
                && inst.certificate.expires() == day
                && s.outages()
                    .iter()
                    .any(|o| o.cause == OutageCause::CertExpiry && o.start.day() == day)
            {
                down_on_day += 1;
            }
        }
        // cohort is cert_cohort_frac of instances
        let expected = (2000.0 * (105.0 / 4328.0)) as i64;
        assert!(
            (down_on_day as i64 - expected).abs() <= expected / 2 + 2,
            "cohort size {down_on_day}, expected ≈{expected}"
        );
    }

    #[test]
    fn as_failures_hit_all_members_simultaneously() {
        let (instances, schedules) = build(19, 2000);
        for &(asn, _) in &AS_FAILURE_PLAN {
            let members: Vec<usize> = instances
                .iter()
                .enumerate()
                .filter(|(_, inst)| inst.asn == AsId(asn))
                .map(|(i, _)| i)
                .collect();
            if members.len() < 2 {
                continue;
            }
            // find an AsFailure outage in the first member and check others
            // share an overlapping AsFailure outage.
            let Some(o) = schedules[members[0]]
                .outages()
                .iter()
                .find(|o| o.cause == OutageCause::AsFailure)
                .copied()
            else {
                continue;
            };
            for &m in &members[1..] {
                // Cause tags can be rewritten when an AS outage merges into
                // an overlapping organic outage, so assert on *downtime*
                // rather than on the tag.
                if schedules[m].exists_at(o.start) {
                    let down = schedules[m].down_epochs_in(o.start, o.end);
                    assert!(down > 0, "AS{asn} member {m} missed the co-failure");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let (_, a) = build(23, 300);
        let (_, b) = build(23, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn arena_generation_matches_schedule_generation() {
        let seed = 29;
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 400;
        cfg.n_users = 2_000;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut r1);
        let mut instances = stage.instances;
        let mut r2 = StdRng::seed_from_u64(sub_seed(seed, 2));
        let _users = crate::users::generate(&cfg, &mut instances, &stage.popularity, &mut r2);

        let mut instances_b = instances.clone();
        let mut r4a = StdRng::seed_from_u64(sub_seed(seed, 4));
        let schedules = generate(&cfg, &mut instances, &mut r4a);
        let mut r4b = StdRng::seed_from_u64(sub_seed(seed, 4));
        let arena = generate_arena(&cfg, &mut instances_b, &mut r4b);

        assert_eq!(instances, instances_b, "cert-cohort rewrites must match");
        assert_eq!(arena, OutageArena::from_schedules(&schedules));
        assert_eq!(arena.len(), schedules.len());
    }
}
