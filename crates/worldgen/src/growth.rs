//! Daily growth series (Fig. 1): instances / users / toots per day.

use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_model::time::{Day, EPOCHS_PER_DAY, WINDOW_DAYS};
use fediscope_model::world::GrowthPoint;

/// Piecewise-linear CDF of cumulative *user registrations* over the window:
/// users keep growing through the Jul–Dec 2017 instance plateau ("the user
/// population continues to grow during this period (by 22%)") and through
/// the 2018 burst.
const USER_CDF: [(u32, f64); 5] = [
    (0, 0.25),
    (50, 0.45),
    (81, 0.52),
    (264, 0.635),
    (471, 1.00),
];

fn interp_cdf(cdf: &[(u32, f64)], day: u32) -> f64 {
    if day <= cdf[0].0 {
        return cdf[0].1;
    }
    for w in cdf.windows(2) {
        let (d0, c0) = w[0];
        let (d1, c1) = w[1];
        if day <= d1 {
            let frac = (day - d0) as f64 / (d1 - d0) as f64;
            return c0 + frac * (c1 - c0);
        }
    }
    cdf.last().unwrap().1
}

/// Cumulative toot fraction by day: starts at 8% (pre-window history) and
/// accelerates super-linearly as the user base grows.
fn toot_fraction(day: u32) -> f64 {
    0.08 + 0.92 * (day as f64 / (WINDOW_DAYS - 1) as f64).powf(1.7)
}

/// Build the daily series. "Available instances" samples each instance's
/// schedule at noon, so instance-level churn and outages show up as the
/// fluctuations the paper describes.
pub fn series(
    schedules: &[AvailabilitySchedule],
    total_users: u64,
    total_toots: u64,
) -> Vec<GrowthPoint> {
    (0..WINDOW_DAYS)
        .map(|d| {
            let noon = Day(d).start_epoch().saturating_add(EPOCHS_PER_DAY / 2);
            let up = schedules.iter().filter(|s| s.is_up(noon)).count() as u32;
            GrowthPoint {
                instances: up,
                users: (total_users as f64 * interp_cdf(&USER_CDF, d)).round() as u32,
                toots: (total_toots as f64 * toot_fraction(d)).round() as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::schedule::OutageCause;

    #[test]
    fn series_has_one_point_per_day() {
        let schedules = vec![AvailabilitySchedule::always_up(); 10];
        let s = series(&schedules, 1000, 100_000);
        assert_eq!(s.len(), WINDOW_DAYS as usize);
        assert!(s.iter().all(|p| p.instances == 10));
    }

    #[test]
    fn users_and_toots_monotone() {
        let schedules = vec![AvailabilitySchedule::always_up(); 3];
        let s = series(&schedules, 5000, 1_000_000);
        for w in s.windows(2) {
            assert!(w[1].users >= w[0].users);
            assert!(w[1].toots >= w[0].toots);
        }
        assert_eq!(s.last().unwrap().users, 5000);
        assert_eq!(s.last().unwrap().toots, 1_000_000);
    }

    #[test]
    fn outage_shows_as_dip() {
        let mut bad = AvailabilitySchedule::always_up();
        bad.add_outage(
            Day(100).start_epoch(),
            Day(101).end_epoch(),
            OutageCause::Organic,
        );
        let schedules = vec![AvailabilitySchedule::always_up(), bad];
        let s = series(&schedules, 10, 10);
        assert_eq!(s[99].instances, 2);
        assert_eq!(s[100].instances, 1);
        assert_eq!(s[101].instances, 1);
        assert_eq!(s[102].instances, 2);
    }

    #[test]
    fn late_created_instance_missing_early() {
        let late = AvailabilitySchedule::new(Day(300), None);
        let s = series(&[late], 1, 1);
        assert_eq!(s[299].instances, 0);
        assert_eq!(s[300].instances, 1);
    }

    #[test]
    fn retired_instance_leaves_series() {
        let gone = AvailabilitySchedule::new(Day(0), Some(Day(50)));
        let s = series(&[gone], 1, 1);
        assert_eq!(s[49].instances, 1);
        assert_eq!(s[50].instances, 0);
    }

    #[test]
    fn user_growth_through_plateau() {
        // the paper: users grow 22% while instances plateau (days 81..264)
        let schedules = vec![AvailabilitySchedule::always_up(); 1];
        let s = series(&schedules, 100_000, 1);
        let growth = s[264].users as f64 / s[81].users as f64;
        assert!(
            (1.1..1.4).contains(&growth),
            "plateau user growth {growth}"
        );
    }

    #[test]
    fn cdf_interpolation_endpoints() {
        assert!((interp_cdf(&USER_CDF, 0) - 0.25).abs() < 1e-12);
        assert!((interp_cdf(&USER_CDF, 471) - 1.0).abs() < 1e-12);
        assert!((interp_cdf(&USER_CDF, 600) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toot_fraction_bounds() {
        assert!(toot_fraction(0) >= 0.05);
        assert!((toot_fraction(WINDOW_DAYS - 1) - 1.0).abs() < 1e-12);
    }
}
