//! Sharding protocol for deterministic parallel worldgen.
//!
//! Every generator stage draws from **counter-derived per-unit RNG
//! streams** (the idiom established by [`crate::toots`] and
//! `replication::weighted`): a unit — one user, one instance — gets
//! `unit_rng(stage_seed, unit)`, so its draws do not depend on how the
//! population is partitioned into work blocks. A stage then shards as
//!
//! ```text
//!   blocks(n, block)  ──►  parallel_map  ──►  concat segments
//! ```
//!
//! and the concatenation is bit-identical to the serial left-to-right
//! walk at **any** block size and thread count. The differential
//! proptests in `tests/sharded.rs` enforce this with the FNV-1a world
//! digests defined here.
//!
//! Serial passes are still allowed where an aggregate is genuinely
//! global (e.g. per-instance activity sums, which are f64 and therefore
//! order-sensitive); the rule is that such passes run over the already
//! concatenated output, never inside a shard.

use fediscope_model::schedule::OutageArena;
use fediscope_model::{OutageCause, TootArena, UserProfile};

/// Default number of users (or instances) per work block. Small enough
/// that a modern-tier stage yields ~16 blocks per core, large enough
/// that per-block RNG setup is noise.
pub const DEFAULT_BLOCK: usize = 65_536;

/// Default number of instances per work block for the per-instance
/// stages (availability, rebirth): instance populations are ~30x smaller
/// than user populations, so the blocks shrink accordingly.
pub const INSTANCE_BLOCK: usize = 4_096;

/// Split `0..n` into half-open `[lo, hi)` blocks of at most `block`
/// units. `block == 0` is treated as one block spanning everything.
pub fn blocks(n: usize, block: usize) -> Vec<(usize, usize)> {
    let block = if block == 0 { n.max(1) } else { block };
    let mut out = Vec::with_capacity(n / block + 1);
    let mut lo = 0;
    while lo < n {
        let hi = (lo + block).min(n);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// The counter-derived per-unit RNG stream: unit `u` of a stage always
/// sees the same draws, regardless of which shard visits it.
pub fn unit_rng(stage_seed: u64, unit: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(
        stage_seed ^ (unit + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// 64-bit FNV-1a over a word stream (each word hashed little-endian).
pub fn fnv1a64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Digest of the user table: identity, placement, activity, and the
/// exact login-probability bits.
pub fn digest_users(users: &[UserProfile]) -> u64 {
    fnv1a64(users.iter().flat_map(|u| {
        [
            u.id.0 as u64,
            u.instance.0 as u64,
            u.toot_count as u64,
            u.weekly_login_prob.to_bits() as u64,
        ]
    }))
}

/// Digest of an edge stream in arrival order.
pub fn digest_edges(edges: impl IntoIterator<Item = (u32, u32)>) -> u64 {
    fnv1a64(
        edges
            .into_iter()
            .map(|(a, b)| ((a as u64) << 32) | b as u64),
    )
}

fn cause_code(c: OutageCause) -> u64 {
    match c {
        OutageCause::Organic => 0,
        OutageCause::CertExpiry => 1,
        OutageCause::AsFailure => 2,
        OutageCause::CertLapseCascade => 3,
        OutageCause::SharedFate => 4,
        OutageCause::Churn => 5,
    }
}

/// Digest of a built [`OutageArena`]: per instance, lifetime plus every
/// merged `(start, end, cause)` interval.
pub fn digest_arena(arena: &OutageArena) -> u64 {
    fnv1a64(arena.views().flat_map(|v| {
        let mut words = vec![v.birth.0 as u64, v.death.0 as u64];
        for k in 0..v.starts.len() {
            words.push(v.starts[k].0 as u64);
            words.push(v.ends[k].0 as u64);
            words.push(cause_code(v.causes[k]));
        }
        words
    }))
}

/// Digest of a [`TootArena`]: horizon plus the author list at every
/// tick, in stored order.
pub fn digest_toots(arena: &TootArena) -> u64 {
    let per_tick = (0..arena.horizon()).flat_map(|t| {
        std::iter::once(u64::MAX).chain(arena.authors_at(t).iter().map(|&a| a as u64))
    });
    fnv1a64(std::iter::once(arena.horizon() as u64).chain(per_tick))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_exactly() {
        for n in [0usize, 1, 7, 64, 65, 1000] {
            for b in [1usize, 3, 64, 0] {
                let bs = blocks(n, b);
                let mut expect = 0;
                for &(lo, hi) in &bs {
                    assert_eq!(lo, expect);
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn unit_rng_is_keyed_not_sequential() {
        use rand::Rng;
        let a: u64 = unit_rng(9, 4).r#gen();
        let b: u64 = unit_rng(9, 5).r#gen();
        assert_ne!(a, b);
        let a2: u64 = unit_rng(9, 4).r#gen();
        assert_eq!(a, a2);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a of the byte string "a" is a published vector; one u64
        // word 0x61 hashes its 8 LE bytes (a + seven NULs).
        assert_ne!(fnv1a64([0x61u64]), fnv1a64([0x62u64]));
        assert_eq!(fnv1a64([]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn edge_digest_is_order_sensitive() {
        let a = digest_edges([(1, 2), (3, 4)]);
        let b = digest_edges([(3, 4), (1, 2)]);
        assert_ne!(a, b);
    }
}
