//! Follower-graph generation: static fitness attachment with instance and
//! country homophily, sharded bit-identically.
//!
//! Calibration targets (§3, §5.1):
//! - ≈10.8 follower edges per account (9.25M edges / 853K accounts),
//! - power-law out-degree (Fig. 11),
//! - LCC containing ≈99.95% of accounts,
//! - catastrophic sensitivity to top-degree removal (top 1% → LCC ≈26%,
//!   Fig. 12), which emerges from hub-mediated connectivity,
//! - instance homophily so the induced federation graph has ≈92% of
//!   instances in its LCC and 32% same-country subscription links (Fig. 6).
//!
//! ## The sharding model (PR 10)
//!
//! The previous generator was a sequential copy model (linear preferential
//! attachment): every accepted edge was pushed back into the attachment
//! pools, so edge `k` depended on edges `0..k` and the stream could not be
//! split. This version draws hubs from a **static fitness law** instead:
//! a keyed ~1% celebrity layer holds most of the attachment mass
//! (hub-dominated enough that removing the top 1% of accounts shatters
//! the LCC, Fig. 12, yet with hubs *not* the heaviest tooters, so the
//! federation traffic they induce stays within bounded-inbox capacity),
//! and everyone else's fitness grows with their own toot production,
//! keeping audience aligned with output so subscription replication
//! rescues the heavy tooters' content (Fig. 15). The law is frozen
//! into Walker alias tables ([`crate::pools::AliasFamily`]) per instance,
//! per country, and globally. Every user then samples its followees from
//! its own counter-derived RNG stream ([`crate::shard::unit_rng`]), which
//! makes [`SocialCursor`] *seekable*: any user's (or block's) edges can be
//! produced without replaying the stream before it — the property the
//! `recover` crate's resume-identity guarantee wants, and what lets
//! [`par::parallel_map`] build CSR segments that concatenate bit-identical
//! to the serial walk at any block size.

use crate::config::{sub_seed, WorldConfig};
use crate::pools::{sample_slice, touch_slice, AliasFamily, AliasSampler, AliasSlot, Membership};
use crate::shard::{blocks, unit_rng, DEFAULT_BLOCK};
use fediscope_graph::par;
use fediscope_model::geo::Country;
use fediscope_model::ids::UserId;
use fediscope_model::instance::Instance;
use fediscope_model::user::UserProfile;
use rand::prelude::*;

/// RNG stream tag for the per-user fitness draw (separate from the
/// per-user edge draws so adding a draw to one never shifts the other).
const FITNESS_TAG: u64 = 0x4649_544e_4553_5300; // "FITNESS"

/// Attachment fitness: a keyed ~[`CELEBRITY_FRAC`] of tooting accounts
/// form a celebrity layer whose fitness is [`CELEBRITY_BOOST`]× the base
/// law `w = toot_count^FITNESS_EXP × u^-FITNESS_JITTER_EXP`. Calibrated
/// jointly with [`UNIFORM_MIX`] against three pulls:
///
/// - **Fig. 12** needs removing the top 1% of accounts to collapse the
///   LCC below 65%: the celebrity layer holds ~90% of the attachment
///   mass, so the residual (non-hub) degree per user is ≲1 — below the
///   giant-component threshold. The layer must also be *flat* (a boost,
///   not a deep Pareto tail): with one mega-hub a user's draws collide
///   and dedup far below the configured 10.8 mean degree, while ~100
///   comparably-weighted hubs keep the draws distinct.
/// - **Fig. 15** needs follower counts correlated with production so
///   subscription replication rescues the heavy tooters' toots — the
///   `toot_count^0.5` base factor gives the authors who carry most of
///   the toot volume a handful of followers each.
/// - The fedsim delivery engine needs clean-run traffic within
///   bounded-inbox capacity, which rules out a super-linear toot factor:
///   that would make the heaviest tooters also the widest-audience
///   accounts and their combined fan-out would congest every inbox with
///   no outage at all. Celebrity status is keyed noise ⊥ toot volume, so
///   hubs have typical production and the volume-weighted fan-out span
///   stays small.
///
/// The cap keeps the single biggest hub from absorbing a macroscopic
/// share of *all* edges at full scale.
const FITNESS_EXP: f64 = 0.5;
const FITNESS_JITTER_EXP: f64 = 0.25;
const FITNESS_CAP: f64 = 1.0e12;

/// Fraction of *all* accounts in the celebrity layer (conditioned on
/// tooting inside [`SocialCursor::new`], ≈1% of accounts ≈ 3.6% of
/// tooting users at the configured [`WorldConfig::tooting_frac`]) — the
/// hub stratum Fig. 12's top-1% removal strips away.
const CELEBRITY_FRAC: f64 = 0.01;

/// Fitness multiplier for the celebrity layer; sets the layer's share of
/// total attachment mass (~90%) and therefore the residual degree that
/// survives hub removal.
const CELEBRITY_BOOST: f64 = 1_000.0;

/// Probability of a uniform (non-fitness) draw inside the chosen domain.
/// Kept small: a large uniform mix builds an Erdős–Rényi backbone that
/// survives hub removal, which would contradict the paper's Fig. 12.
const UNIFORM_MIX: f64 = 0.02;

/// Hard ceiling on a single user's emission attempts. The per-user budget
/// is `4 × target degree`; the out-degree cap grows with the population
/// (`n / 4`), so at mega-tiers a single dedup-starved mega-follower would
/// otherwise burn ~1M mostly-rejected draws (its draws concentrate on the
/// ~1% celebrity layer, so past ~10⁴ distinct followees almost every draw
/// is a duplicate). The ceiling only binds for target degrees above
/// 16 384 — far beyond the degree cap at every calibration scale (tiny
/// caps at 375, small at 3 000), so statistical fixtures are unaffected;
/// at the modern tier it trims only the last few percent of edge mass.
const MAX_EMIT_ATTEMPTS: u32 = 65_536;

/// Solve for the Pareto exponent α such that a power law truncated at `cap`
/// has (approximately) the requested mean:
/// `E[floor(X) | X ≤ cap] ≈ (cap^(2−α) − 1) / (2 − α) = mean`.
///
/// Without the truncation correction the realised mean falls far short of
/// the target (the untruncated tail above the cap carries a large share of
/// the mass at α ≈ 2).
fn solve_alpha(mean: f64, cap: u32) -> f64 {
    assert!(mean > 1.0, "mean out-degree must exceed 1");
    let cap = cap.max(2) as f64;
    let truncated_mean = |alpha: f64| -> f64 {
        let e = 2.0 - alpha;
        if e.abs() < 1e-9 {
            cap.ln()
        } else {
            (cap.powf(e) - 1.0) / e
        }
    };
    let (mut lo, mut hi) = (1.05f64, 3.5f64); // mean decreasing in alpha
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if truncated_mean(mid) > mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Sample an out-degree from a discrete power law with exponent `alpha`
/// (from [`solve_alpha`]), floored and clamped to `[1, cap]`.
fn sample_out_degree<R: Rng>(alpha: f64, cap: u32, rng: &mut R) -> u32 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let x = u.powf(-1.0 / (alpha - 1.0));
    (x.floor() as u32).clamp(1, cap)
}

/// Uniform index in `0..n` from one `u64` (Lemire reduction).
#[inline]
fn lemire(r: u64, n: usize) -> usize {
    ((r as u128 * n as u128) >> 64) as usize
}

/// One user's sorted-unique adjacency block inside a sharded segment.
/// Targets are canonical: ascending, deduplicated, self-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocialSegment {
    /// First user id covered by this segment.
    pub start: u32,
    /// Local CSR offsets: user `start + k`'s targets are
    /// `targets[offsets[k]..offsets[k+1]]`.
    pub offsets: Vec<u32>,
    /// Concatenated per-user target lists.
    pub targets: Vec<u32>,
}

/// A seekable, shareable edge cursor over the follower graph.
///
/// Construction freezes the fitness alias tables; after that,
/// [`emit_user`](Self::emit_user) produces any single user's edges from
/// that user's keyed RNG stream alone — no replay of earlier users, no
/// mutable attachment state. `&self` everywhere, so shards sample the
/// same frozen tables concurrently.
pub struct SocialCursor {
    stage_seed: u64,
    p_inst: f64,
    /// `p_inst + p_country`, frozen so the per-draw domain dispatch is a
    /// pair of compares instead of re-summing.
    p12: f64,
    /// Per-domain uniform-mix windows, indexed by domain (instance,
    /// country, global): a draw whose roll lands within `mix[dom]` of the
    /// domain's range start is a uniform pick instead of a weighted one.
    /// `base1`/`base2` reproduce the range starts with the exact
    /// subtraction order of the original branchy dispatch
    /// (`(roll - base1[dom]) - base2[dom]`), so the boundary rounding —
    /// and therefore the draw stream — is bit-identical.
    base1: [f64; 3],
    base2: [f64; 3],
    mix: [f64; 3],
    cap: u32,
    alpha_tooting: f64,
    /// Instance index per user.
    inst_of_user: Vec<u32>,
    /// Country index (into `Country::ALL`) per instance.
    country_of_instance: Vec<u32>,
    /// Degree-law selector per user.
    tooting: Vec<bool>,
    /// Candidate followees grouped by instance / country, with frozen
    /// fitness-weighted samplers per domain and a global one.
    by_instance: Membership,
    by_country: Membership,
    candidates: Vec<u32>,
    inst_alias: AliasFamily,
    country_alias: AliasFamily,
    global_alias: AliasSampler,
}

impl SocialCursor {
    /// Freeze the attachment tables for a generated population.
    pub fn new(cfg: &WorldConfig, instances: &[Instance], users: &[UserProfile]) -> Self {
        let stage_seed = sub_seed(cfg.seed, 3);
        let country_of_instance: Vec<u32> = instances
            .iter()
            .map(|i| Country::ALL.iter().position(|&c| c == i.country).unwrap() as u32)
            .collect();
        let inst_of_user: Vec<u32> = users.iter().map(|u| u.instance.0).collect();
        let tooting: Vec<bool> = users.iter().map(|u| u.has_tooted()).collect();

        // Every account is a valid followee. Tooting users carry the
        // fitness law below (you discover accounts through content), while
        // silent accounts sit at the floor fitness — they still absorb a
        // diffuse share of in-edges, which keeps the *mean* audience of a
        // tooting author near the configured mean degree instead of
        // concentrating the whole edge budget on the ~28% who toot (that
        // concentration is what overloads the federation delivery engine:
        // every author's toots would fan out to dozens of instances).
        let candidates: Vec<u32> = (0..users.len() as u32).collect();

        // Two-layer fitness (see the constant docs): a thin celebrity
        // layer (~1% of accounts) holds most of the attachment mass, flat
        // enough across the layer that a user's ~10.8 draws land on many
        // *distinct* hubs, while everyone else carries
        // (own toot production)^FITNESS_EXP × a mild keyed jitter — you
        // gain followers by posting (the production ↔ outward-replication
        // correlation Fig. 14 reports). Depends only on the candidate's
        // own row in the frozen user table plus its keyed stream —
        // independent of population order, so shardable.
        let fitness_seed = stage_seed ^ FITNESS_TAG;
        let p_celebrity = (CELEBRITY_FRAC / cfg.tooting_frac.max(1e-9)).min(1.0);
        // Evaluated once per user and cached: the law feeds three table
        // builds (instance, country, global), and each evaluation costs
        // a keyed RNG seeding plus two `powf`s — at 10M users the naive
        // 3× re-evaluation is seconds of pure recomputation.
        let fitness: Vec<f64> = users
            .iter()
            .enumerate()
            .map(|(uid, u)| {
                let tc = u.toot_count as f64;
                let mut r = unit_rng(fitness_seed, uid as u64);
                let celeb_roll: f64 = r.r#gen();
                let jitter: f64 = r.r#gen::<f64>().max(1e-12).powf(-FITNESS_JITTER_EXP);
                let base = tc.powf(FITNESS_EXP) * jitter;
                if tc > 0.0 && celeb_roll < p_celebrity {
                    (base * CELEBRITY_BOOST).clamp(1.0, FITNESS_CAP)
                } else {
                    base.clamp(1.0, FITNESS_CAP)
                }
            })
            .collect();
        let fitness_of = |uid: u32| -> f64 { fitness[uid as usize] };

        let by_instance = Membership::new(
            instances.len(),
            candidates
                .iter()
                .map(|&c| (inst_of_user[c as usize], c))
                .collect::<Vec<_>>()
                .into_iter(),
        );
        let by_country = Membership::new(
            Country::ALL.len(),
            candidates
                .iter()
                .map(|&c| (country_of_instance[inst_of_user[c as usize] as usize], c))
                .collect::<Vec<_>>()
                .into_iter(),
        );
        let inst_alias = AliasFamily::build(&by_instance, instances.len(), fitness_of);
        let country_alias = AliasFamily::build(&by_country, Country::ALL.len(), fitness_of);
        // `candidates` is 0..n in order, so the cache *is* the global
        // weight vector.
        let global_alias = AliasSampler::from_weighted_ids(&candidates, &fitness);

        // Lurkers follow 1–2 accounts; tooting users carry the rest of the
        // configured mean degree.
        let n = users.len();
        let cap = (n as u32 / 4).max(10);
        let lurker_mean = 1.5f64;
        let tooting_mean = ((cfg.mean_out_degree - (1.0 - cfg.tooting_frac) * lurker_mean)
            / cfg.tooting_frac)
            .max(2.0);
        let p_inst = cfg.p_follow_same_instance;
        let p_country = cfg.p_follow_same_country;
        let p_global = 1.0 - p_inst - p_country;
        Self {
            stage_seed,
            p_inst,
            p12: p_inst + p_country,
            base1: [0.0, p_inst, p_inst],
            base2: [0.0, 0.0, p_country],
            mix: [
                p_inst * UNIFORM_MIX,
                p_country * UNIFORM_MIX,
                p_global * UNIFORM_MIX,
            ],
            cap,
            alpha_tooting: solve_alpha(tooting_mean, cap),
            inst_of_user,
            country_of_instance,
            tooting,
            by_instance,
            by_country,
            candidates,
            inst_alias,
            country_alias,
            global_alias,
        }
    }

    /// Number of users the cursor covers.
    pub fn n_users(&self) -> usize {
        self.inst_of_user.len()
    }

    /// The three alias tables a given user draws from (own instance, own
    /// country, global) plus the matching uniform-pick member lists. Both
    /// are fixed for the whole of a user's emission, so the per-draw
    /// domain dispatch reduces to an array index.
    #[inline]
    fn draw_tables(&self, inst: usize, country: usize) -> ([&[AliasSlot]; 3], [&[u32]; 3]) {
        (
            [
                self.inst_alias.domain_slots(inst),
                self.country_alias.domain_slots(country),
                self.global_alias.slots(),
            ],
            [
                self.by_instance.domain(inst),
                self.by_country.domain(country),
                self.candidates.as_slice(),
            ],
        )
    }

    /// Which domain (0 = instance, 1 = country, 2 = global) `roll`
    /// selects. Two compares, no data-dependent jump: the domain outcome
    /// of each draw is uniform-random, so a branchy three-way dispatch
    /// mispredicts on most draws — at ~14M draws per million users the
    /// flushes alone were a measurable slice of the social stage.
    #[inline]
    fn draw_domain(&self, roll: f64) -> usize {
        (roll >= self.p_inst) as usize + (roll >= self.p12) as usize
    }

    /// One candidate draw: `roll` picks the domain *and* the uniform-mix
    /// sub-range (the mix is a scaled prefix of each domain's range, so a
    /// single f64 covers both decisions); `r` feeds either the alias table
    /// or the uniform Lemire pick. `(slots, members)` are the caller's
    /// [`Self::draw_tables`] for the emitting user.
    #[inline]
    fn draw_from(&self, slots: &[&[AliasSlot]; 3], members: &[&[u32]; 3], roll: f64, r: u64) -> u32 {
        let dom = self.draw_domain(roll);
        let uniform = (roll - self.base1[dom]) - self.base2[dom] < self.mix[dom];
        if uniform {
            let m = members[dom];
            if !m.is_empty() {
                return m[lemire(r, m.len())];
            }
            // Empty domain (an instance or country without candidates):
            // global fallback, preserving the draw's uniform kind.
            return self.candidates[lemire(r, self.candidates.len())];
        }
        let s = slots[dom];
        if !s.is_empty() {
            sample_slice(s, r)
        } else {
            // Weighted draw against an empty domain: global fallback.
            self.global_alias.sample_u64(r)
        }
    }

    /// Emit user `uid`'s canonical adjacency (ascending, unique, no self
    /// loop) into `buf`. This is the seek primitive: the draws come from
    /// `unit_rng(stage_seed, uid)` alone.
    pub fn emit_user(&self, uid: u32, buf: &mut Vec<u32>) {
        let mut scratch = Vec::new();
        self.emit_user_scratch(uid, buf, &mut scratch);
    }

    /// [`Self::emit_user`] with a caller-owned dedup bitset (one bit per
    /// user id), so block emission reuses one allocation across users.
    /// The bitset must be all-zero on entry; it is restored to all-zero
    /// before returning (set bits are exactly the accepted targets, so
    /// the reset walks `buf`, not the whole array).
    fn emit_user_scratch(&self, uid: u32, buf: &mut Vec<u32>, seen: &mut Vec<u64>) {
        buf.clear();
        let mut rng = unit_rng(self.stage_seed, uid as u64);
        let d = if self.tooting[uid as usize] {
            sample_out_degree(self.alpha_tooting, self.cap, &mut rng)
        } else {
            // 1 w.p. 0.7, 2 w.p. 0.2, 3..=5 otherwise (mean ≈ 1.5)
            match rng.gen::<f64>() {
                x if x < 0.7 => 1,
                x if x < 0.9 => 2,
                _ => rng.gen_range(3..=5),
            }
        };
        let inst = self.inst_of_user[uid as usize] as usize;
        let country = self.country_of_instance[inst] as usize;
        let (slots, members) = self.draw_tables(inst, country);
        buf.reserve(d as usize);
        // Hub-heavy fitness means blind draws collide often (half of a
        // user's draws can land on the same top account), which would
        // dedup the realized mean degree far below the configured one —
        // so duplicates are redrawn under a bounded attempt budget
        // (capped by [`MAX_EMIT_ATTEMPTS`] for mega-followers), and the
        // budget (not a retry loop per slot) keeps emission total work
        // O(d). Typical degrees are small enough that the linear
        // `contains` probe beats any set, but the power-law tail reaches
        // deep into the population (cap = n/4): a 10⁵-degree hub under a
        // linear probe is O(d²) and alone costs seconds, so big emitters
        // switch to a per-id bitset. Both probes answer exactly the same
        // question, so the accept/reject sequence — and therefore the
        // emitted adjacency — is identical either way.
        let mut attempts = (4 * d.max(1)).min(MAX_EMIT_ATTEMPTS);
        if d <= 64 {
            while buf.len() < d as usize && attempts > 0 {
                attempts -= 1;
                let roll: f64 = rng.r#gen();
                let r: u64 = rng.r#gen();
                let cand = self.draw_from(&slots, &members, roll, r);
                if cand != uid && !buf.contains(&cand) {
                    buf.push(cand);
                }
            }
        } else {
            // Big emitters resolve draws in batches: the (roll, r) pairs
            // are pure RNG output, and the alias-slot address each pair
            // will read is computable before the read — so a batch of
            // prefetches overlaps the table misses that otherwise
            // serialize one per accept/reject step. The candidate
            // sequence and the acceptance walk are unchanged (over-drawn
            // RNG output past a filled adjacency is dead — the per-user
            // stream ends here), so the emitted adjacency is
            // bit-identical to draw-at-a-time. Small emitters skip this:
            // for the d ≤ 64 majority the over-draw at the tail would
            // cost more than the overlap wins.
            const BATCH: usize = 16;
            let mut pairs = [(0.0f64, 0u64); BATCH];
            seen.resize(self.n_users().div_ceil(64), 0);
            let want = d as usize;
            'big: while buf.len() < want && attempts > 0 {
                let k = (attempts as usize).min(BATCH);
                for p in pairs.iter_mut().take(k) {
                    let roll: f64 = rng.r#gen();
                    let r: u64 = rng.r#gen();
                    *p = (roll, r);
                    touch_slice(slots[self.draw_domain(roll)], r);
                }
                attempts -= k as u32;
                for &(roll, r) in &pairs[..k] {
                    let cand = self.draw_from(&slots, &members, roll, r);
                    let (w, bit) = ((cand >> 6) as usize, 1u64 << (cand & 63));
                    if cand != uid && seen[w] & bit == 0 {
                        seen[w] |= bit;
                        buf.push(cand);
                        if buf.len() == want {
                            break 'big;
                        }
                    }
                }
            }
            // Set bits are exactly `buf`: restore all-zero for the next
            // caller in O(degree) instead of re-zeroing the whole array.
            for &c in buf.iter() {
                seen[(c >> 6) as usize] = 0;
            }
        }
        buf.sort_unstable();
    }

    /// Build the `[lo, hi)` user block's CSR segment.
    pub fn segment(&self, lo: u32, hi: u32) -> SocialSegment {
        let span = (hi - lo) as usize;
        let mut offsets = Vec::with_capacity(span + 1);
        let mut targets = Vec::new();
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        offsets.push(0);
        for uid in lo..hi {
            self.emit_user_scratch(uid, &mut buf, &mut scratch);
            targets.extend_from_slice(&buf);
            offsets.push(targets.len() as u32);
        }
        SocialSegment {
            start: lo,
            offsets,
            targets,
        }
    }

    /// All segments for a block size, fanned out over
    /// [`par::parallel_map`]; concatenation is bit-identical at any
    /// block/thread count.
    pub fn segments(&self, block: usize) -> Vec<SocialSegment> {
        par::parallel_map(&blocks(self.n_users(), block), |&(lo, hi)| {
            self.segment(lo as u32, hi as u32)
        })
    }

    /// Stream every edge `(follower, followee)` in canonical order
    /// (users ascending, each user's targets ascending) through `sink`.
    pub fn stream(&self, block: usize, sink: &mut dyn FnMut(u32, u32)) {
        for seg in self.segments(block) {
            for k in 0..seg.offsets.len() - 1 {
                let uid = seg.start + k as u32;
                for &t in &seg.targets[seg.offsets[k] as usize..seg.offsets[k + 1] as usize] {
                    sink(uid, t);
                }
            }
        }
    }
}

/// Collect the follower graph as an edge list (the
/// [`World`](fediscope_model::world::World) representation). Large-scale
/// consumers that only need the CSR graph should take
/// [`SocialCursor::segments`] straight into
/// `DiGraph::from_sorted_blocks` — at a million users the intermediate
/// edge list alone is ~100 MB.
pub fn generate(
    cfg: &WorldConfig,
    instances: &[Instance],
    users: &[UserProfile],
) -> Vec<(UserId, UserId)> {
    if users.len() < 2 {
        return Vec::new();
    }
    let cursor = SocialCursor::new(cfg, instances, users);
    let mut edges: Vec<(UserId, UserId)> =
        Vec::with_capacity((users.len() as f64 * cfg.mean_out_degree) as usize);
    cursor.stream(DEFAULT_BLOCK, &mut |a, b| edges.push((UserId(a), UserId(b))));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sub_seed;
    use fediscope_graph::{weakly_connected, DiGraph};
    use fediscope_model::geo::ProviderCatalog;
    use rand::rngs::StdRng;

    fn build(seed: u64, n_inst: usize, n_users: usize) -> (Vec<Instance>, Vec<UserProfile>, Vec<(UserId, UserId)>) {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = n_inst;
        cfg.n_users = n_users;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut r1);
        let mut instances = stage.instances;
        let users = crate::users::generate(&cfg, &mut instances, &stage.popularity);
        let follows = generate(&cfg, &instances, &users);
        (instances, users, follows)
    }

    fn to_graph(n: usize, follows: &[(UserId, UserId)]) -> DiGraph {
        DiGraph::from_edges(n as u32, follows.iter().map(|&(a, b)| (a.0, b.0)))
    }

    #[test]
    fn no_self_loops_and_in_range() {
        let (_, users, follows) = build(3, 40, 2_000);
        for &(a, b) in &follows {
            assert_ne!(a, b);
            assert!(a.index() < users.len() && b.index() < users.len());
        }
    }

    #[test]
    fn canonical_order_sorted_unique_per_user() {
        let (_, _, follows) = build(4, 40, 2_000);
        for w in follows.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(a.0 .0 < b.0 .0 || (a.0 == b.0 && a.1 .0 < b.1 .0), "{a:?} !< {b:?}");
        }
    }

    #[test]
    fn block_size_is_unobservable() {
        let (instances, users, follows) = build(6, 40, 2_000);
        let mut cfg = WorldConfig::tiny(6);
        cfg.n_instances = 40;
        cfg.n_users = 2_000;
        let cursor = SocialCursor::new(&cfg, &instances, &users);
        for block in [1usize, 7, 333, 10_000] {
            let mut streamed = Vec::new();
            cursor.stream(block, &mut |a, b| streamed.push((UserId(a), UserId(b))));
            assert_eq!(streamed, follows, "block {block} diverged");
        }
    }

    #[test]
    fn cursor_seeks_without_replay() {
        // Emitting user k alone equals user k's slice of the full stream —
        // no prefix replay needed (the recover crate's resume contract).
        let (instances, users, follows) = build(8, 40, 1_500);
        let mut cfg = WorldConfig::tiny(8);
        cfg.n_instances = 40;
        cfg.n_users = 1_500;
        let cursor = SocialCursor::new(&cfg, &instances, &users);
        let mut buf = Vec::new();
        for probe in [0u32, 1, 700, 1_499] {
            cursor.emit_user(probe, &mut buf);
            let expect: Vec<u32> = follows
                .iter()
                .filter(|(a, _)| a.0 == probe)
                .map(|(_, b)| b.0)
                .collect();
            assert_eq!(buf, expect, "user {probe}");
        }
    }

    #[test]
    fn mean_degree_near_target() {
        let (_, users, follows) = build(5, 40, 4_000);
        let mean = follows.len() as f64 / users.len() as f64;
        assert!(
            mean > 5.0 && mean < 25.0,
            "mean out-degree {mean} out of band"
        );
    }

    #[test]
    fn lcc_is_nearly_everyone() {
        let (_, users, follows) = build(7, 40, 4_000);
        let g = to_graph(users.len(), &follows);
        let wcc = weakly_connected(&g, None);
        let frac = wcc.largest() as f64 / users.len() as f64;
        assert!(frac > 0.99, "LCC fraction {frac}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let (_, users, follows) = build(11, 40, 6_000);
        let g = to_graph(users.len(), &follows);
        let in_degrees: Vec<f64> = (0..users.len() as u32).map(|v| g.in_degree(v) as f64).collect();
        let max_in = in_degrees.iter().cloned().fold(0.0, f64::max);
        let mean_in = in_degrees.iter().sum::<f64>() / in_degrees.len() as f64;
        // hubs exist: max ≫ mean
        assert!(
            max_in > 20.0 * mean_in,
            "no hubs: max {max_in} mean {mean_in}"
        );
        let fit = fediscope_stats::PowerLawFit::fit(&in_degrees, 5.0).expect("fit");
        assert!(
            fit.alpha > 1.3 && fit.alpha < 4.0,
            "implausible alpha {}",
            fit.alpha
        );
    }

    #[test]
    fn homophily_matches_configuration() {
        let (_, users, follows) = build(13, 200, 8_000);
        let same_inst = follows
            .iter()
            .filter(|&&(a, b)| users[a.index()].instance == users[b.index()].instance)
            .count() as f64
            / follows.len() as f64;
        // p_follow_same_instance is 0.30, but the concentration of users on
        // a few big instances means country/global draws also frequently
        // land on the follower's own instance; the share sits well above the
        // parameter and below total dominance.
        assert!(
            same_inst > 0.25 && same_inst < 0.80,
            "same-instance share {same_inst}"
        );
        // there must still be substantial federation
        assert!(1.0 - same_inst > 0.15, "cross-instance share too small");
    }

    #[test]
    fn federation_graph_mostly_connected() {
        let (instances, users, follows) = build(17, 80, 6_000);
        let mut fed = std::collections::HashSet::new();
        for &(a, b) in &follows {
            let (ia, ib) = (users[a.index()].instance, users[b.index()].instance);
            if ia != ib {
                fed.insert((ia.0, ib.0));
            }
        }
        let g = DiGraph::from_edges(instances.len() as u32, fed.iter().copied());
        let wcc = weakly_connected(&g, None);
        // instances with zero users are isolated; among populated ones the
        // LCC should dominate
        let populated = instances.iter().filter(|i| i.user_count > 0).count();
        let frac = wcc.largest() as f64 / populated.max(1) as f64;
        assert!(frac > 0.7, "federation LCC fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let (_, _, a) = build(23, 40, 2_000);
        let (_, _, b) = build(23, 40, 2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn out_degree_sampler_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let alpha = solve_alpha(10.8, 100);
        for _ in 0..5_000 {
            let d = sample_out_degree(alpha, 100, &mut rng);
            assert!((1..=100).contains(&d));
        }
        let cap = 10_000;
        let alpha = solve_alpha(10.8, cap);
        let mean: f64 = (0..100_000)
            .map(|_| sample_out_degree(alpha, cap, &mut rng) as f64)
            .sum::<f64>()
            / 100_000.0;
        // truncation-corrected alpha should land near the requested mean
        assert!(mean > 6.0 && mean < 18.0, "sampled mean {mean}");
    }

    #[test]
    fn solve_alpha_monotone_in_mean() {
        let a_small = solve_alpha(3.0, 1000);
        let a_big = solve_alpha(20.0, 1000);
        // larger target mean needs a heavier tail (smaller alpha)
        assert!(a_big < a_small);
        assert!(a_small > 1.05 && a_small < 3.5);
    }

    #[test]
    fn tiny_population_degenerate_ok() {
        let mut cfg = WorldConfig::tiny(1);
        cfg.n_instances = 2;
        cfg.n_users = 1;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r = StdRng::seed_from_u64(1);
        let stage = crate::instances::generate(&cfg, &providers, &mut r);
        let mut instances = stage.instances;
        let users = crate::users::generate(&cfg, &mut instances, &stage.popularity);
        let follows = generate(&cfg, &instances, &users);
        assert!(follows.is_empty());
    }
}
